// Differential certification of the fast kernel (src/sim/fast/) against
// the reference bit loop.  The contract under test: for every workload the
// repo can express — the whole committed scenario corpus (attack and rsm
// scenarios included), fixed-seed fuzz campaigns, rare-event trials, the
// model checker's clone-heavy sweeps, and raw Network runs — the fast
// kernel must produce byte-identical traces, event logs, delivery
// journals, invariant verdicts, oracle classes and campaign accumulators.
// Paranoid mode stays on throughout: every member re-run is digest-checked
// against its group shadow, so a silent divergence fails loudly here
// before it could fail quietly in a campaign.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "fault/random_faults.hpp"
#include "fault/scripted.hpp"
#include "frame/frame.hpp"
#include "fuzz/engine.hpp"
#include "fuzz/mutate.hpp"
#include "fuzz/oracle.hpp"
#include "rare/campaign.hpp"
#include "rsm/runner.hpp"
#include "scenario/dsl.hpp"
#include "scenario/model_check.hpp"
#include "sim/fast/fast_kernel.hpp"
#include "sim/kernel.hpp"

namespace mcan {
namespace {

// Restores the process-global kernel selection (and paranoia) on scope
// exit so a failing assertion cannot leak `fast` into unrelated suites.
class ScopedKernel {
 public:
  explicit ScopedKernel(KernelKind k, bool paranoid = false) {
    set_default_kernel(k);
    FastKernel::set_paranoid(paranoid);
  }
  ~ScopedKernel() {
    set_default_kernel(KernelKind::Ref);
    FastKernel::set_paranoid(false);
  }
  ScopedKernel(const ScopedKernel&) = delete;
  ScopedKernel& operator=(const ScopedKernel&) = delete;
};

/// Run `fn` under the reference kernel, then under the paranoid fast
/// kernel, and hand both results to `check`.
template <typename T>
void differential(const std::function<T()>& fn,
                  const std::function<void(const T&, const T&)>& check) {
  T ref;
  {
    ScopedKernel k(KernelKind::Ref);
    ref = fn();
  }
  T fast;
  {
    ScopedKernel k(KernelKind::Fast, /*paranoid=*/true);
    fast = fn();
  }
  check(ref, fast);
}

void expect_equal_runs(const DslRunResult& r, const DslRunResult& f) {
  // The rendered timeline is the strongest single check: it covers the
  // full bit-level trace, byte for byte.
  EXPECT_EQ(r.outcome.trace, f.outcome.trace);
  EXPECT_EQ(r.outcome.deliveries, f.outcome.deliveries);
  EXPECT_EQ(r.outcome.tx_success, f.outcome.tx_success);
  EXPECT_EQ(r.outcome.tx_attempts, f.outcome.tx_attempts);
  EXPECT_EQ(r.outcome.tx_crashed, f.outcome.tx_crashed);
  EXPECT_EQ(r.outcome.faults_all_fired, f.outcome.faults_all_fired);
  EXPECT_EQ(r.expectation_met, f.expectation_met) << f.expectation_text;
  EXPECT_EQ(r.quiesced, f.quiesced);
  // Invariant verdicts: same totals, same per-rule breakdown, same span.
  EXPECT_EQ(r.invariants.total, f.invariants.total)
      << "ref:\n" << r.invariants.summary()
      << "fast:\n" << f.invariants.summary();
  EXPECT_EQ(r.invariants.by_rule, f.invariants.by_rule);
  EXPECT_EQ(r.invariants.bits_checked, f.invariants.bits_checked);
  // Atomic-broadcast oracle, field by field.
  EXPECT_EQ(r.ab.broadcasts, f.ab.broadcasts);
  EXPECT_EQ(r.ab.correct_nodes, f.ab.correct_nodes);
  EXPECT_EQ(r.ab.validity_violations, f.ab.validity_violations);
  EXPECT_EQ(r.ab.agreement_violations, f.ab.agreement_violations);
  EXPECT_EQ(r.ab.duplicate_deliveries, f.ab.duplicate_deliveries);
  EXPECT_EQ(r.ab.nontriviality_violations, f.ab.nontriviality_violations);
  EXPECT_EQ(r.ab.order_inversions, f.ab.order_inversions);
  EXPECT_EQ(r.ab.fifo_violations, f.ab.fifo_violations);
  EXPECT_EQ(r.ab.messages_with_duplicates, f.ab.messages_with_duplicates);
  // Attack bookkeeping (all zero for non-attack scenarios).
  EXPECT_EQ(r.attack.glitch_flips, f.attack.glitch_flips);
  EXPECT_EQ(r.attack.busoff_attempts, f.attack.busoff_attempts);
  EXPECT_EQ(r.attack.victim_peak_tec, f.attack.victim_peak_tec);
  EXPECT_EQ(r.attack.busoff_t, f.attack.busoff_t);
  EXPECT_EQ(r.attack.victim_busoff, f.attack.victim_busoff);
  EXPECT_EQ(r.attack.spoofed, f.attack.spoofed);
  EXPECT_EQ(r.attack.spoofed_delivered, f.attack.spoofed_delivered);
}

// --- the whole committed corpus, byte for byte ---------------------------

TEST(SimFastCorpus, EveryShippedScenarioIsBitIdentical) {
  // Enumerate scenarios/ at runtime so a scenario added later is covered
  // the day it lands, with no test edit.
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(MCAN_SCENARIO_DIR)) {
    if (entry.path().extension() == ".scn") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty());

  for (const std::string& path : files) {
    SCOPED_TRACE(path);
    const ScenarioSpec spec = load_scenario_file(path);
    differential<DslRunResult>(
        [&] { return run_any_scenario(spec); },
        [](const DslRunResult& r, const DslRunResult& f) {
          expect_equal_runs(r, f);
        });
  }
}

// --- raw Network runs: the shared event log, event by event --------------

std::string render_events(Network& net) {
  std::string out;
  for (const Event& e : net.log().events()) {
    out += e.to_string();
    out += '\n';
  }
  return out;
}

struct RawRun {
  std::string events;
  std::vector<std::size_t> deliveries;
  BitTime now = 0;
};

RawRun saturated_run(int n_nodes, const ProtocolParams& proto, double ber,
                     long long bits) {
  Network net(n_nodes, proto);
  RandomFaults inj(ber, Rng(7));
  if (ber > 0) net.set_injector(inj);
  int next = 0;
  for (long long i = 0; i < bits; ++i) {
    if (net.node(0).pending_tx() < 2) {
      net.node(0).enqueue(
          Frame::make_blank(0x100 + static_cast<std::uint32_t>(next++ % 8),
                            8));
    }
    net.sim().step();
  }
  RawRun r;
  r.events = render_events(net);
  for (int i = 0; i < n_nodes; ++i) {
    r.deliveries.push_back(net.deliveries(i).size());
  }
  r.now = net.sim().now();
  return r;
}

void expect_equal_raw(const RawRun& r, const RawRun& f) {
  EXPECT_EQ(r.now, f.now);
  EXPECT_EQ(r.deliveries, f.deliveries);
  EXPECT_EQ(r.events, f.events);
}

TEST(SimFastRaw, SaturatedBusEventLogIsByteIdentical) {
  // The symmetry-group hot path: one transmitter, many identical
  // receivers, stepped per bit as the campaign engines do.
  differential<RawRun>(
      [] { return saturated_run(8, ProtocolParams::standard_can(), 0, 4000); },
      expect_equal_raw);
  differential<RawRun>(
      [] { return saturated_run(8, ProtocolParams::major_can(5), 0, 4000); },
      expect_equal_raw);
}

TEST(SimFastRaw, NoisySaturatedBusEventLogIsByteIdentical) {
  // Random faults consume the per-node RNG streams in attach order; any
  // reordering or skipped draw in the fast kernel diverges within bits.
  differential<RawRun>(
      [] {
        return saturated_run(6, ProtocolParams::major_can(5), 1e-3, 6000);
      },
      expect_equal_raw);
}

TEST(SimFastRaw, BurstRunUnderWordBatchIsByteIdentical) {
  // Deep pre-loaded queue handed to run(): the word-batch regime.
  differential<RawRun>(
      [] {
        Network net(8, ProtocolParams::standard_can());
        for (int i = 0; i < 40; ++i) {
          net.node(0).enqueue(
              Frame::make_blank(0x100 + static_cast<std::uint32_t>(i % 8),
                                8));
        }
        net.sim().run(6000);
        RawRun r;
        r.events = render_events(net);
        for (int i = 0; i < 8; ++i) {
          r.deliveries.push_back(net.deliveries(i).size());
        }
        r.now = net.sim().now();
        return r;
      },
      expect_equal_raw);
}

TEST(SimFastRaw, IdleSkipPreservesClockAndLaterTraffic) {
  // A long idle stretch, then traffic: the idle jump must land on the
  // same clock and leave every node able to pick up the next frame.
  differential<RawRun>(
      [] {
        Network net(4, ProtocolParams::standard_can());
        net.sim().run(10000);
        net.node(2).enqueue(Frame::make_blank(0x2AA, 4));
        net.sim().run(500);
        RawRun r;
        r.events = render_events(net);
        for (int i = 0; i < 4; ++i) {
          r.deliveries.push_back(net.deliveries(i).size());
        }
        r.now = net.sim().now();
        return r;
      },
      expect_equal_raw);
}

TEST(SimFastRaw, ExternalEnqueueOnGroupedReceiverMatches) {
  // Mid-run mutation of a grouped member: enqueueing on a receiver must
  // materialize its shared state and eject it, then win arbitration or
  // queue behind node 0 exactly as the reference does.
  differential<RawRun>(
      [] {
        Network net(6, ProtocolParams::standard_can());
        int next = 0;
        for (long long i = 0; i < 3000; ++i) {
          if (net.node(0).pending_tx() < 2) {
            net.node(0).enqueue(Frame::make_blank(
                0x300 + static_cast<std::uint32_t>(next++ % 4), 8));
          }
          if (i == 700) net.node(3).enqueue(Frame::make_blank(0x050, 2));
          if (i == 1500) net.node(5).enqueue(Frame::make_blank(0x051, 1));
          net.sim().step();
        }
        RawRun r;
        r.events = render_events(net);
        for (int i = 0; i < 6; ++i) {
          r.deliveries.push_back(net.deliveries(i).size());
        }
        r.now = net.sim().now();
        return r;
      },
      expect_equal_raw);
}

TEST(SimFastRaw, CrashInsideGroupMatches) {
  // A scheduled fail-silent crash hits a grouped receiver mid-run; the
  // kernel must eject it at the right bit and keep the survivors grouped.
  differential<RawRun>(
      [] {
        Network net(6, ProtocolParams::major_can(3));
        net.sim().schedule_crash(4, 900);
        net.sim().schedule_crash(0, 2200);
        int next = 0;
        for (long long i = 0; i < 3000; ++i) {
          if (!net.sim().crashed(0) && net.node(0).pending_tx() < 2) {
            net.node(0).enqueue(Frame::make_blank(
                0x200 + static_cast<std::uint32_t>(next++ % 4), 6));
          }
          net.sim().step();
        }
        RawRun r;
        r.events = render_events(net);
        for (int i = 0; i < 6; ++i) {
          r.deliveries.push_back(net.deliveries(i).size());
        }
        r.now = net.sim().now();
        return r;
      },
      expect_equal_raw);
}

TEST(SimFastRaw, ScriptedFlipOnGroupedReceiverMatches) {
  // A position-addressed flip lands on one member of a receiver group:
  // mid-bit ejection, then local-error signalling out of step with the
  // rest of the bus.  This is the paper's IMO trigger geometry.
  differential<RawRun>(
      [] {
        Network net(5, ProtocolParams::standard_can());
        ScriptedFaults inj;
        inj.add(FaultTarget::eof_bit(1, 5));
        inj.add(FaultTarget::eof_bit(0, 6));
        net.set_injector(inj);
        net.node(0).enqueue(Frame::make_blank(0x155, 2));
        net.run_until_quiet();
        for (int i = 0; i < 25; ++i) net.sim().step();
        RawRun r;
        r.events = render_events(net);
        for (int i = 0; i < 5; ++i) {
          r.deliveries.push_back(net.deliveries(i).size());
        }
        r.now = net.sim().now();
        return r;
      },
      expect_equal_raw);
}

// --- fixed-seed fuzz campaigns -------------------------------------------

TEST(SimFastFuzz, FixedSeedCampaignIsBitIdentical) {
  FuzzConfig cfg;
  cfg.protocol = ProtocolParams::standard_can();
  cfg.n_nodes = 3;
  cfg.seed = 21;
  cfg.max_execs = 192;
  cfg.batch = 32;
  cfg.jobs = 1;

  struct Snapshot {
    std::uint64_t execs = 0;
    std::uint32_t classes = 0;
    int signature_bits = 0;
    int fsm_transitions = 0;
    int corpus_size = 0;
    std::vector<std::uint64_t> finding_at;
    std::vector<std::uint32_t> finding_classes;
  };
  differential<Snapshot>(
      [&] {
        const FuzzResult res = run_fuzz(cfg);
        Snapshot s;
        s.execs = res.stats.execs;
        s.classes = res.stats.classes_seen;
        s.signature_bits = res.stats.signature_bits;
        s.fsm_transitions = res.stats.fsm_transitions;
        s.corpus_size = res.stats.corpus_size;
        for (const FuzzFinding& fnd : res.findings) {
          s.finding_at.push_back(fnd.exec_index);
          s.finding_classes.push_back(fnd.verdict.classes);
        }
        return s;
      },
      [](const Snapshot& r, const Snapshot& f) {
        EXPECT_EQ(r.execs, f.execs);
        EXPECT_EQ(r.classes, f.classes);
        EXPECT_EQ(r.signature_bits, f.signature_bits);
        EXPECT_EQ(r.fsm_transitions, f.fsm_transitions);
        EXPECT_EQ(r.corpus_size, f.corpus_size);
        EXPECT_EQ(r.finding_at, f.finding_at);
        EXPECT_EQ(r.finding_classes, f.finding_classes);
      });
}

TEST(SimFastFuzz, OracleVerdictAndSignatureMatchOnSeedCase) {
  const ScenarioSpec spec =
      seed_scenario(ProtocolParams::major_can(5), 4);
  differential<FuzzVerdict>(
      [&] { return run_fuzz_case(spec); },
      [](const FuzzVerdict& r, const FuzzVerdict& f) {
        EXPECT_EQ(r.classes, f.classes) << f.detail;
        EXPECT_EQ(r.sig, f.sig);
      });
}

// --- rare-event campaign accumulators ------------------------------------

TEST(SimFastRare, ImportanceSamplingAccumulatorsMatch) {
  RareConfig cfg;
  cfg.ber = 3e-3;  // elevated so hits are plentiful at tiny trial counts
  cfg.trials = 600;
  cfg.batch = 100;
  cfg.seed = 11;
  cfg.n_nodes = 8;
  differential<RareResult>(
      [&] { return run_campaign(cfg); },
      [](const RareResult& r, const RareResult& f) {
        EXPECT_EQ(r.imo, f.imo);  // accumulator state, bit for bit
        EXPECT_EQ(r.dup, f.dup);
        EXPECT_EQ(r.timeouts, f.timeouts);
        EXPECT_GT(r.imo.hits() + r.dup.hits() + r.timeouts, 0);
      });
}

TEST(SimFastRare, JobsIndependenceHoldsUnderFastKernel) {
  // The serve/worker determinism contract, re-proven on the fast kernel:
  // shard layout must not leak into the estimate.
  ScopedKernel k(KernelKind::Fast, /*paranoid=*/true);
  RareConfig one;
  one.ber = 3e-3;
  one.trials = 600;
  one.batch = 100;
  one.seed = 11;
  one.n_nodes = 8;
  RareConfig many = one;
  one.jobs = 1;
  many.jobs = 4;
  const RareResult a = run_campaign(one);
  const RareResult b = run_campaign(many);
  EXPECT_EQ(a.imo, b.imo);
  EXPECT_EQ(a.dup, b.dup);
  EXPECT_EQ(a.timeouts, b.timeouts);
}

// --- model checker: the clone-heavy prefix-dedup path --------------------

TEST(SimFastModelCheck, CanK2SweepCountsMatch) {
  // Prefix cloning snapshots controllers mid-run (clone_runtime_state),
  // which under the fast kernel must read through group proxies.  The
  // verdict counts of a k=2 CAN sweep pin that path exactly.
  ModelCheckConfig mc;
  mc.base.protocol = ProtocolParams::standard_can();
  mc.base.n_nodes = 3;
  mc.base.errors = 2;
  mc.jobs = 1;

  struct Counts {
    long long cases = 0, imo = 0, double_rx = 0, total_loss = 0,
              timeouts = 0;
  };
  differential<Counts>(
      [&] {
        const ModelCheckResult res = run_model_check(mc);
        return Counts{res.cases, res.imo, res.double_rx, res.total_loss,
                      res.timeouts};
      },
      [](const Counts& r, const Counts& f) {
        EXPECT_EQ(r.cases, f.cases);
        EXPECT_EQ(r.imo, f.imo);
        EXPECT_EQ(r.double_rx, f.double_rx);
        EXPECT_EQ(r.total_loss, f.total_loss);
        EXPECT_EQ(r.timeouts, f.timeouts);
      });
}

}  // namespace
}  // namespace mcan
