// Fault-confinement integration: error-passive entry events, the warning
// switch-off rule, and ISO 11898 bus-off auto-recovery.
#include <gtest/gtest.h>

#include "invariant_gtest.hpp"

#include "core/network.hpp"
#include "fault/scripted.hpp"

namespace mcan {
namespace {

TEST(BusOff, LoneTransmitterStaysOffByDefault) {
  Network net(1, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  net.node(0).enqueue(Frame::make_blank(0x1, 0));
  net.run_until_quiet(60000);
  EXPECT_EQ(net.node(0).fc_state(), FcState::BusOff);
  EXPECT_FALSE(net.node(0).active());
  EXPECT_EQ(net.log().count(EventKind::EnteredBusOff, 0), 1u);
  EXPECT_EQ(net.log().count(EventKind::BusOffRecovered, 0), 0u);
}

TEST(BusOff, EnteredErrorPassiveEventEmitted) {
  Network net(1, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  net.node(0).enqueue(Frame::make_blank(0x1, 0));
  net.run_until_quiet(60000);
  EXPECT_EQ(net.log().count(EventKind::EnteredErrorPassive, 0), 1u)
      << "TEC crosses 128 on the way to 256";
}

TEST(BusOff, AutoRecoveryRejoinsAndCycles) {
  EventLog log;
  ControllerConfig cfg;
  cfg.id = 0;
  cfg.busoff_auto_recovery = true;
  CanController node(cfg, log);
  Simulator sim;
  sim.attach(node);
  node.enqueue(Frame::make_blank(0x1, 0));
  // One bus-off trip: 32 failed attempts; recovery: 128*11 recessive bits;
  // then it tries (and fails) again.  Run long enough for two cycles.
  sim.run(2 * (32 * 80 + 128 * 11 + 200));
  EXPECT_GE(log.count(EventKind::EnteredBusOff, 0), 2u);
  EXPECT_GE(log.count(EventKind::BusOffRecovered, 0), 1u);
  EXPECT_TRUE(node.active()) << "recovery keeps the node attached";
}

TEST(BusOff, RecoveredNodeWorksAgain) {
  // Drive node 1 to bus-off artificially, then let the bus idle long
  // enough for recovery, then check it receives a frame normally.
  EventLog log;
  ControllerConfig c0;
  c0.id = 0;
  ControllerConfig c1;
  c1.id = 1;
  c1.busoff_auto_recovery = true;
  CanController tx(c0, log), rx(c1, log);
  Simulator sim;
  sim.attach(tx);
  sim.attach(rx);

  rx.force_error_counters(250, 0);  // close to the cliff
  // Two more tx errors (+8 each) push it over; easiest artificial path:
  rx.force_error_counters(256, 0);
  EXPECT_EQ(rx.fc_state(), FcState::BusOff);

  int delivered = 0;
  rx.add_delivery_handler([&](const Frame&, BitTime) { ++delivered; });

  // note_fc_state runs on the next sampled bit and starts the recovery.
  sim.run(1 + 128 * 11 + 5);
  EXPECT_EQ(rx.fc_state(), FcState::ErrorActive);
  EXPECT_EQ(log.count(EventKind::BusOffRecovered, 1), 1u);

  tx.enqueue(Frame::make_blank(0x42, 1));
  sim.run(300);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(rx.tec(), 0);
  EXPECT_EQ(rx.rec(), 0);
}

TEST(BusOff, FramesOnBusDelayRecovery) {
  // While other traffic runs, the 11-recessive sequences only accumulate
  // in the inter-frame gaps, so recovery takes longer than on a quiet bus.
  EventLog log;
  ControllerConfig c0;
  c0.id = 0;
  ControllerConfig c1;
  c1.id = 1;
  ControllerConfig c2;
  c2.id = 2;
  c2.busoff_auto_recovery = true;
  CanController tx(c0, log), other(c1, log), rx(c2, log);
  Simulator sim;
  sim.attach(tx);
  sim.attach(other);
  sim.attach(rx);
  rx.force_error_counters(256, 0);

  // Saturate the bus with back-to-back frames for a while.
  for (int i = 0; i < 30; ++i) tx.enqueue(Frame::make_blank(0x100, 8));
  sim.run(128 * 11 + 10);
  EXPECT_EQ(rx.fc_state(), FcState::BusOff)
      << "a busy bus must not complete the recovery sequence this fast";
  // Let the bus drain and go quiet: recovery completes.
  sim.run(30 * 140 + 128 * 11 + 20);
  EXPECT_EQ(rx.fc_state(), FcState::ErrorActive);
}

TEST(BusOff, WarningSwitchOffEventEmitted) {
  FaultConfinementConfig fc;
  fc.switch_off_at_warning = true;
  Network net(2, ProtocolParams::standard_can(), fc);
  ScriptedFaults inj;
  // Hammer the receiver with view errors mid-frame on several frames.
  for (int f = 0; f < 15; ++f) {
    FaultTarget t;
    t.node = 1;
    t.seg = Seg::Body;
    t.index = 20;
    t.frame_index = f;
    inj.add(t);
  }
  net.set_injector(inj);
  for (int i = 0; i < 15; ++i) net.node(0).enqueue(Frame::make_blank(0x20, 2));
  net.run_until_quiet(60000);
  // Each primary error costs +8/+1; the warning limit (96) must trip and
  // the node must disconnect.
  EXPECT_EQ(net.node(1).fc_state(), FcState::SwitchedOff);
  EXPECT_EQ(net.log().count(EventKind::WarningSwitchOff, 1), 1u);
  EXPECT_FALSE(net.node(1).active());
}

}  // namespace
}  // namespace mcan
