// Tests of the VCD waveform export.
#include <gtest/gtest.h>

#include "invariant_gtest.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/network.hpp"
#include "fault/scripted.hpp"
#include "sim/vcd.hpp"

namespace mcan {
namespace {

TEST(Vcd, HeaderAndSignalsDeclared) {
  Network net(2, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  net.enable_trace();
  net.node(0).enqueue(Frame::make_blank(0x55, 0));
  ASSERT_TRUE(net.run_until_quiet());
  const std::string vcd = trace_to_vcd(net.trace(), net.labels());
  EXPECT_NE(vcd.find("$timescale 1us $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("BUS"), std::string::npos);
  EXPECT_NE(vcd.find("node_0.drive"), std::string::npos);
  EXPECT_NE(vcd.find("node_1.view"), std::string::npos);
  EXPECT_NE(vcd.find("node_1.fault"), std::string::npos);
}

TEST(Vcd, EmitsChangesWithTimestamps) {
  Network net(2, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  net.enable_trace();
  net.node(0).enqueue(Frame::make_blank(0x55, 1));
  ASSERT_TRUE(net.run_until_quiet());
  const std::string vcd = trace_to_vcd(net.trace(), net.labels());
  // The SOF at t=0 makes the bus dominant: "0!" after "#0".
  auto t0 = vcd.find("#0\n");
  ASSERT_NE(t0, std::string::npos);
  EXPECT_NE(vcd.find("0!", t0), std::string::npos);
  // Later the bus returns recessive: a "1!" change exists.
  EXPECT_NE(vcd.find("\n1!", t0), std::string::npos);
}

TEST(Vcd, FaultMarkerTogglesOnInjection) {
  Network net(2, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  net.enable_trace();
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(1, 3));
  net.set_injector(inj);
  net.node(0).enqueue(Frame::make_blank(0x55, 0));
  ASSERT_TRUE(net.run_until_quiet());
  const std::string vcd = trace_to_vcd(net.trace(), net.labels());
  // node 1's fault wire is signal index 1 + 3*1 + 2 = 6 -> id '\'' ... just
  // check that some fault signal goes high at least once: find the
  // declaration id and then a '1<id>' change.
  auto decl = vcd.find("node_1.fault");
  ASSERT_NE(decl, std::string::npos);
  // "$var wire 1 <id> node_1.fault $end" — extract the id token.
  auto line_start = vcd.rfind('\n', decl);
  std::istringstream line(vcd.substr(line_start + 1, decl - line_start));
  std::string var, wire, one, id;
  line >> var >> wire >> one >> id;
  EXPECT_NE(vcd.find("1" + id + "\n"), std::string::npos)
      << "fault marker must pulse high";
}

TEST(Vcd, WritesFile) {
  Network net(2, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  net.enable_trace();
  net.node(0).enqueue(Frame::make_blank(0x55, 0));
  ASSERT_TRUE(net.run_until_quiet());
  const std::string path = "/tmp/mcan_vcd_test.vcd";
  ASSERT_TRUE(write_vcd_file(path, net.trace(), net.labels()));
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string first;
  std::getline(f, first);
  EXPECT_NE(first.find("$date"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Vcd, EmptyTraceStillValid) {
  TraceRecorder empty;
  const std::string vcd = trace_to_vcd(empty, {"a", "b"});
  EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
}

}  // namespace
}  // namespace mcan
