// Tests of the VCD waveform export.
#include <gtest/gtest.h>

#include "invariant_gtest.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/network.hpp"
#include "fault/scripted.hpp"
#include "sim/vcd.hpp"

namespace mcan {
namespace {

TEST(Vcd, HeaderAndSignalsDeclared) {
  Network net(2, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  net.enable_trace();
  net.node(0).enqueue(Frame::make_blank(0x55, 0));
  ASSERT_TRUE(net.run_until_quiet());
  const std::string vcd = trace_to_vcd(net.trace(), net.labels());
  EXPECT_NE(vcd.find("$timescale 1us $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("BUS"), std::string::npos);
  EXPECT_NE(vcd.find("node_0.drive"), std::string::npos);
  EXPECT_NE(vcd.find("node_1.view"), std::string::npos);
  EXPECT_NE(vcd.find("node_1.fault"), std::string::npos);
}

TEST(Vcd, EmitsChangesWithTimestamps) {
  Network net(2, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  net.enable_trace();
  net.node(0).enqueue(Frame::make_blank(0x55, 1));
  ASSERT_TRUE(net.run_until_quiet());
  const std::string vcd = trace_to_vcd(net.trace(), net.labels());
  // The SOF at t=0 makes the bus dominant: "0!" after "#0".
  auto t0 = vcd.find("#0\n");
  ASSERT_NE(t0, std::string::npos);
  EXPECT_NE(vcd.find("0!", t0), std::string::npos);
  // Later the bus returns recessive: a "1!" change exists.
  EXPECT_NE(vcd.find("\n1!", t0), std::string::npos);
}

TEST(Vcd, FaultMarkerTogglesOnInjection) {
  Network net(2, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  net.enable_trace();
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(1, 3));
  net.set_injector(inj);
  net.node(0).enqueue(Frame::make_blank(0x55, 0));
  ASSERT_TRUE(net.run_until_quiet());
  const std::string vcd = trace_to_vcd(net.trace(), net.labels());
  // node 1's fault wire is signal index 1 + 3*1 + 2 = 6 -> id '\'' ... just
  // check that some fault signal goes high at least once: find the
  // declaration id and then a '1<id>' change.
  auto decl = vcd.find("node_1.fault");
  ASSERT_NE(decl, std::string::npos);
  // "$var wire 1 <id> node_1.fault $end" — extract the id token.
  auto line_start = vcd.rfind('\n', decl);
  std::istringstream line(vcd.substr(line_start + 1, decl - line_start));
  std::string var, wire, one, id;
  line >> var >> wire >> one >> id;
  EXPECT_NE(vcd.find("1" + id + "\n"), std::string::npos)
      << "fault marker must pulse high";
}

TEST(Vcd, WritesFile) {
  Network net(2, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  net.enable_trace();
  net.node(0).enqueue(Frame::make_blank(0x55, 0));
  ASSERT_TRUE(net.run_until_quiet());
  const std::string path = "/tmp/mcan_vcd_test.vcd";
  ASSERT_TRUE(write_vcd_file(path, net.trace(), net.labels()));
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string first;
  std::getline(f, first);
  EXPECT_NE(first.find("$date"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Vcd, EmptyTraceStillValid) {
  TraceRecorder empty;
  const std::string vcd = trace_to_vcd(empty, {"a", "b"});
  EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
}

// --- reader round-trip ------------------------------------------------------

TEST(VcdReader, RoundTripPreservesBitStream) {
  // Simulate (with a disturbance, so the fault wires carry content), dump,
  // parse back, and compare the reconstructed records bit by bit.
  Network net(3, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  net.enable_trace();
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(1, 5));
  net.set_injector(inj);
  net.node(0).enqueue(Frame::make_blank(0x2A, 2));
  ASSERT_TRUE(net.run_until_quiet());

  const std::string vcd = trace_to_vcd(net.trace(), net.labels());
  const VcdTrace back = parse_vcd(vcd);

  ASSERT_EQ(back.labels.size(), net.labels().size());
  for (std::size_t i = 0; i < back.labels.size(); ++i) {
    // VCD identifiers cannot contain spaces: the writer sanitises
    // "node 2" to "node_2", so compare modulo that substitution.
    std::string want = net.labels()[i];
    for (char& c : want) {
      if (c == ' ') c = '_';
    }
    EXPECT_EQ(back.labels[i], want);
  }
  const auto& orig = net.trace().bits();
  ASSERT_EQ(back.bits.size(), orig.size());
  for (std::size_t i = 0; i < orig.size(); ++i) {
    const BitRecord& a = orig[i];
    const BitRecord& b = back.bits[i];
    ASSERT_EQ(b.t, a.t) << "record " << i;
    ASSERT_EQ(b.bus, a.bus) << "record " << i;
    ASSERT_EQ(b.driven.size(), a.driven.size());
    for (std::size_t n = 0; n < a.driven.size(); ++n) {
      ASSERT_EQ(b.driven[n], a.driven[n]) << "record " << i << " node " << n;
      ASSERT_EQ(b.view[n], a.view[n]) << "record " << i << " node " << n;
      ASSERT_EQ(b.disturbed[n], a.disturbed[n])
          << "record " << i << " node " << n;
    }
  }
}

TEST(VcdReader, RoundTripThroughFile) {
  Network net(2, ProtocolParams::major_can(3));
  ScopedInvariants net_invariants(net);
  net.enable_trace();
  net.node(0).enqueue(Frame::make_blank(0x55, 0));
  ASSERT_TRUE(net.run_until_quiet());
  const std::string path = "/tmp/mcan_vcd_roundtrip_test.vcd";
  ASSERT_TRUE(write_vcd_file(path, net.trace(), net.labels()));
  const VcdTrace back = read_vcd_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(back.bits.size(), net.trace().bits().size());
}

// --- malformed input --------------------------------------------------------

TEST(VcdReader, RejectsTruncatedHeader) {
  // Cut the dump off in the middle of the $var declarations, before
  // $enddefinitions.
  Network net(2, ProtocolParams::standard_can());
  net.enable_trace();
  net.node(0).enqueue(Frame::make_blank(0x55, 0));
  ASSERT_TRUE(net.run_until_quiet());
  const std::string vcd = trace_to_vcd(net.trace(), net.labels());
  const auto cut = vcd.find("node_1.view");
  ASSERT_NE(cut, std::string::npos);
  EXPECT_THROW((void)parse_vcd(vcd.substr(0, cut)), std::invalid_argument);
}

TEST(VcdReader, RejectsUnknownIdentifierCode) {
  Network net(2, ProtocolParams::standard_can());
  net.enable_trace();
  net.node(0).enqueue(Frame::make_blank(0x55, 0));
  ASSERT_TRUE(net.run_until_quiet());
  std::string vcd = trace_to_vcd(net.trace(), net.labels());
  // Append a value change for an identifier no $var declared.
  vcd += "#9999\n0~\n";
  EXPECT_THROW((void)parse_vcd(vcd), std::invalid_argument);
}

TEST(VcdReader, RejectsValueChangeBeforeDeclarations) {
  EXPECT_THROW((void)parse_vcd("#0\n0!\n"), std::invalid_argument);
}

TEST(VcdReader, RejectsEmptyInput) {
  EXPECT_THROW((void)parse_vcd(""), std::invalid_argument);
}

}  // namespace
}  // namespace mcan
