// Wire-protocol tests for the campaign service (src/serve/proto.*): the
// Json value type, length-prefixed framing over real socketpairs —
// fragmented delivery, truncated prefixes, oversized frames — and the
// request envelope validation that keeps malformed input out of the
// daemon.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <thread>

#include "serve/proto.hpp"

namespace mcan {
namespace {

// --- Json value type -------------------------------------------------------

TEST(Json, DumpIsDeterministicInsertionOrder) {
  Json j = Json::object();
  j.set("zeta", Json(1LL));
  j.set("alpha", Json(true));
  j.set("mid", Json("x"));
  EXPECT_EQ(j.dump(), "{\"zeta\":1,\"alpha\":true,\"mid\":\"x\"}");
  j.set("zeta", Json(2LL));  // replace keeps first-insertion order
  EXPECT_EQ(j.dump(), "{\"zeta\":2,\"alpha\":true,\"mid\":\"x\"}");
}

TEST(Json, RoundTripsExactIntegers) {
  const long long big = 9007199254740993LL;  // not representable in double
  Json j = Json::object();
  j.set("v", Json(big));
  Json back;
  std::string error;
  ASSERT_TRUE(Json::parse(j.dump(), back, error)) << error;
  EXPECT_EQ(back.find("v")->as_int(), big);
}

TEST(Json, RoundTripsStringsWithControlCharacters) {
  std::string all;
  for (int c = 1; c < 0x20; ++c) all.push_back(static_cast<char>(c));
  all += "\"\\plain";
  Json j = Json::object();
  j.set("s", Json(all));
  Json back;
  std::string error;
  ASSERT_TRUE(Json::parse(j.dump(), back, error)) << error;
  EXPECT_EQ(back.find("s")->as_string(), all);
}

TEST(Json, ParsesUnicodeEscapesIncludingSurrogatePairs) {
  Json v;
  std::string error;
  ASSERT_TRUE(Json::parse("\"\\u0041\\u00e9\\ud83d\\ude00\"", v, error))
      << error;
  EXPECT_EQ(v.as_string(), "A\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(Json, NanAndInfinitySentinelsConvertBack) {
  // util/text json_number() writes these sentinels; as_double restores.
  Json v;
  std::string error;
  ASSERT_TRUE(Json::parse(
      "{\"a\":\"NaN\",\"b\":\"Infinity\",\"c\":\"-Infinity\"}", v, error))
      << error;
  EXPECT_TRUE(std::isnan(v.find("a")->as_double()));
  EXPECT_TRUE(std::isinf(v.find("b")->as_double()));
  EXPECT_GT(v.find("b")->as_double(), 0);
  EXPECT_LT(v.find("c")->as_double(), 0);
}

TEST(Json, RejectsMalformedInput) {
  Json v;
  std::string error;
  EXPECT_FALSE(Json::parse("", v, error));
  EXPECT_FALSE(Json::parse("{", v, error));
  EXPECT_FALSE(Json::parse("{\"a\":}", v, error));
  EXPECT_FALSE(Json::parse("[1,]", v, error));
  EXPECT_FALSE(Json::parse("\"unterminated", v, error));
  EXPECT_FALSE(Json::parse("1 trailing", v, error));
  EXPECT_FALSE(Json::parse("nul", v, error));
}

TEST(Json, RejectsPathologicalNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  Json v;
  std::string error;
  EXPECT_FALSE(Json::parse(deep, v, error));
  EXPECT_NE(error.find("deep"), std::string::npos) << error;
}

// --- framing over a real socketpair ---------------------------------------

struct Pair {
  int a = -1, b = -1;
  Pair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~Pair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(Framing, RoundTripsPayloads) {
  Pair p;
  const std::string payload = "{\"proto\":1,\"type\":\"ping\"}";
  ASSERT_TRUE(write_frame(p.a, payload));
  std::string got;
  ASSERT_EQ(read_frame(p.b, got), FrameRead::kOk);
  EXPECT_EQ(got, payload);
}

TEST(Framing, ReassemblesFragmentedDelivery) {
  // Stream sockets may deliver a frame one byte at a time; the reader
  // must loop.  Dribble prefix and payload from a second thread.
  Pair p;
  const std::string payload(3000, 'x');
  std::thread writer([&] {
    const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
    const unsigned char prefix[4] = {
        static_cast<unsigned char>(n >> 24),
        static_cast<unsigned char>(n >> 16),
        static_cast<unsigned char>(n >> 8), static_cast<unsigned char>(n)};
    for (unsigned char c : prefix) {
      ASSERT_EQ(::write(p.a, &c, 1), 1);
      std::this_thread::yield();
    }
    std::size_t off = 0;
    while (off < payload.size()) {
      const std::size_t chunk = std::min<std::size_t>(7, payload.size() - off);
      ASSERT_EQ(::write(p.a, payload.data() + off,
                        chunk),
                static_cast<ssize_t>(chunk));
      off += chunk;
    }
  });
  std::string got;
  EXPECT_EQ(read_frame(p.b, got), FrameRead::kOk);
  EXPECT_EQ(got, payload);
  writer.join();
}

TEST(Framing, CleanCloseIsEofNotError) {
  Pair p;
  ::close(p.a);
  p.a = -1;
  std::string got;
  EXPECT_EQ(read_frame(p.b, got), FrameRead::kEof);
}

TEST(Framing, TruncatedPrefixIsDetected) {
  Pair p;
  const char two[2] = {0, 0};
  ASSERT_EQ(::write(p.a, two, 2), 2);
  ::close(p.a);
  p.a = -1;
  std::string got;
  EXPECT_EQ(read_frame(p.b, got), FrameRead::kTruncated);
}

TEST(Framing, TruncatedPayloadIsDetected) {
  Pair p;
  const unsigned char prefix[4] = {0, 0, 0, 10};  // declares 10 bytes
  ASSERT_EQ(::write(p.a, prefix, 4), 4);
  ASSERT_EQ(::write(p.a, "abc", 3), 3);  // ... delivers 3
  ::close(p.a);
  p.a = -1;
  std::string got;
  EXPECT_EQ(read_frame(p.b, got), FrameRead::kTruncated);
}

TEST(Framing, OversizedFrameIsRejectedWithoutReadingIt) {
  Pair p;
  const unsigned char prefix[4] = {0x7f, 0xff, 0xff, 0xff};  // ~2 GiB
  ASSERT_EQ(::write(p.a, prefix, 4), 4);
  std::string got;
  EXPECT_EQ(read_frame(p.b, got), FrameRead::kTooLarge);
}

TEST(Framing, HonorsCustomFrameCap) {
  Pair p;
  ASSERT_TRUE(write_frame(p.a, std::string(100, 'y')));
  std::string got;
  EXPECT_EQ(read_frame(p.b, got, 64), FrameRead::kTooLarge);
}

// --- request envelope ------------------------------------------------------

TEST(Envelope, AcceptsAWellFormedRequest) {
  EXPECT_EQ(validate_request(make_request("status")), "");
}

TEST(Envelope, RejectsNonObjects) {
  Json v;
  std::string error;
  ASSERT_TRUE(Json::parse("[1,2]", v, error));
  EXPECT_NE(validate_request(v), "");
}

TEST(Envelope, RejectsVersionMismatch) {
  Json req = make_request("ping");
  req.set("proto", Json(static_cast<long long>(kProtoVersion + 1)));
  const std::string why = validate_request(req);
  EXPECT_NE(why, "");
  EXPECT_NE(why.find("version"), std::string::npos) << why;
}

TEST(Envelope, RejectsMissingType) {
  Json req = Json::object();
  req.set("proto", Json(static_cast<long long>(kProtoVersion)));
  EXPECT_NE(validate_request(req), "");
}

TEST(Envelope, ErrorResponsesCarryTheRejectedFlag) {
  const Json plain = error_response("bad spec");
  EXPECT_FALSE(plain.find("ok")->as_bool());
  EXPECT_EQ(plain.find("rejected"), nullptr);
  const Json busy = error_response("queue full", /*rejected=*/true);
  EXPECT_TRUE(busy.find("rejected")->as_bool());
}

}  // namespace
}  // namespace mcan
