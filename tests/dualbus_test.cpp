// Tests of the replicated "double CAN" architecture: masking of single-bus
// disturbance patterns (including Fig. 3a), survival of a permanent medium
// failure, and its limit — correlated disturbances on both buses.
#include <gtest/gtest.h>

#include "fault/scripted.hpp"
#include "higher/dualbus.hpp"

namespace mcan {
namespace {

std::vector<FaultTarget> fig3_pattern() {
  // X = nodes 1,2 phantom in the last-but-one EOF bit; transmitter's view
  // of the last bit flipped (standard CAN geometry).
  return {FaultTarget::eof_bit(1, 5), FaultTarget::eof_bit(2, 5),
          FaultTarget::eof_bit(0, 6)};
}

TEST(DualBus, CleanBroadcastExactlyOnceEverywhere) {
  DualBusNetwork net(4, ProtocolParams::standard_can());
  net.broadcast(0, MessageKey{0, 1});
  ASSERT_TRUE(net.run_until_quiet());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(net.app_deliveries(i), 1u) << "node " << i;
  }
  EXPECT_TRUE(net.check().atomic_broadcast()) << net.check().summary();
}

TEST(DualBus, MasksTheFig3aScenarioOnOneBus) {
  // The paper's new scenario on bus A only: the B copy repairs agreement —
  // replication buys what MajorCAN buys, at ~2x bandwidth instead of 3
  // bits.
  DualBusNetwork net(5, ProtocolParams::standard_can());
  ScriptedFaults inj(fig3_pattern());
  net.set_injector(0, inj);
  net.broadcast(0, MessageKey{0, 1});
  ASSERT_TRUE(net.run_until_quiet());
  auto rep = net.check();
  EXPECT_EQ(rep.agreement_violations, 0) << rep.summary();
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(net.app_deliveries(i), 1u) << "node " << i;
  }
}

TEST(DualBus, CorrelatedDisturbancesStillSplit) {
  // The same pattern on both buses simultaneously defeats plain
  // replication: nodes 1,2 miss the message on A *and* B.
  DualBusNetwork net(5, ProtocolParams::standard_can());
  ScriptedFaults inj_a(fig3_pattern());
  ScriptedFaults inj_b(fig3_pattern());
  net.set_injector(0, inj_a);
  net.set_injector(1, inj_b);
  net.broadcast(0, MessageKey{0, 1});
  ASSERT_TRUE(net.run_until_quiet());
  auto rep = net.check();
  EXPECT_GT(rep.agreement_violations, 0) << rep.summary();
}

TEST(DualBus, MajorCanLinkMasksCorrelatedDisturbances) {
  // Complementary defences: MajorCAN links under the replicated
  // architecture survive even the correlated pattern.
  DualBusNetwork net(5, ProtocolParams::major_can(5));
  const int last = ProtocolParams::major_can(5).eof_bits() - 1;
  ScriptedFaults inj_a({FaultTarget::eof_bit(1, last - 1),
                        FaultTarget::eof_bit(2, last - 1),
                        FaultTarget::eof_bit(0, last)});
  ScriptedFaults inj_b({FaultTarget::eof_bit(1, last - 1),
                        FaultTarget::eof_bit(2, last - 1),
                        FaultTarget::eof_bit(0, last)});
  net.set_injector(0, inj_a);
  net.set_injector(1, inj_b);
  net.broadcast(0, MessageKey{0, 1});
  ASSERT_TRUE(net.run_until_quiet());
  EXPECT_EQ(net.check().agreement_violations, 0) << net.check().summary();
}

TEST(DualBus, SurvivesPermanentBusFailure) {
  // Bus A's medium goes stuck-dominant mid-run: its controllers drown in
  // error frames (eventually bus-off), while traffic keeps flowing on B.
  DualBusNetwork net(4, ProtocolParams::standard_can());
  StuckDominantBus dead(30);
  net.set_injector(0, dead);

  net.broadcast(0, MessageKey{0, 1});
  net.run(4000);  // let A's error storm play out
  net.broadcast(1, MessageKey{1, 1});
  // No quiescence: bus A is permanently noisy and its survivors keep
  // "receiving" dominant garbage; just run long enough for B to deliver.
  net.run(20000);

  auto rep = net.check();
  EXPECT_EQ(rep.agreement_violations, 0) << rep.summary();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(net.app_deliveries(i), 2u) << "node " << i;
  }
}

TEST(DualBus, StuckBusDrivesControllersBusOff) {
  DualBusNetwork net(3, ProtocolParams::standard_can());
  StuckDominantBus dead(10);
  net.set_injector(0, dead);
  net.broadcast(0, MessageKey{0, 1});
  net.run(20000);
  // The A transmitter accumulates TEC until bus-off; A receivers go
  // error-passive (REC saturates but receive errors alone cannot bus-off).
  EXPECT_EQ(net.bus(0).node(0).fc_state(), FcState::BusOff);
  EXPECT_EQ(net.bus(0).node(1).fc_state(), FcState::ErrorPassive);
  // Bus B is untouched.
  EXPECT_EQ(net.bus(1).node(0).fc_state(), FcState::ErrorActive);
}

}  // namespace
}  // namespace mcan
