// Property-based campaigns: the paper's central claim, exercised with
// randomly placed disturbances instead of scripted ones.
//
//   MajorCAN_m provides Atomic Broadcast in the presence of up to m
//   randomly distributed (per-node view) errors per frame.  (§5, §6)
//
// The sweeps use parameterised gtest over (protocol, error count) and the
// end-of-frame window where all the paper's scenarios live.  Standard CAN
// and MinorCAN must show violations with >= 2 errors (the Fig. 3 pattern is
// inside the sampled space); MajorCAN_m must show none up to m.
#include <gtest/gtest.h>

#include "invariant_gtest.hpp"

#include "analysis/tagged.hpp"
#include "core/network.hpp"
#include "fault/scripted.hpp"
#include "frame/encoder.hpp"
#include "scenario/campaign.hpp"

namespace mcan {
namespace {

CampaignConfig base_config(ProtocolParams proto, int errors, int trials,
                           std::uint64_t seed) {
  CampaignConfig cfg;
  cfg.protocol = proto;
  cfg.n_nodes = 5;
  cfg.trials = trials;
  cfg.errors = errors;
  cfg.window = FaultWindow::FrameTail;
  cfg.seed = seed;
  return cfg;
}

// --- MajorCAN_m: zero violations up to m errors ---

struct MajorSweepParam {
  int m;
  int errors;
};

class MajorCanSweep : public ::testing::TestWithParam<MajorSweepParam> {};

TEST_P(MajorCanSweep, NoViolationWithinBudget) {
  const auto [m, errors] = GetParam();
  auto cfg = base_config(ProtocolParams::major_can(m), errors, 800,
                         0xABC0 + static_cast<std::uint64_t>(m * 16 + errors));
  auto res = run_eof_campaign(cfg);
  EXPECT_EQ(res.trials, cfg.trials);
  EXPECT_EQ(res.timeouts, 0) << res.summary();
  EXPECT_EQ(res.imo, 0) << res.summary();
  EXPECT_EQ(res.double_rx, 0) << res.summary();
  EXPECT_EQ(res.total_loss, 0) << res.summary();
}

INSTANTIATE_TEST_SUITE_P(
    UpToMErrors, MajorCanSweep,
    ::testing::Values(MajorSweepParam{3, 1}, MajorSweepParam{3, 2},
                      MajorSweepParam{3, 3}, MajorSweepParam{4, 2},
                      MajorSweepParam{4, 4}, MajorSweepParam{5, 1},
                      MajorSweepParam{5, 2}, MajorSweepParam{5, 3},
                      MajorSweepParam{5, 4}, MajorSweepParam{5, 5},
                      MajorSweepParam{6, 6}),
    [](const ::testing::TestParamInfo<MajorSweepParam>& info) {
      return "m" + std::to_string(info.param.m) + "_e" +
             std::to_string(info.param.errors);
    });

// --- standard CAN / MinorCAN: the flaws are reachable ---

TEST(CampaignCan, SingleErrorCausesDoubleReception) {
  auto res = run_eof_campaign(
      base_config(ProtocolParams::standard_can(), 1, 1500, 0xC0FFEE));
  EXPECT_EQ(res.timeouts, 0);
  EXPECT_GT(res.double_rx, 0)
      << "a single last-but-one-EOF-bit hit must appear: " << res.summary();
  EXPECT_EQ(res.imo, 0) << "one error alone cannot split acceptance for "
                           "standard CAN without a crash";
}

TEST(CampaignCan, TwoErrorsReachTheNewScenario) {
  // The Fig. 3a pattern lives in this window; with enough trials the
  // campaign must stumble into an IMO even though the transmitter stays up.
  auto res = run_eof_campaign(
      base_config(ProtocolParams::standard_can(), 2, 20000, 0xFEED));
  EXPECT_EQ(res.timeouts, 0);
  EXPECT_GT(res.imo, 0) << res.summary();
}

TEST(CampaignMinor, SingleErrorIsAlwaysConsistent) {
  auto res = run_eof_campaign(
      base_config(ProtocolParams::minor_can(), 1, 1500, 0xB0B0));
  EXPECT_EQ(res.timeouts, 0);
  EXPECT_EQ(res.imo, 0) << res.summary();
  EXPECT_EQ(res.double_rx, 0)
      << "MinorCAN eliminates double reception: " << res.summary();
}

TEST(CampaignMinor, TwoErrorsStillBreakMinorCan) {
  auto res = run_eof_campaign(
      base_config(ProtocolParams::minor_can(), 2, 20000, 0xD00D));
  EXPECT_EQ(res.timeouts, 0);
  EXPECT_GT(res.imo + res.double_rx + res.total_loss, 0) << res.summary();
}

TEST(CampaignCan, CrashCampaignShowsFig1cImo) {
  auto cfg = base_config(ProtocolParams::standard_can(), 1, 4000, 0xCAFE);
  cfg.crash_tx_randomly = true;
  auto res = run_eof_campaign(cfg);
  EXPECT_GT(res.imo, 0) << res.summary();
}

TEST(CampaignMajor, SurvivesCrashCampaignWithinBudget) {
  // Transmitter crashes combined with up to m-1 channel errors: MajorCAN
  // may lose the frame entirely (crash before anyone accepted — allowed:
  // the sender is not correct) but must never split the receivers.
  auto cfg = base_config(ProtocolParams::major_can(5), 4, 3000, 0xBEAD);
  cfg.crash_tx_randomly = true;
  auto res = run_eof_campaign(cfg);
  EXPECT_EQ(res.timeouts, 0);
  EXPECT_EQ(res.imo, 0) << res.summary();
  EXPECT_EQ(res.double_rx, 0) << res.summary();
}

TEST(CampaignParallel, MatchesSerialExactly) {
  auto cfg = base_config(ProtocolParams::standard_can(), 2, 1200, 0x9999);
  const auto serial = run_eof_campaign(cfg);
  for (unsigned threads : {2u, 5u, 16u}) {
    const auto par = run_eof_campaign_parallel(cfg, threads);
    EXPECT_EQ(par.trials, serial.trials) << threads;
    EXPECT_EQ(par.imo, serial.imo) << threads;
    EXPECT_EQ(par.double_rx, serial.double_rx) << threads;
    EXPECT_EQ(par.total_loss, serial.total_loss) << threads;
    EXPECT_EQ(par.retransmissions, serial.retransmissions) << threads;
  }
}

TEST(CampaignParallel, MoreThreadsThanTrials) {
  auto cfg = base_config(ProtocolParams::minor_can(), 1, 3, 0x77);
  const auto par = run_eof_campaign_parallel(cfg, 16);
  EXPECT_EQ(par.trials, 3);
}

TEST(CampaignWholeFrame, WiderFirstSubfieldAbsorbsTheDesyncWitness) {
  // The same single-flip witness that defeats MajorCAN_5 (the desynced
  // flag surfaces around EOF bit 6, inside m=5's accepting sub-field) is
  // handled by MajorCAN_8: bit 6 lies in its wider rejecting sub-field, so
  // everyone rejects and the retransmission restores consistency.
  Network net(5, ProtocolParams::major_can(8));
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  FaultTarget t;
  t.node = 1;
  t.seg = Seg::Body;
  t.index = 20;
  inj.add(t);
  net.set_injector(inj);
  net.node(0).enqueue(make_tagged_frame(0x100, MsgKind::Data, MessageKey{0, 1}));
  ASSERT_TRUE(net.run_until_quiet(30000));
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(net.deliveries(i).size(), 1u) << "node " << i;
  }
}

TEST(CampaignWholeFrame, EveryBodyPositionSingleFlipIsConsistentAtM8) {
  // Exhaustive single-flip sweep over every body wire bit of a receiver:
  // the desync channel must be fully closed by the >= 8-bit first
  // sub-field, whatever the flip does to the destuffer.
  const Frame frame = make_tagged_frame(0x100, MsgKind::Data, MessageKey{0, 1});
  const auto p = ProtocolParams::major_can(8);
  const int body_len =
      wire_length(frame, p.eof_bits()) - p.eof_bits() - 3;  // minus tail
  for (int bit = 1; bit < body_len; ++bit) {
    Network net(5, p);
    ScopedInvariants net_invariants(net);
    ScriptedFaults inj;
    FaultTarget t;
    t.node = 1;
    t.seg = Seg::Body;
    t.index = bit;
    inj.add(t);
    net.set_injector(inj);
    net.node(0).enqueue(frame);
    ASSERT_TRUE(net.run_until_quiet(30000)) << "bit " << bit;
    for (int i = 1; i < 5; ++i) {
      ASSERT_EQ(net.deliveries(i).size(), 1u)
          << "flip at body bit " << bit << ", node " << i;
    }
  }
}

TEST(CampaignWholeFrame, SingleFlipDesyncFlagsSurfaceEarlyInTheEof) {
  // The structural bound behind the m >= 8 rule: whenever a single body
  // flip at a receiver leads to a late (desynchronised) error flag, that
  // flag starts no deeper than ~7 bits into the real EOF — the recessive
  // frame tail forces a stuff error within 6 bits.
  const Frame frame = make_tagged_frame(0x100, MsgKind::Data, MessageKey{0, 1});
  const auto p = ProtocolParams::major_can(5);
  const int eof_start = wire_length(frame, p.eof_bits()) - p.eof_bits();
  const int body_len = eof_start - 3;
  int late_flags = 0;
  for (int bit = 1; bit < body_len; ++bit) {
    Network net(5, p);
    ScopedInvariants net_invariants(net);
    net.enable_trace();
    ScriptedFaults inj;
    FaultTarget t;
    t.node = 1;
    t.seg = Seg::Body;
    t.index = bit;
    inj.add(t);
    net.set_injector(inj);
    net.node(0).enqueue(frame);
    ASSERT_TRUE(net.run_until_quiet(30000)) << "bit " << bit;
    // Node 1's first driven dominant bit at/after the real EOF start (and
    // outside the ACK slot) is its flag start.
    for (const BitRecord& rec : net.trace().bits()) {
      if (rec.t < static_cast<BitTime>(eof_start)) continue;
      if (rec.t >= static_cast<BitTime>(eof_start + p.eof_bits())) break;
      if (is_dominant(rec.driven[1])) {
        const int pos = static_cast<int>(rec.t) - eof_start;
        EXPECT_LE(pos, 7) << "flip at body bit " << bit;
        if (pos >= 5) ++late_flags;
        break;
      }
    }
  }
  EXPECT_GT(late_flags, 0)
      << "the sweep must contain desynchronising flips (else the finding "
         "would be untested)";
}

TEST(CampaignTail, TransmitterNearTailErrorPlusDelimiterFlipRegression) {
  // Regression for a forge channel found at 20k-trial scale: the
  // transmitter hit in its LAST CRC BIT (one bit before the receivers'
  // tail anchor) used to fall back to the re-flagging standard delimiter;
  // a later flip on its delimiter view then made it drive a fresh flag
  // straight into a sampler's majority window, forging acceptance at one
  // node while everyone else rejected (a duplicate after retransmission).
  // With near-tail transmitter errors anchored to the end-game horizon
  // (paper §5's no-additional-flag rule), the pattern must be consistent.
  const auto p = ProtocolParams::major_can(5);
  const Frame frame = make_tagged_frame(0x100, MsgKind::Data, MessageKey{0, 1});
  const int eof_start = wire_length(frame, p.eof_bits()) - p.eof_bits();
  auto at = [&](NodeId n, int rel) {
    return FaultTarget::at_time(n, static_cast<BitTime>(eof_start + rel));
  };
  Network net(5, p);
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  inj.add(at(0, -4));  // tx bit error in the last CRC bit
  inj.add(at(3, -3));  // node 3 misses the flag start...
  inj.add(at(3, -1));  // ...and another flag bit: detects at EOF bit 1
  inj.add(at(0, 10));  // phantom on the tx's delimiter view
  inj.add(at(1, 20));  // stray flip, part of the original counterexample
  net.set_injector(inj);
  net.node(0).enqueue(frame);
  ASSERT_TRUE(net.run_until_quiet(30000));
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(net.deliveries(i).size(), 1u) << "node " << i;
  }
}

// --- whole-frame random errors ---

TEST(CampaignWholeFrame, MajorCanBodyErrorsAndTheDesyncFinding) {
  // Reproduction finding (see DESIGN.md §"Findings beyond the paper"): a
  // single body-bit disturbance can desynchronise a receiver's destuffer,
  // delaying its error detection by *several* bits.  The paper's
  // first-sub-field sizing assumes each error delays detection by at most
  // one bit, so such a late 6-bit flag lands in everyone else's second
  // sub-field: they extend and accept while the desynced node (whose
  // reception is corrupted) can only reject — an IMO outside the paper's
  // analysed error space.  We therefore assert the rest of the guarantee
  // (no duplicates, no total loss) and that the residual IMO rate stays a
  // small tail effect.
  auto cfg = base_config(ProtocolParams::major_can(5), 3, 2000, 0xF00D);
  cfg.window = FaultWindow::WholeFrame;
  auto res = run_eof_campaign(cfg);
  EXPECT_EQ(res.timeouts, 0);
  EXPECT_EQ(res.double_rx, 0) << res.summary();
  EXPECT_EQ(res.total_loss, 0) << res.summary();
  EXPECT_LT(res.imo_rate(), 0.06) << res.summary();
}

TEST(CampaignWholeFrame, StuffingDesyncFindingIsDeterministic) {
  // The minimal witness of the finding above: one flip of node 1's view of
  // body wire bit 20 (inside the stuff-dense zero payload) shifts its
  // destuffer; its stuff error then surfaces only at EOF bit 6 of the
  // *synchronised* nodes, which read the flag as an acceptance notification.
  Network net(5, ProtocolParams::major_can(5));
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  FaultTarget t;
  t.node = 1;
  t.seg = Seg::Body;
  t.index = 20;
  inj.add(t);
  net.set_injector(inj);
  net.node(0).enqueue(make_tagged_frame(0x100, MsgKind::Data, MessageKey{0, 1}));
  ASSERT_TRUE(net.run_until_quiet(30000));
  EXPECT_EQ(net.deliveries(1).size(), 0u) << "desynced node must reject";
  EXPECT_EQ(net.deliveries(2).size(), 1u);
  EXPECT_EQ(net.deliveries(3).size(), 1u);
  EXPECT_EQ(net.deliveries(4).size(), 1u);
  EXPECT_EQ(net.log().count(EventKind::TxSuccess, 0), 1u)
      << "the transmitter accepts via the extended flag: no retransmission";
}

TEST(CampaignWholeFrame, StandardCanBodyErrorsRetransmitConsistently) {
  // Body errors are CAN's home turf: detection + retransmission keeps
  // everything consistent as long as the tail stays clean.  With 1 error
  // anywhere, inconsistency requires the tail pattern; rates stay low but
  // non-zero; duplicates dominate.
  auto cfg = base_config(ProtocolParams::standard_can(), 1, 3000, 0x50DA);
  cfg.window = FaultWindow::WholeFrame;
  auto res = run_eof_campaign(cfg);
  EXPECT_EQ(res.timeouts, 0);
  EXPECT_EQ(res.imo, 0) << res.summary();
}

// --- soak: continuous traffic under iid noise ---

TEST(Soak, MajorCanAtomicBroadcastUnderNoise) {
  SoakConfig cfg;
  cfg.protocol = ProtocolParams::major_can(5);
  cfg.n_nodes = 6;
  cfg.senders = 3;
  cfg.frames_per_sender = 30;
  cfg.ber_star = 2e-4;  // harsh: ~0.12 expected flips/frame/bus
  cfg.seed = 42;
  auto res = run_soak(cfg);
  EXPECT_GT(res.errors_injected, 0);
  EXPECT_EQ(res.report.agreement_violations, 0) << res.summary();
  EXPECT_EQ(res.report.duplicate_deliveries, 0) << res.summary();
  EXPECT_EQ(res.report.order_inversions, 0) << res.summary();
  EXPECT_EQ(res.report.validity_violations, 0) << res.summary();
}

TEST(Soak, CleanChannelAllProtocolsAtomic) {
  for (auto proto : {ProtocolParams::standard_can(), ProtocolParams::minor_can(),
                     ProtocolParams::major_can(5)}) {
    SoakConfig cfg;
    cfg.protocol = proto;
    cfg.n_nodes = 5;
    cfg.senders = 3;
    cfg.frames_per_sender = 20;
    cfg.ber_star = 0.0;
    auto res = run_soak(cfg);
    EXPECT_TRUE(res.report.atomic_broadcast())
        << proto.name() << ": " << res.summary();
  }
}

TEST(Soak, PerSourceFifoHoldsEvenOnStandardCan) {
  // The sender-side queue is FIFO and a later message only goes out after
  // the earlier one's fate is sealed, so per-source ordering survives even
  // where total order and agreement break.
  SoakConfig cfg;
  cfg.protocol = ProtocolParams::standard_can();
  cfg.n_nodes = 6;
  cfg.senders = 3;
  cfg.frames_per_sender = 100;
  cfg.ber_star = 1e-3;
  cfg.seed = 21;
  auto res = run_soak(cfg);
  EXPECT_EQ(res.report.fifo_violations, 0) << res.summary();
}

// --- higher-level baselines, randomized (paper §4) ---

TEST(HigherCampaign, EdcanCleanAtTwoErrors) {
  HigherCampaignConfig cfg;
  cfg.kind = HigherKind::Edcan;
  cfg.trials = 600;
  cfg.errors = 2;
  cfg.seed = 0x6A;
  auto res = run_higher_campaign(cfg);
  EXPECT_EQ(res.agreement_violations, 0) << res.summary();
  EXPECT_EQ(res.timeouts, 0);
}

TEST(HigherCampaign, RelcanBreaksAtTwoErrors) {
  HigherCampaignConfig cfg;
  cfg.kind = HigherKind::Relcan;
  cfg.trials = 4000;
  cfg.errors = 2;
  cfg.seed = 0x6B;
  auto res = run_higher_campaign(cfg);
  EXPECT_GT(res.agreement_violations, 0)
      << "the Fig. 3 pattern lives in this window: " << res.summary();
}

TEST(HigherCampaign, TotcanBreaksAtTwoErrors) {
  HigherCampaignConfig cfg;
  cfg.kind = HigherKind::Totcan;
  cfg.trials = 4000;
  cfg.errors = 2;
  cfg.seed = 0x6C;
  auto res = run_higher_campaign(cfg);
  EXPECT_GT(res.agreement_violations, 0) << res.summary();
}

TEST(HigherCampaign, AllRecoverFromCrashesAtOneError) {
  for (HigherKind kind :
       {HigherKind::Edcan, HigherKind::Relcan, HigherKind::Totcan}) {
    HigherCampaignConfig cfg;
    cfg.kind = kind;
    cfg.trials = 600;
    cfg.errors = 1;
    cfg.crash_tx_randomly = true;
    cfg.seed = 0x6D;
    auto res = run_higher_campaign(cfg);
    EXPECT_EQ(res.agreement_violations, 0)
        << higher_kind_name(kind) << ": " << res.summary();
  }
}

TEST(Soak, StandardCanEventuallyViolatesUnderNoise) {
  // With enough frames under tail-reaching noise, standard CAN shows
  // duplicates and/or omissions; this is the statistical counterpart of
  // Table 1's "it happens too often" argument.
  SoakConfig cfg;
  cfg.protocol = ProtocolParams::standard_can();
  cfg.n_nodes = 6;
  cfg.senders = 3;
  cfg.frames_per_sender = 150;
  cfg.ber_star = 1e-3;
  cfg.seed = 7;
  auto res = run_soak(cfg);
  EXPECT_GT(res.report.duplicate_deliveries + res.report.agreement_violations +
                res.report.order_inversions,
            0)
      << res.summary();
}

}  // namespace
}  // namespace mcan
