// CAN 2.0B extended-frame tests: encoding, wire length, mixed-format
// arbitration (a standard frame beats an extended frame with the same base
// id through its dominant RTR/IDE bits), and MajorCAN's end-game running
// unchanged on extended frames.
#include <gtest/gtest.h>

#include "invariant_gtest.hpp"

#include "core/network.hpp"
#include "fault/scripted.hpp"
#include "frame/encoder.hpp"

namespace mcan {
namespace {

TEST(ExtendedFrame, Construction) {
  const std::uint8_t bytes[] = {1, 2, 3};
  Frame f = Frame::make_extended(0x1fffffff, bytes);
  EXPECT_TRUE(f.extended);
  EXPECT_EQ(f.id, 0x1fffffffu);
  EXPECT_EQ(f.base_id(), 0x7ffu);
  EXPECT_EQ(f.ext_id(), 0x3ffffu);
  EXPECT_EQ(f.dlc, 3);
  EXPECT_THROW(Frame::make_extended(0x20000000, bytes), std::invalid_argument);
}

TEST(ExtendedFrame, BaseAndExtSplit) {
  Frame f = Frame::make_extended(0x12345678 & kMaxExtId, {});
  EXPECT_EQ(f.id, (f.base_id() << kExtIdBits) | f.ext_id());
  Frame s = Frame::make_blank(0x123, 0);
  EXPECT_EQ(s.base_id(), 0x123u);
  EXPECT_EQ(s.ext_id(), 0u);
}

TEST(ExtendedFrame, BodyIsTwentyBitsLonger) {
  Frame std_f = Frame::make_blank(0x155, 4);
  Frame ext_f = Frame::make_extended(0x155u << kExtIdBits, {});
  ext_f.dlc = 4;
  EXPECT_EQ(body_bits_of(ext_f) - body_bits_of(std_f), kExtendedExtraBits);
  EXPECT_EQ(static_cast<int>(unstuffed_body(ext_f).size()), body_bits_of(ext_f));
}

TEST(ExtendedFrame, SrrAndIdeAreRecessive) {
  Frame f = Frame::make_extended(0, {});
  BitVec body = unstuffed_body(f);
  EXPECT_EQ(body[12], Level::Recessive) << "SRR";
  EXPECT_EQ(body[13], Level::Recessive) << "IDE";
}

TEST(ExtendedFrame, ArbitrationPhaseCoversBothIdFields) {
  Frame f = Frame::make_extended(0x15555555 & kMaxExtId, {});
  auto bits = encode_tx(f, kStandardEofBits);
  int arb = 0;
  for (const TxBit& b : bits) {
    if (b.phase == TxPhase::Arbitration && !b.is_stuff) ++arb;
  }
  // 11 base id + SRR + IDE + 18 ext id + RTR = 32.
  EXPECT_EQ(arb, 32);
}

TEST(ExtendedFrame, BroadcastDeliversEverywhere) {
  Network net(4, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  const std::uint8_t bytes[] = {0xca, 0xfe};
  const Frame f = Frame::make_extended(0xabcdef, bytes);
  net.node(0).enqueue(f);
  ASSERT_TRUE(net.run_until_quiet());
  for (int i = 1; i < 4; ++i) {
    ASSERT_EQ(net.deliveries(i).size(), 1u) << "node " << i;
    EXPECT_EQ(net.deliveries(i)[0].frame, f);
  }
}

TEST(ExtendedFrame, StandardBeatsExtendedWithSameBaseId) {
  // ISO 11898: a standard frame wins against an extended frame with the
  // same 11-bit base identifier — its RTR/IDE bits are dominant where the
  // extended frame sends recessive SRR/IDE.
  Network net(3, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  const Frame ext = Frame::make_extended(0x155u << kExtIdBits, {});
  const Frame std_f = Frame::make_blank(0x155, 1);
  net.node(0).enqueue(ext);
  net.node(1).enqueue(std_f);
  ASSERT_TRUE(net.run_until_quiet());
  ASSERT_EQ(net.deliveries(2).size(), 2u);
  EXPECT_FALSE(net.deliveries(2)[0].frame.extended) << "standard first";
  EXPECT_TRUE(net.deliveries(2)[1].frame.extended);
  EXPECT_EQ(net.log().count(EventKind::ArbitrationLost, 0), 1u);
}

TEST(ExtendedFrame, LowerExtensionIdWinsAmongExtended) {
  Network net(3, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  net.node(0).enqueue(Frame::make_extended((0x100u << kExtIdBits) | 0x200, {}));
  net.node(1).enqueue(Frame::make_extended((0x100u << kExtIdBits) | 0x100, {}));
  ASSERT_TRUE(net.run_until_quiet());
  ASSERT_EQ(net.deliveries(2).size(), 2u);
  EXPECT_EQ(net.deliveries(2)[0].frame.ext_id(), 0x100u);
  EXPECT_EQ(net.deliveries(2)[1].frame.ext_id(), 0x200u);
}

TEST(ExtendedFrame, MajorCanEndGameWorksOnExtendedFrames) {
  // The paper's scenarios act on the frame tail, which is format-agnostic:
  // replaying the Fig. 3a pattern on an extended frame must stay
  // consistent under MajorCAN (and split under standard CAN).
  for (bool major : {false, true}) {
    const ProtocolParams p =
        major ? ProtocolParams::major_can(5) : ProtocolParams::standard_can();
    const int last = p.eof_bits() - 1;
    Network net(5, p);
    ScopedInvariants net_invariants(net);
    ScriptedFaults inj;
    inj.add(FaultTarget::eof_bit(1, last - 1));
    inj.add(FaultTarget::eof_bit(2, last - 1));
    inj.add(FaultTarget::eof_bit(0, last));
    net.set_injector(inj);
    net.node(0).enqueue(Frame::make_extended(0xdeadbe, {}));
    ASSERT_TRUE(net.run_until_quiet());
    const bool split = net.deliveries(1).empty() != net.deliveries(3).empty();
    if (major) {
      EXPECT_FALSE(split) << "MajorCAN must keep agreement";
      EXPECT_EQ(net.deliveries(1).size(), 1u);
      EXPECT_EQ(net.deliveries(3).size(), 1u);
    } else {
      EXPECT_TRUE(split) << "standard CAN splits exactly as with 2.0A";
    }
  }
}

TEST(ExtendedFrame, RemoteRoundTripOnBus) {
  Network net(2, ProtocolParams::minor_can());
  ScopedInvariants net_invariants(net);
  const Frame f = Frame::make_extended_remote(0x00ff00, 2);
  net.node(0).enqueue(f);
  ASSERT_TRUE(net.run_until_quiet());
  ASSERT_EQ(net.deliveries(1).size(), 1u);
  EXPECT_EQ(net.deliveries(1)[0].frame, f);
}

}  // namespace
}  // namespace mcan
