// Tests for the Gilbert-Elliott burst injector and the behaviour of the
// protocols under bursty (vs randomly distributed) disturbances.
#include <gtest/gtest.h>

#include "invariant_gtest.hpp"

#include "analysis/tagged.hpp"
#include "core/network.hpp"
#include "fault/burst_faults.hpp"
#include "fault/scripted.hpp"
#include "scenario/campaign.hpp"

namespace mcan {
namespace {

NodeBitInfo body_info() {
  NodeBitInfo i;
  i.seg = Seg::Body;
  return i;
}

TEST(Burst, AverageRateFormula) {
  BurstParams p;
  p.p_good_to_bad = 0.01;
  p.p_bad_to_good = 0.99;
  p.flip_good = 0.0;
  p.flip_bad = 0.5;
  EXPECT_NEAR(p.average_rate(), 0.01 / (0.01 + 0.99) * 0.5, 1e-12);
}

TEST(Burst, EmpiricalRateMatchesFormula) {
  BurstParams p;
  p.p_good_to_bad = 1e-3;
  p.p_bad_to_good = 0.2;
  p.flip_bad = 0.4;
  BurstFaults inj(p, Rng(5));
  const int n = 400000;
  int fired = 0;
  for (int t = 0; t < n; ++t) {
    if (inj.flips(0, static_cast<BitTime>(t), body_info(), Level::Recessive)) {
      ++fired;
    }
  }
  EXPECT_NEAR(static_cast<double>(fired) / n, p.average_rate(),
              p.average_rate() * 0.25);
  EXPECT_GT(inj.bursts(), 100);
}

TEST(Burst, FlipsClusterInTime) {
  // Compare the distribution of gaps between flips against iid: bursty
  // flips must show many short gaps (within-burst) and very long ones.
  BurstParams p;
  p.p_good_to_bad = 2e-4;
  p.p_bad_to_good = 0.2;
  p.flip_bad = 0.5;
  BurstFaults inj(p, Rng(9));
  std::vector<BitTime> flips;
  for (BitTime t = 0; t < 2000000 && flips.size() < 3000; ++t) {
    if (inj.flips(0, t, body_info(), Level::Recessive)) flips.push_back(t);
  }
  ASSERT_GT(flips.size(), 500u);
  int short_gaps = 0;
  for (std::size_t i = 1; i < flips.size(); ++i) {
    if (flips[i] - flips[i - 1] <= 5) ++short_gaps;
  }
  // In a burst (mean length 5, flip 0.5) consecutive flips are a few bits
  // apart; under iid at the same average rate (~5e-4) gaps <= 5 would be
  // vanishingly rare.
  EXPECT_GT(static_cast<double>(short_gaps) / static_cast<double>(flips.size()),
            0.3);
}

TEST(Burst, PerNodeChannelsAreIndependent) {
  BurstParams p;
  p.p_good_to_bad = 5e-3;
  p.p_bad_to_good = 0.2;
  p.flip_bad = 1.0;  // every bad-state bit flips: flips trace the channel
  p.bus_global = false;
  BurstFaults inj(p, Rng(11));
  int both = 0, either = 0;
  for (BitTime t = 0; t < 100000; ++t) {
    const bool a = inj.flips(0, t, body_info(), Level::Recessive);
    const bool b = inj.flips(1, t, body_info(), Level::Recessive);
    if (a || b) ++either;
    if (a && b) ++both;
  }
  ASSERT_GT(either, 100);
  // Independent channels rarely burst simultaneously.
  EXPECT_LT(static_cast<double>(both) / static_cast<double>(either), 0.2);
}

TEST(Burst, MajorCanBudgetHoldsForShortBurstsInTheTail) {
  // A burst of <= m flips confined to one node's frame tail is within the
  // design budget: scripted as m consecutive flips at the worst spot.
  const int m = 5;
  Network net(4, ProtocolParams::major_can(m));
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  for (int d = 0; d < m; ++d) {
    inj.add(FaultTarget::eof_relative(1, m - 1 + d));  // burst across the split
  }
  net.set_injector(inj);
  net.node(0).enqueue(make_tagged_frame(0x100, MsgKind::Data, MessageKey{0, 1}));
  ASSERT_TRUE(net.run_until_quiet());
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(net.deliveries(i).size(), 1u) << "node " << i;
  }
}

}  // namespace
}  // namespace mcan
