// Ablation tests: every deviation from the paper's §5 design must lose the
// <= m guarantee somewhere, and the paper's design must keep it — including
// against disturbances in the delimiter/recovery region and the
// delayed-CRC-flag worst case the first sub-field is sized for.
#include <gtest/gtest.h>

#include "scenario/campaign.hpp"
#include "scenario/figures.hpp"

namespace {

using namespace mcan;

CampaignResult recovery_campaign(const ProtocolParams& proto, int errors,
                                 std::uint64_t seed) {
  CampaignConfig cfg;
  cfg.protocol = proto;
  cfg.n_nodes = 5;
  cfg.trials = 2500;
  cfg.errors = errors;
  cfg.window = FaultWindow::TailAndRecovery;
  cfg.seed = seed;
  return run_eof_campaign(cfg);
}

int violations(const CampaignResult& r) {
  return r.imo + r.double_rx + r.total_loss;
}

TEST(Ablation, PaperDesignSurvivesRecoveryWindow) {
  for (int k = 1; k <= 5; ++k) {
    auto res = recovery_campaign(ProtocolParams::major_can(5), k,
                                 0xAA00u + static_cast<std::uint64_t>(k));
    EXPECT_EQ(violations(res), 0) << res.summary();
    EXPECT_EQ(res.timeouts, 0) << res.summary();
  }
}

TEST(Ablation, NoSecondErrorSuppressionBreaks) {
  auto p = ProtocolParams::major_can(5);
  p.suppress_second_errors = false;
  auto res = recovery_campaign(p, 2, 0xAB01);
  EXPECT_GT(violations(res), 0)
      << "§5: second-error flags 'could spoil the agreement process'";
  // And the scripted Fig. 5 run degrades too.
  auto fig5 = run_eof_scenario(
      "fig5-ablated", p, 4,
      {FaultTarget::eof_bit(1, 2), FaultTarget::eof_bit(0, 3),
       FaultTarget::eof_bit(0, 4),
       FaultTarget::eof_relative(1, p.sample_begin() + 1),
       FaultTarget::eof_relative(1, p.sample_begin() + 3)});
  EXPECT_FALSE(fig5.consistent_single_delivery()) << fig5.summary();
}

TEST(Ablation, ConvergentDelimiterBreaksOnDelimiterFlips) {
  auto p = ProtocolParams::major_can(5);
  p.delimiter = DelimiterMode::ConvergentCount;
  auto res = recovery_campaign(p, 2, 0xAB02);
  EXPECT_GT(res.imo, 0)
      << "a flip during the delimiter silently stalls a node: "
      << res.summary();
}

TEST(Ablation, EagerDelimiterBreaks) {
  auto p = ProtocolParams::major_can(5);
  p.delimiter = DelimiterMode::EagerCount;
  auto res = recovery_campaign(p, 2, 0xAB03);
  EXPECT_GT(res.imo, 0) << res.summary();
}

TEST(Ablation, FirstSubfieldSizingIsTight) {
  // The sizing worst case: a CRC-error flag delayed by m-1 disturbances.
  // Paper's m-bit sub-field: the delayed observer stays on the rejecting
  // side; everyone rejects, the retransmission restores consistency.
  auto paper = run_crc_delay_scenario(ProtocolParams::major_can(5));
  EXPECT_FALSE(paper.imo()) << paper.summary();
  EXPECT_FALSE(paper.double_reception()) << paper.summary();

  // A sub-field narrower than m reads the delayed flag as an acceptance
  // notification: the CRC-error node is left behind.
  auto narrow_proto = ProtocolParams::major_can(5);
  narrow_proto.first_subfield_override = 3;
  auto narrow = run_crc_delay_scenario(narrow_proto);
  EXPECT_TRUE(narrow.imo()) << narrow.summary();
}

TEST(Ablation, LowVoteThresholdAcceptsOnNoise) {
  auto p = ProtocolParams::major_can(5);
  p.majority_override = 2;
  auto res = recovery_campaign(p, 4, 0xAB04);
  EXPECT_GT(violations(res), 0) << res.summary();
}

TEST(Ablation, HighVoteThresholdRejectsAgainstExtenders) {
  auto p = ProtocolParams::major_can(5);
  p.majority_override = 2 * 5 - 2;
  // Fig. 5 has two sampling-window disturbances: 7/9 dominant fails a
  // threshold of 8, so X rejects while the transmitter and Y accept.
  auto fig5 = run_eof_scenario(
      "fig5-high-threshold", p, 4,
      {FaultTarget::eof_bit(1, 2), FaultTarget::eof_bit(0, 3),
       FaultTarget::eof_bit(0, 4),
       FaultTarget::eof_relative(1, p.sample_begin() + 1),
       FaultTarget::eof_relative(1, p.sample_begin() + 3)});
  EXPECT_TRUE(fig5.imo()) << fig5.summary();
}

TEST(Ablation, DelimiterModeNamesExist) {
  EXPECT_STREQ(delimiter_mode_name(DelimiterMode::FixedEndGame),
               "fixed-end-game");
  EXPECT_STREQ(delimiter_mode_name(DelimiterMode::ConvergentCount),
               "convergent-count");
  EXPECT_STREQ(delimiter_mode_name(DelimiterMode::EagerCount), "eager-count");
}

}  // namespace
