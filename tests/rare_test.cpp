// Tests for the rare-event campaign engine (src/rare/): proposal profiles,
// likelihood accounting, trial classification, the splitting engine, and
// the campaign runner's determinism contracts (jobs-independence,
// checkpoint/resume byte-identity) plus its headline acceptance gate —
// the empirical estimate agreeing with expression (4).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "rare/campaign.hpp"

namespace mcan {
namespace {

// --- BiasProfile ---

TEST(BiasProfile, ResolveDefaultsForCan) {
  BiasProfile p;
  p.resolve(ProtocolParams::standard_can());
  EXPECT_EQ(p.win_lo_rel, -2);
  EXPECT_EQ(p.win_hi_rel, 7 + 3);  // EOF + intermission
  ASSERT_EQ(p.tx_hot.size(), 2u);
  EXPECT_EQ(p.tx_hot[0], 5);  // last-but-one EOF bit
  EXPECT_EQ(p.tx_hot[1], 6);  // last EOF bit
  ASSERT_EQ(p.rx_hot.size(), 2u);
  EXPECT_EQ(p.rx_hot[0], 4);
  EXPECT_EQ(p.rx_hot[1], 5);
  EXPECT_NO_THROW(p.validate());
}

TEST(BiasProfile, ResolveDefaultsForMajorCanMatchEndGameHorizon) {
  BiasProfile p;
  p.resolve(ProtocolParams::major_can(5));
  EXPECT_EQ(p.win_hi_rel, 3 * 5 + 5);  // the exhaustive sweeps' auto bound
}

TEST(BiasProfile, ResolveKeepsExplicitWindow) {
  BiasProfile p;
  p.win_lo_rel = -1;
  p.win_hi_rel = 4;
  p.resolve(ProtocolParams::standard_can());
  EXPECT_EQ(p.win_lo_rel, -1);
  EXPECT_EQ(p.win_hi_rel, 4);
}

TEST(BiasProfile, QAddressesRoleAndPosition) {
  BiasProfile p;
  p.resolve(ProtocolParams::standard_can());
  EXPECT_EQ(p.q(true, 6), p.tx_hot_q);    // transmitter hotspot
  EXPECT_EQ(p.q(false, 5), p.rx_hot_q);   // receiver hotspot
  EXPECT_EQ(p.q(true, 3), p.window_q);    // in window, not hot
  EXPECT_EQ(p.q(false, 6), p.window_q);   // 6 is hot for tx only
  EXPECT_EQ(p.q(true, -5), p.base);       // before the window
  EXPECT_EQ(p.q(false, 99), p.base);      // after the window
}

TEST(BiasProfile, ValidateRejectsBadProbabilities) {
  BiasProfile p;
  p.resolve(ProtocolParams::standard_can());
  p.window_q = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  BiasProfile unresolved;  // lo > hi: never resolved
  EXPECT_THROW(unresolved.validate(), std::invalid_argument);
}

// --- BiasedFaults likelihood accounting ---

TEST(BiasedFaults, UnbiasedProfileHasExactlyUnitWeight) {
  const double bs = 1e-3;
  BiasedFaults inj(bs, unbiased_profile(ProtocolParams::standard_can(), bs),
                   100, Rng(42, 0));
  NodeBitInfo info{};
  for (BitTime t = 0; t < 400; ++t) {
    (void)inj.flips(static_cast<NodeId>(t % 3), t, info, Level::Recessive);
  }
  // q == p for every draw, so each term is log(p/p) or log(1-p)-log(1-p):
  // identically zero, not just approximately.
  EXPECT_EQ(inj.llr(), 0.0);
}

TEST(BiasedFaults, CleanPrefixAccountingMatchesForcedDraws) {
  BiasProfile prof;
  prof.resolve(ProtocolParams::standard_can());
  const double bs = 2e-4;
  const int eof_start = 1000;  // window far away: every draw forced clean
  BiasedFaults simulated(bs, prof, eof_start, Rng(1, 0));
  NodeBitInfo info{};
  const long long draws = 321;
  for (long long i = 0; i < draws; ++i) {
    EXPECT_FALSE(simulated.flips(0, static_cast<BitTime>(i), info,
                                 Level::Recessive));
  }
  BiasedFaults accounted(bs, prof, eof_start, Rng(1, 0));
  accounted.account_clean_prefix(draws);
  EXPECT_DOUBLE_EQ(simulated.llr(), accounted.llr());
  EXPECT_DOUBLE_EQ(accounted.llr(),
                   static_cast<double>(draws) * std::log1p(-bs));
}

TEST(BiasedFaults, CleanPrefixRequiresTailOnlyProposal) {
  BiasProfile prof;
  prof.resolve(ProtocolParams::standard_can());
  prof.base = 1e-4;  // flips possible anywhere: prefix cannot be skipped
  BiasedFaults inj(1e-4, prof, 100, Rng(1, 0));
  EXPECT_THROW(inj.account_clean_prefix(10), std::logic_error);
}

// --- ProbePlan / classification ---

TEST(ProbePlan, MakeResolvesTailOnlyGeometry) {
  const ProbePlan plan =
      ProbePlan::make(ProtocolParams::standard_can(), 32, 1e-5, {});
  EXPECT_DOUBLE_EQ(plan.ber_star, 1e-5 / 32);
  EXPECT_GT(plan.eof_start, 0);
  EXPECT_EQ(plan.t_first, static_cast<BitTime>(plan.eof_start - 2));
  EXPECT_EQ(plan.prefix_draws(),
            32LL * static_cast<long long>(plan.t_first));
}

TEST(ProbePlan, MakeRejectsBadParameters) {
  const auto can = ProtocolParams::standard_can();
  EXPECT_THROW((void)ProbePlan::make(can, 1, 1e-5, {}),
               std::invalid_argument);
  EXPECT_THROW((void)ProbePlan::make(can, 32, 0.0, {}),
               std::invalid_argument);
  EXPECT_THROW((void)ProbePlan::make(can, 32, 2.0, {}),
               std::invalid_argument);
  BiasProfile before_frame;
  before_frame.win_lo_rel = -100000;
  before_frame.win_hi_rel = 0;
  EXPECT_THROW((void)ProbePlan::make(can, 32, 1e-5, before_frame),
               std::invalid_argument);
}

TEST(ClassifyTrial, ReferenceSemantics) {
  // All receivers have it: consistent.
  EXPECT_FALSE(classify_trial(3, {1, 1, 1}, 1, false).imo);
  // One receiver lacks it: inconsistent omission.
  EXPECT_TRUE(classify_trial(3, {1, 1, 0}, 1, false).imo);
  // Sender believes success, nobody has it: omission AND total loss.
  {
    const TrialOutcome out = classify_trial(3, {0, 0, 0}, 1, false);
    EXPECT_TRUE(out.imo);
    EXPECT_TRUE(out.loss);
  }
  // Nothing delivered, sender never succeeded: no event.
  EXPECT_FALSE(classify_trial(3, {0, 0, 0}, 0, false).imo);
  // A receiver delivered twice: duplicate.
  EXPECT_TRUE(classify_trial(3, {0, 2, 1}, 1, false).dup);
  // Timeout poisons everything else.
  const TrialOutcome out = classify_trial(3, {0, 1, 0}, 1, true);
  EXPECT_TRUE(out.timeout);
  EXPECT_FALSE(out.imo);
}

// --- Trial equivalence: cloning is an optimisation, not a model change ---

TEST(RareTrial, ClonedPrefixMatchesFullSimulationExactly) {
  const ProbePlan plan =
      ProbePlan::make(ProtocolParams::standard_can(), 8, 1e-3, {});
  ASSERT_GT(plan.t_first, 0u);
  const PrefixState prefix(plan);
  ProbePlan full = plan;
  full.t_first = 0;  // simulate the clean prefix bit by bit instead
  for (std::uint64_t i = 0; i < 25; ++i) {
    const TrialOutcome cloned = run_biased_trial(plan, &prefix, Rng(7, i));
    const TrialOutcome direct = run_biased_trial(full, nullptr, Rng(7, i));
    // Forced-clean draws consume no randomness, so the streams align and
    // the runs must agree bit-for-bit — outcome and likelihood both.
    EXPECT_EQ(cloned.imo, direct.imo) << "trial " << i;
    EXPECT_EQ(cloned.dup, direct.dup) << "trial " << i;
    EXPECT_EQ(cloned.timeout, direct.timeout) << "trial " << i;
    EXPECT_DOUBLE_EQ(cloned.llr, direct.llr) << "trial " << i;
  }
}

TEST(Splitting, FactorOneReducesToPlainTrial) {
  const ProbePlan plan =
      ProbePlan::make(ProtocolParams::standard_can(), 8, 1e-3, {});
  const PrefixState prefix(plan);
  SplitParams sp;
  sp.factor = 1;  // crossings never split: one leaf, weight 1
  for (std::uint64_t i = 0; i < 25; ++i) {
    const SplitTrialResult split = run_split_trial(plan, prefix, sp, Rng(3, i));
    const TrialOutcome plain = run_biased_trial(plan, &prefix, Rng(3, i));
    EXPECT_EQ(split.leaves, 1);
    const double expected =
        (plain.timeout || !plain.imo) ? 0.0 : std::exp(plain.llr);
    EXPECT_DOUBLE_EQ(split.x_imo, expected) << "trial " << i;
  }
}

TEST(Splitting, RequiresTailOnlyPlan) {
  BiasProfile prof = unbiased_profile(ProtocolParams::standard_can(), 1e-3);
  const ProbePlan plan =
      ProbePlan::make(ProtocolParams::standard_can(), 4, 4e-3, prof);
  ASSERT_EQ(plan.t_first, 0u);
  const ProbePlan tail =
      ProbePlan::make(ProtocolParams::standard_can(), 4, 4e-3, {});
  const PrefixState prefix(tail);
  EXPECT_THROW((void)run_split_trial(plan, prefix, {}, Rng(1, 0)),
               std::logic_error);
  SplitParams bad;
  bad.factor = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

// --- Campaign configuration ---

TEST(RareConfig, ValidateRejectsBadValues) {
  const auto expect_reject = [](auto mutate) {
    RareConfig cfg;
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  };
  expect_reject([](RareConfig& c) { c.n_nodes = 1; });
  expect_reject([](RareConfig& c) { c.ber = 0.0; });
  expect_reject([](RareConfig& c) { c.trials = 0; });
  expect_reject([](RareConfig& c) { c.jobs = -1; });
  expect_reject([](RareConfig& c) { c.batch = 0; });
  expect_reject([](RareConfig& c) { c.checkpoint_every = 0; });
  expect_reject([](RareConfig& c) { c.load = 0.0; });
  expect_reject([](RareConfig& c) {
    c.mode = RareMode::kSplitting;
    c.split.factor = 0;
  });
}

TEST(RareConfig, FingerprintTracksTheTrialStream) {
  RareConfig a;
  RareConfig b = a;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  // Layout knobs do not change the stream.
  b.jobs = 8;
  b.batch = 17;
  b.trials = 999;
  b.checkpoint_every = 5;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  // Stream-determining knobs do.
  RareConfig c = a;
  c.seed = 2;
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  RareConfig d = a;
  d.ber = 2e-5;
  EXPECT_NE(a.fingerprint(), d.fingerprint());
  RareConfig e = a;
  e.mode = RareMode::kNaive;
  EXPECT_NE(a.fingerprint(), e.fingerprint());
}

// --- Campaign determinism: the shard-independence contract ---

RareConfig small_campaign() {
  RareConfig cfg;
  cfg.ber = 3e-3;  // elevated so hits are plentiful at tiny trial counts
  cfg.trials = 1200;
  cfg.batch = 100;
  cfg.seed = 11;
  return cfg;
}

TEST(RareCampaign, EstimateIndependentOfJobs) {
  RareConfig one = small_campaign();
  one.jobs = 1;
  RareConfig many = small_campaign();
  many.jobs = 8;
  const RareResult a = run_campaign(one);
  const RareResult b = run_campaign(many);
  EXPECT_EQ(a.imo, b.imo);  // accumulator state, bit-for-bit
  EXPECT_EQ(a.dup, b.dup);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_GT(a.imo.hits(), 0);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(RareCampaign, ResumeIsByteIdenticalToStraightThrough) {
  const std::string straight = testing::TempDir() + "rare_straight.jnl";
  const std::string resumed = testing::TempDir() + "rare_resumed.jnl";
  std::remove(straight.c_str());
  std::remove(resumed.c_str());

  RareConfig cfg = small_campaign();
  cfg.checkpoint_every = 300;
  cfg.jobs = 4;

  RareConfig full = cfg;
  full.journal = straight;
  const RareResult a = run_campaign(full);

  RareConfig part = cfg;
  part.journal = resumed;
  part.trials = 600;
  (void)run_campaign(part);
  RareConfig rest = cfg;
  rest.journal = resumed;
  const RareResult b = run_campaign(rest);

  EXPECT_EQ(b.resumed_from, 600);
  EXPECT_EQ(a.imo, b.imo);
  EXPECT_EQ(a.dup, b.dup);
  EXPECT_EQ(a.timeouts, b.timeouts);
  // The exact-hex snapshots make the journals byte-identical too.
  EXPECT_EQ(read_file(straight), read_file(resumed));

  // load_campaign restores the same state without simulating.
  const RareResult loaded = load_campaign(rest);
  EXPECT_EQ(loaded.imo, a.imo);
  EXPECT_EQ(loaded.resumed_from, cfg.trials);
}

TEST(RareCampaign, JournalFingerprintMismatchRefusesToResume) {
  const std::string path = testing::TempDir() + "rare_mismatch.jnl";
  std::remove(path.c_str());
  RareConfig cfg = small_campaign();
  cfg.trials = 100;
  cfg.journal = path;
  (void)run_campaign(cfg);
  RareConfig other = cfg;
  other.ber = 1e-3;  // different stream: the journal is not ours
  EXPECT_THROW((void)run_campaign(other), std::runtime_error);
  EXPECT_THROW((void)load_campaign(other), std::runtime_error);
}

TEST(RareCampaign, LoadWithoutJournalThrows) {
  RareConfig cfg = small_campaign();
  EXPECT_THROW((void)load_campaign(cfg), std::runtime_error);
  cfg.journal = testing::TempDir() + "rare_never_written.jnl";
  std::remove(cfg.journal.c_str());
  EXPECT_THROW((void)load_campaign(cfg), std::runtime_error);
}

// --- Statistical correctness (conformance): model vs machine ---

TEST(RareCampaign, ImportanceAndSplittingAgreeAtElevatedBer) {
  RareConfig imp = small_campaign();
  imp.trials = 3000;
  imp.jobs = 4;
  RareConfig spl = imp;
  spl.mode = RareMode::kSplitting;
  const RareResult a = run_campaign(imp);
  const RareResult b = run_campaign(spl);
  const double pa = a.imo_estimate().p_hat;
  const double pb = b.imo_estimate().p_hat;
  ASSERT_GT(pa, 0.0);
  ASSERT_GT(pb, 0.0);
  // Two estimators with different error structure, one target.
  EXPECT_GT(pb / pa, 0.5);
  EXPECT_LT(pb / pa, 2.0);
  // And both near the closed form at this (elevated) ber.
  const double p4 = a.closed_form_p4();
  EXPECT_GT(pa / p4, 0.5);
  EXPECT_LT(pa / p4, 2.0);
}

TEST(RareCampaign, NaiveModeRunsUnweighted) {
  RareConfig cfg = small_campaign();
  cfg.mode = RareMode::kNaive;
  cfg.trials = 300;
  cfg.jobs = 4;
  const RareResult res = run_campaign(cfg);
  const RareEstimate est = res.imo_estimate();
  EXPECT_EQ(est.trials, 300);
  // IMO is invisible to naive MC at these rates, but the Wilson interval
  // still gives an honest upper bound.
  EXPECT_GT(est.ci_hi, 0.0);
  EXPECT_LT(est.ci_hi, 0.1);
}

// The PR's acceptance gate, as a regression test: the empirical estimate
// reproduces expression (4) on the reference bus (N = 32) at a Table-1
// ber, with tight error bars and a variance-reduction factor that makes
// the measurement feasible at all.
TEST(RareCampaign, ReproducesExpressionFourOnReferenceBus) {
  RareConfig cfg;
  cfg.ber = 1e-5;
  cfg.n_nodes = 32;
  cfg.trials = 12000;
  cfg.jobs = 4;
  const RareResult res = run_campaign(cfg);
  const RareEstimate est = res.imo_estimate();
  const double p4 = res.closed_form_p4();
  ASSERT_GT(est.p_hat, 0.0);
  EXPECT_LE(est.rel_halfwidth, 0.25);
  EXPECT_GT(est.p_hat / p4, 0.5) << est.to_string();
  EXPECT_LT(est.p_hat / p4, 2.0) << est.to_string();
  EXPECT_GE(res.variance_reduction(), 1e3);
  // The JSON export carries the numbers the CI gate consumes.
  const std::string json = res.to_json();
  EXPECT_NE(json.find("\"closed_form_p4\""), std::string::npos);
  EXPECT_NE(json.find("\"variance_reduction\""), std::string::npos);
  EXPECT_NE(json.find("\"rel_halfwidth\""), std::string::npos);
}

}  // namespace
}  // namespace mcan
