// mcan-analyze rule tests over committed fixture snippets.
//
// Each fixture in tests/fixtures/static/ encodes one rule's positive and
// negative cases with line-stable layout; the assertions here pin exact
// (rule, line) pairs, so a rule that drifts (new false positive, lost
// detection, off-by-one line) fails loudly.  The fixtures are lexed, not
// compiled — they are deliberately not valid translation units.
#include "analysis/static/analyze.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace mcan::sa {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(MCAN_STATIC_FIXTURE_DIR) + "/" + name;
}

std::string read_fixture(const std::string& name) {
  std::ifstream in(fixture_path(name), std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << name;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

using RuleLine = std::pair<std::string, int>;

std::multiset<RuleLine> rule_lines(const std::vector<StaticFinding>& fs) {
  std::multiset<RuleLine> out;
  for (const StaticFinding& f : fs) out.emplace(f.rule, f.line);
  return out;
}

/// Analyze one fixture under the given config; findings + suppressed out.
std::vector<StaticFinding> analyze_fixture(
    const std::string& name, const AnalyzeConfig& cfg,
    std::vector<StaticFinding>* suppressed = nullptr) {
  return analyze_source(name, read_fixture(name), cfg, suppressed);
}

TEST(StaticAnalyze, RandRuleFlagsEveryEntropySource) {
  const auto found = analyze_fixture("rand_violation.cc", AnalyzeConfig{});
  EXPECT_EQ(rule_lines(found), (std::multiset<RuleLine>{
                                   {"nondet-random", 4},   // random_device
                                   {"nondet-random", 5},   // rand()
                                   {"nondet-random", 6},   // srand()
                               }));
  // mylib::rand() on line 7 is foreign-qualified: not ours to police.
}

TEST(StaticAnalyze, UnorderedIterationAndSuppressionLifecycle) {
  std::vector<StaticFinding> suppressed;
  const auto found =
      analyze_fixture("unordered.cc", AnalyzeConfig{}, &suppressed);
  EXPECT_EQ(rule_lines(found),
            (std::multiset<RuleLine>{
                {"nondet-unordered-iter", 4},       // bare range-for
                {"nondet-unordered-iter", 7},       // .begin() walk
                {"suppression-missing-reason", 12},  // allow() without why
                {"unused-suppression", 16},          // stale allow()
            }));
  // The two directives that do match silence their findings.
  EXPECT_EQ(rule_lines(suppressed), (std::multiset<RuleLine>{
                                        {"nondet-unordered-iter", 9},
                                        {"nondet-unordered-iter", 13},
                                    }));
}

TEST(StaticAnalyze, PointerKeysAndHashInstantiations) {
  const auto found = analyze_fixture("pointer_key.cc", AnalyzeConfig{});
  EXPECT_EQ(rule_lines(found), (std::multiset<RuleLine>{
                                   {"nondet-pointer-key", 2},
                                   {"nondet-hash", 4},
                                   {"nondet-hash", 5},
                               }));
  // The pointer instantiation gets the stronger diagnosis.
  for (const StaticFinding& f : found) {
    if (f.rule == "nondet-hash" && f.line == 5) {
      EXPECT_NE(f.message.find("address"), std::string::npos) << f.message;
    }
  }
}

TEST(StaticAnalyze, WallclockOutsideWhitelist) {
  const auto found = analyze_fixture("wallclock.cc", AnalyzeConfig{});
  EXPECT_EQ(rule_lines(found), (std::multiset<RuleLine>{
                                   {"wallclock", 3},  // steady_clock
                                   {"wallclock", 5},  // gettimeofday
                                   {"wallclock", 6},  // std::time
                               }));
}

TEST(StaticAnalyze, WallclockWhitelistSilencesWholeFile) {
  AnalyzeConfig cfg;
  cfg.wallclock_allow.push_back("bench/");
  const auto found = analyze_source("bench/wallclock.cc",
                                    read_fixture("wallclock.cc"), cfg, nullptr);
  EXPECT_TRUE(found.empty()) << found.size() << " findings";
}

TEST(StaticAnalyze, SignalHandlerSafePatternsAccepted) {
  // volatile sig_atomic_t store + lock-free-asserted atomic store: clean.
  const auto found = analyze_fixture("sighandler_good.cc", AnalyzeConfig{});
  EXPECT_TRUE(found.empty()) << found.front().rule << " at line "
                             << found.front().line;
}

TEST(StaticAnalyze, SignalHandlerViolationsEachDiagnosed) {
  const auto found = analyze_fixture("sighandler_bad.cc", AnalyzeConfig{});
  EXPECT_EQ(rule_lines(found), (std::multiset<RuleLine>{
                                   {"signal-safety", 5},   // printf call
                                   {"signal-safety", 6},   // plain global
                                   {"signal-safety", 7},   // locking atomic
                                   {"signal-safety", 11},  // lambda handler
                               }));
}

TEST(StaticAnalyze, MalformedDirectiveIsItselfAFinding) {
  const auto found = analyze_fixture("directive.cc", AnalyzeConfig{});
  EXPECT_EQ(rule_lines(found),
            (std::multiset<RuleLine>{{"bad-directive", 2}}));
}

TEST(StaticAnalyze, StringLiteralsNeverTripRules) {
  const auto found = analyze_source(
      "inline.cc", "int x = f(\"rand()\");\nauto s = R\"(srand(1))\";\n",
      AnalyzeConfig{}, nullptr);
  EXPECT_TRUE(found.empty());
}

TEST(StaticAnalyze, OnlyRulesFilterRestrictsOutput) {
  AnalyzeConfig cfg;
  cfg.only_rules.push_back("nondet-hash");
  EXPECT_TRUE(analyze_fixture("rand_violation.cc", cfg).empty());
  EXPECT_EQ(analyze_fixture("pointer_key.cc", cfg).size(), 2u);
}

TEST(StaticAnalyze, RuleCatalogMatchesImplementedRules) {
  std::set<std::string> ids;
  for (const RuleInfo& r : rule_catalog()) ids.insert(r.id);
  EXPECT_EQ(ids, (std::set<std::string>{
                     "nondet-random", "nondet-hash", "nondet-pointer-key",
                     "nondet-unordered-iter", "wallclock", "signal-safety"}));
}

TEST(StaticAnalyze, AnalyzePathsSortsExcludesAndCountsFiles) {
  AnalyzeConfig cfg;
  const std::string root = MCAN_STATIC_FIXTURE_DIR;
  AnalyzeReport report = analyze_paths(
      root,
      {fixture_path("wallclock.cc"), fixture_path("rand_violation.cc")}, cfg);
  EXPECT_EQ(report.files_scanned, 2);
  EXPECT_FALSE(report.clean());
  // Findings come back sorted by (file, line, rule) regardless of the
  // scan order: rand_violation.cc sorts before wallclock.cc.
  ASSERT_FALSE(report.findings.empty());
  EXPECT_TRUE(std::is_sorted(
      report.findings.begin(), report.findings.end(),
      [](const StaticFinding& a, const StaticFinding& b) {
        return std::tie(a.file, a.line) < std::tie(b.file, b.line);
      }));
  EXPECT_EQ(report.findings.front().file, "rand_violation.cc");

  cfg.exclude.push_back("rand_");
  cfg.exclude.push_back("wallclock");
  report = analyze_paths(
      root,
      {fixture_path("wallclock.cc"), fixture_path("rand_violation.cc")}, cfg);
  EXPECT_EQ(report.files_scanned, 0);
  EXPECT_TRUE(report.clean());
}

TEST(StaticAnalyze, MissingFileIsAnIoErrorFinding) {
  const AnalyzeReport report = analyze_paths(
      MCAN_STATIC_FIXTURE_DIR, {fixture_path("no_such_fixture.cc")},
      AnalyzeConfig{});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "io-error");
}

TEST(StaticAnalyze, CollectFilesFailsWithoutCompilationDatabase) {
  std::vector<std::string> files;
  std::string error;
  EXPECT_FALSE(collect_files("/no/such/compile_commands.json", ".",
                             AnalyzeConfig{}, files, error));
  EXPECT_NE(error.find("compilation database"), std::string::npos) << error;
}

TEST(StaticAnalyze, JsonReportCarriesCleanFlag) {
  AnalyzeReport dirty;
  dirty.files_scanned = 1;
  dirty.findings.push_back({"wallclock", "a.cc", 3, "msg"});
  EXPECT_NE(format_json(dirty).find("\"clean\": false"), std::string::npos);
  AnalyzeReport clean;
  clean.files_scanned = 1;
  EXPECT_NE(format_json(clean).find("\"clean\": true"), std::string::npos);
  EXPECT_NE(format_text(dirty).find("a.cc:3: [wallclock] msg"),
            std::string::npos);
}

}  // namespace
}  // namespace mcan::sa
