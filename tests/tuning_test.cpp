// Tests for the m-selection analysis (paper §5's "parametrisable in m").
#include <gtest/gtest.h>

#include "analysis/tuning.hpp"

namespace mcan {
namespace {

TEST(BinomialPmf, MatchesSmallCases) {
  EXPECT_NEAR(binomial_pmf(4, 2, 0.5), 6.0 / 16.0, 1e-12);
  EXPECT_NEAR(binomial_pmf(3, 0, 0.1), 0.729, 1e-12);
  EXPECT_NEAR(binomial_pmf(3, 3, 0.1), 0.001, 1e-12);
  EXPECT_EQ(binomial_pmf(3, 4, 0.1), 0.0);
  EXPECT_EQ(binomial_pmf(3, -1, 0.1), 0.0);
}

TEST(BinomialPmf, DegenerateProbabilities) {
  EXPECT_EQ(binomial_pmf(10, 0, 0.0), 1.0);
  EXPECT_EQ(binomial_pmf(10, 3, 0.0), 0.0);
  EXPECT_EQ(binomial_pmf(10, 10, 1.0), 1.0);
  EXPECT_EQ(binomial_pmf(10, 9, 1.0), 0.0);
}

TEST(BinomialPmf, SumsToOne) {
  double sum = 0;
  for (int k = 0; k <= 50; ++k) sum += binomial_pmf(50, k, 0.3);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Tail, MonotoneInM) {
  ModelParams p;
  p.ber = 1e-4;
  double prev = 1.0;
  for (int m = 3; m <= 10; ++m) {
    const double tail = p_more_than_m_errors_per_frame(p, m);
    EXPECT_LT(tail, prev) << "m=" << m;
    EXPECT_GE(tail, 0.0);
    prev = tail;
  }
}

TEST(Tail, NoCancellationFloor) {
  // The direct tail sum must keep shrinking far below the 1-CDF
  // cancellation floor (~1e-14).
  ModelParams p;
  p.ber = 1e-4;
  EXPECT_LT(p_more_than_m_errors_per_frame(p, 8), 1e-20);
  EXPECT_GT(p_more_than_m_errors_per_frame(p, 8), 0.0);
}

TEST(Tail, ScalesWithBer) {
  ModelParams lo, hi;
  lo.ber = 1e-6;
  hi.ber = 1e-4;
  EXPECT_GT(p_more_than_m_errors_per_frame(hi, 5),
            1e6 * p_more_than_m_errors_per_frame(lo, 5));
}

TEST(Recommend, AggressiveBerNeedsLargerM) {
  ModelParams p;
  const double target = 1e-9;
  p.ber = 1e-6;
  const int benign = recommend_m(p, target);
  p.ber = 1e-4;
  const int aggressive = recommend_m(p, target);
  p.ber = 1e-3;
  const int harsh = recommend_m(p, target);
  EXPECT_LE(benign, aggressive);
  EXPECT_LT(aggressive, harsh);
  EXPECT_GE(benign, 3);
}

TEST(Recommend, PaperReferenceBusAtPaperBer) {
  // At the paper's mid ber = 1e-5 the proposed m = 5 comfortably meets the
  // aerospace target on the reference bus.
  ModelParams p;
  p.ber = 1e-5;
  EXPECT_LE(recommend_m(p, 1e-9), 5);
}

TEST(Recommend, UnreachableTargetReturnsSentinel) {
  ModelParams p;
  p.ber = 1e-4;
  EXPECT_EQ(recommend_m(p, 0.0, 8), 9);
}

TEST(TuningTable, RowsCoverRangeAndOverheadFormulas) {
  ModelParams p;
  auto rows = tuning_table(p, 8);
  ASSERT_EQ(rows.size(), 6u);  // m = 3..8
  for (const TuningRow& r : rows) {
    EXPECT_EQ(r.overhead_bits_best, 2 * r.m - 7);
    EXPECT_EQ(r.overhead_bits_worst, 4 * r.m - 9);
  }
  EXPECT_NE(render_tuning_table(rows).find("exposure/hour"),
            std::string::npos);
}

}  // namespace
}  // namespace mcan
