// Bounded exhaustive verification as tests: complete enumeration of all
// error patterns in the frame-tail window for a 3-node bus.  A passing
// MajorCAN case here is a *proof* for that (window, bus size, budget) —
// the model checking the paper planned as future work.
#include <gtest/gtest.h>

#include <stdexcept>

#include "scenario/exhaustive.hpp"

namespace {

using namespace mcan;

ExhaustiveResult verify(ProtocolParams proto, int errors) {
  ExhaustiveConfig cfg;
  cfg.protocol = proto;
  cfg.n_nodes = 3;
  cfg.errors = errors;
  return run_exhaustive(cfg);
}

TEST(Exhaustive, MajorCan3FullBudgetVerified) {
  // MajorCAN_3 tolerates up to m = 3 errors: verify the *entire* claim for
  // this bus size and window — every 1-, 2- and 3-flip pattern.
  for (int k = 1; k <= 3; ++k) {
    auto res = verify(ProtocolParams::major_can(3), k);
    EXPECT_EQ(res.violations(), 0) << res.summary();
    EXPECT_GT(res.cases, 0);
  }
}

TEST(Exhaustive, MajorCan5UpToTwoErrorsVerified) {
  for (int k = 1; k <= 2; ++k) {
    auto res = verify(ProtocolParams::major_can(5), k);
    EXPECT_EQ(res.violations(), 0) << res.summary();
  }
}

TEST(Exhaustive, StandardCanSingleErrorOnlyDuplicates) {
  auto res = verify(ProtocolParams::standard_can(), 1);
  EXPECT_EQ(res.imo, 0) << "one error cannot split standard CAN";
  EXPECT_GT(res.double_rx, 0) << "but Fig. 1b double reception exists";
  EXPECT_EQ(res.total_loss, 0);
  // Exactly: one per receiver hitting its last-but-one EOF bit, plus the
  // transmitter patterns that force a retransmission everyone re-receives.
  ASSERT_FALSE(res.examples.empty());
}

TEST(Exhaustive, StandardCanTwoErrorsContainFig3a) {
  auto res = verify(ProtocolParams::standard_can(), 2);
  EXPECT_GT(res.imo, 0)
      << "the enumerator must rediscover the paper's new scenario: "
      << res.summary();
}

TEST(Exhaustive, MinorCanSingleErrorFullyClean) {
  auto res = verify(ProtocolParams::minor_can(), 1);
  EXPECT_EQ(res.violations(), 0)
      << "MinorCAN fixes every single-error pattern: " << res.summary();
}

TEST(Exhaustive, MinorCanTwoErrorsContainFig3b) {
  auto res = verify(ProtocolParams::minor_can(), 2);
  EXPECT_GT(res.imo, 0) << res.summary();
  EXPECT_LT(res.imo + res.double_rx,
            verify(ProtocolParams::standard_can(), 2).imo +
                verify(ProtocolParams::standard_can(), 2).double_rx)
      << "MinorCAN strictly reduces the violating pattern count";
}

TEST(Exhaustive, CanTwoErrorImoPatternsAreExactlyFig3a) {
  // On a 3-node bus there are exactly two 2-error IMO patterns for
  // standard CAN, and they are precisely the paper's Fig. 3a: one receiver
  // hit in the last-but-one EOF bit (0-based 5) plus the transmitter's
  // view of the last bit (0-based 6) flipped.
  ExhaustiveConfig cfg;
  cfg.protocol = ProtocolParams::standard_can();
  cfg.n_nodes = 3;
  cfg.errors = 2;
  auto res = run_exhaustive(cfg, 1000);

  std::vector<Counterexample> imos;
  for (const Counterexample& ce : res.examples) {
    if (ce.outcome.find("IMO") != std::string::npos) imos.push_back(ce);
  }
  ASSERT_EQ(imos.size(), 2u) << res.summary();
  for (const Counterexample& ce : imos) {
    ASSERT_EQ(ce.flips.size(), 2u);
    // Sort: transmitter flip and receiver flip.
    auto tx_flip = ce.flips[0].first == 0 ? ce.flips[0] : ce.flips[1];
    auto rx_flip = ce.flips[0].first == 0 ? ce.flips[1] : ce.flips[0];
    EXPECT_EQ(tx_flip.first, 0u) << ce.to_string();
    EXPECT_EQ(tx_flip.second, 6) << "transmitter misses the flag in the "
                                    "last EOF bit: " << ce.to_string();
    EXPECT_TRUE(rx_flip.first == 1 || rx_flip.first == 2);
    EXPECT_EQ(rx_flip.second, 5) << "receiver phantom in the last-but-one "
                                    "EOF bit: " << ce.to_string();
  }
}

TEST(Exhaustive, CounterexamplesCarryFlipPositions) {
  auto res = verify(ProtocolParams::standard_can(), 1);
  ASSERT_FALSE(res.examples.empty());
  const std::string s = res.examples.front().to_string();
  EXPECT_NE(s.find("node"), std::string::npos);
  EXPECT_NE(s.find("EOF"), std::string::npos);
  EXPECT_NE(s.find("=>"), std::string::npos);
}

TEST(Exhaustive, WindowDefaultsDependOnProtocol) {
  ExhaustiveConfig cfg;
  cfg.protocol = ProtocolParams::major_can(5);
  EXPECT_EQ(cfg.window_hi(), 3 * 5 + 5);
  cfg.protocol = ProtocolParams::standard_can();
  EXPECT_EQ(cfg.window_hi(), 7 + 3);
}

TEST(Exhaustive, ExplicitWindowOverridesAuto) {
  ExhaustiveConfig cfg;
  cfg.protocol = ProtocolParams::standard_can();
  cfg.win_hi_rel = 4;
  EXPECT_EQ(cfg.window_hi(), 4);
  cfg.win_hi_rel.reset();
  EXPECT_EQ(cfg.window_hi(), 10);  // back to the auto default
}

TEST(ExhaustiveValidate, RejectsEmptyWindow) {
  ExhaustiveConfig cfg;
  cfg.protocol = ProtocolParams::standard_can();
  cfg.win_lo_rel = 6;
  cfg.win_hi_rel = 3;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ExhaustiveValidate, RejectsWindowPastEndGameHorizon) {
  ExhaustiveConfig cfg;
  cfg.protocol = ProtocolParams::standard_can();
  cfg.win_hi_rel = 500;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ExhaustiveValidate, RejectsWindowBeforeFrameStart) {
  ExhaustiveConfig cfg;
  cfg.protocol = ProtocolParams::standard_can();
  cfg.win_lo_rel = -10000;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ExhaustiveValidate, RejectsBadBusSizeAndBudget) {
  ExhaustiveConfig cfg;
  cfg.protocol = ProtocolParams::standard_can();
  cfg.n_nodes = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.n_nodes = 3;
  cfg.errors = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ExhaustiveValidate, AcceptsDefaultsForAllProtocols) {
  for (const auto& proto :
       {ProtocolParams::standard_can(), ProtocolParams::minor_can(),
        ProtocolParams::major_can(3), ProtocolParams::major_can(5)}) {
    ExhaustiveConfig cfg;
    cfg.protocol = proto;
    EXPECT_NO_THROW(cfg.validate()) << proto.name();
  }
}

}  // namespace
