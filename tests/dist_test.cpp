// Distribution primitives behind the probabilistic RTA: Pmf algebra
// (convolution identities, truncation/tail accounting, split, quantiles)
// and the measured-rate loader that feeds the error model from the
// rare-engine's BENCH_table1.json output.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "invariant_gtest.hpp"

#include "analysis/rta/rates.hpp"
#include "analysis/stats/dist.hpp"
#include "util/rng.hpp"

namespace mcan {
namespace {

Pmf random_pmf(Rng& rng, int atoms, BitTime span) {
  Pmf d;
  double left = 1.0;
  for (int i = 0; i < atoms; ++i) {
    const double p = (i + 1 == atoms) ? left : left * 0.5;
    d.add_mass(rng.next_below(static_cast<std::uint32_t>(span)), p);
    left -= p;
  }
  return d;
}

TEST(Dist, PointMassBasics) {
  const Pmf d = Pmf::point(42);
  EXPECT_EQ(d.min_value(), 42u);
  EXPECT_EQ(d.max_value(), 42u);
  EXPECT_EQ(d.mass_at(42), 1.0);
  EXPECT_EQ(d.mass_at(41), 0.0);
  EXPECT_EQ(d.total_mass(), 1.0);
  EXPECT_EQ(d.cdf(41), 0.0);
  EXPECT_EQ(d.cdf(42), 1.0);
  EXPECT_EQ(d.exceed(42), 0.0);
  EXPECT_EQ(d.exceed(41), 1.0);
  ASSERT_TRUE(d.quantile(0.5));
  EXPECT_EQ(*d.quantile(0.5), 42u);
}

TEST(Dist, AddMassRejectsBadInput) {
  Pmf d;
  EXPECT_THROW(d.add_mass(1, -0.1), std::invalid_argument);
  EXPECT_THROW(d.add_mass(1, std::nan("")), std::invalid_argument);
  EXPECT_THROW(d.add_mass(kNoCap, 0.5), std::invalid_argument);
  d.add_mass(7, 0.0);  // zero mass is a no-op, not an atom
  EXPECT_TRUE(d.empty());
}

TEST(Dist, ConvolutionIdentityElement) {
  // point(0) is the identity of the convolution monoid.
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const Pmf a = random_pmf(rng, 4, 200);
    EXPECT_EQ(Pmf::convolve(a, Pmf::point(0)), a);
    EXPECT_EQ(Pmf::convolve(Pmf::point(0), a), a);
  }
}

TEST(Dist, ConvolutionCommutes) {
  Rng rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    const Pmf a = random_pmf(rng, 3, 150);
    const Pmf b = random_pmf(rng, 5, 90);
    EXPECT_EQ(Pmf::convolve(a, b), Pmf::convolve(b, a));
  }
}

TEST(Dist, ConvolutionShiftsPoints) {
  // Convolving with a delta translates the support.
  const Pmf a = Pmf::convolve(Pmf::point(10), Pmf::point(32));
  EXPECT_EQ(a.min_value(), 42u);
  EXPECT_EQ(a.mass_at(42), 1.0);
}

TEST(Dist, ConvolutionAddsMeans) {
  // E[X + Y] = E[X] + E[Y] while nothing is truncated.
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const Pmf a = random_pmf(rng, 4, 100);
    const Pmf b = random_pmf(rng, 4, 100);
    const Pmf c = Pmf::convolve(a, b);
    EXPECT_EQ(c.tail_mass(), 0.0);
    EXPECT_NEAR(c.partial_mean(), a.partial_mean() + b.partial_mean(), 1e-9);
    EXPECT_NEAR(c.total_mass(), 1.0, 1e-12);
  }
}

TEST(Dist, CappedConvolutionConservesMass) {
  // Every outcome above the cap lands in the tail; nothing disappears.
  Pmf a;
  a.add_mass(50, 0.7);
  a.add_mass(120, 0.3);
  Pmf b;
  b.add_mass(0, 0.9);
  b.add_mass(100, 0.1);
  const Pmf c = Pmf::convolve(a, b, 130);
  // Kept: 50 (0.63), 120 (0.27); capped: 150 (0.07), 220 (0.03).
  EXPECT_NEAR(c.mass_at(50), 0.63, 1e-12);
  EXPECT_NEAR(c.mass_at(120), 0.27, 1e-12);
  EXPECT_NEAR(c.tail_mass(), 0.10, 1e-12);
  EXPECT_NEAR(c.total_mass(), 1.0, 1e-12);
  // A cap below the whole support truncates everything.
  const Pmf all_tail = Pmf::convolve(a, b, 10);
  EXPECT_FALSE(all_tail.has_finite_mass());
  EXPECT_NEAR(all_tail.tail_mass(), 1.0, 1e-12);
}

TEST(Dist, TailIsAbsorbing) {
  // Once mass is in the tail it stays there through further convolution.
  Pmf a = Pmf::point(10);
  a.scale(0.6);
  a.add_tail(0.4);
  const Pmf c = Pmf::convolve(a, Pmf::point(5));
  EXPECT_NEAR(c.mass_at(15), 0.6, 1e-12);
  EXPECT_NEAR(c.tail_mass(), 0.4, 1e-12);
  // exceed() counts the tail above every finite v.
  EXPECT_NEAR(c.exceed(1000000), 0.4, 1e-12);
}

TEST(Dist, SplitPartitionsMass) {
  Rng rng(14);
  for (int trial = 0; trial < 20; ++trial) {
    Pmf d = random_pmf(rng, 6, 300);
    d.scale(0.9);
    d.add_tail(0.1);
    const BitTime t = rng.next_below(350);
    const auto [below, above] = d.split(t);
    EXPECT_NEAR(below.total_mass() + above.total_mass(), d.total_mass(),
                1e-12);
    // The tail sits above any threshold.
    EXPECT_EQ(below.tail_mass(), 0.0);
    EXPECT_NEAR(above.tail_mass(), 0.1, 1e-12);
    if (below.has_finite_mass()) EXPECT_LT(below.max_value(), t);
    if (above.has_finite_mass()) EXPECT_GE(above.min_value(), t);
    // Recombining reproduces the original.
    Pmf sum = below;
    sum.accumulate(above);
    EXPECT_EQ(sum, d);
  }
}

TEST(Dist, QuantilesAreMonotone) {
  Rng rng(15);
  for (int trial = 0; trial < 20; ++trial) {
    const Pmf d = random_pmf(rng, 8, 500);
    BitTime prev = 0;
    for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
      const auto v = d.quantile(q);
      ASSERT_TRUE(v) << "q=" << q << " with no tail must stay finite";
      EXPECT_GE(*v, prev) << "q=" << q;
      prev = *v;
    }
    EXPECT_EQ(prev, d.max_value());
  }
}

TEST(Dist, QuantileFallsIntoTruncatedTail) {
  Pmf d = Pmf::point(100);
  d.scale(0.5);
  d.add_tail(0.5);
  ASSERT_TRUE(d.quantile(0.5));
  EXPECT_EQ(*d.quantile(0.5), 100u);
  EXPECT_FALSE(d.quantile(0.9)) << "beyond the cap: no finite quantile";
}

TEST(Dist, SerializeParseRoundTripIsExact) {
  // Same discipline as RareAccumulator: "%la" hex floats, so the
  // round-trip is bit-exact, including awkward values.
  Rng rng(16);
  for (int trial = 0; trial < 30; ++trial) {
    Pmf d = random_pmf(rng, 7, 1000);
    d.scale(1.0 / 3.0);       // non-terminating binary fractions
    d.add_tail(1e-301);       // subnormal-adjacent tail
    Pmf back;
    ASSERT_TRUE(Pmf::parse(d.serialize(), back));
    EXPECT_EQ(back, d);
    EXPECT_EQ(back.serialize(), d.serialize());
  }
  // The empty distribution round-trips too.
  Pmf empty;
  Pmf back;
  ASSERT_TRUE(Pmf::parse(empty.serialize(), back));
  EXPECT_EQ(back, empty);
}

TEST(Dist, ParseRejectsMalformed) {
  Pmf out;
  EXPECT_FALSE(Pmf::parse("", out));
  EXPECT_FALSE(Pmf::parse("pmf", out));
  EXPECT_FALSE(Pmf::parse("pmf 0 2 0x0p+0 0x1p-1", out)) << "missing atom";
  EXPECT_FALSE(Pmf::parse("pmf 0 1 0x0p+0 0x1p-1 junk", out));
  EXPECT_FALSE(Pmf::parse("moments 0 1 0x0p+0", out)) << "wrong magic";
}

// ---------------------------------------------------------------------------
// Measured-rate provenance (BENCH_table1.json loader).

constexpr char kTableShape[] = R"({
  "rows": [
    {"ber": 1.0e-04,
     "empirical": {"p_hat": 2.9e-10, "closed_form_p4": 3.0e-10,
                   "frame_bits": 85, "trials": 20000}},
    {"ber": 1.0e-05,
     "empirical": {"p_hat": 3.3e-12, "closed_form_p4": 3.0e-12,
                   "frame_bits": 85, "trials": 20000}}
  ]
})";

TEST(Rates, ParsesTableShape) {
  RateTable table;
  std::string error;
  ASSERT_TRUE(RateTable::parse(kTableShape, table, error)) << error;
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0].ber, 1e-4);
  EXPECT_EQ(table.rows[0].p_hat, 2.9e-10);
  EXPECT_EQ(table.rows[0].closed_form_p4, 3.0e-10);
  EXPECT_EQ(table.rows[0].frame_bits, 85.0);
}

TEST(Rates, NearestUsesLogScale) {
  RateTable table;
  std::string error;
  ASSERT_TRUE(RateTable::parse(kTableShape, table, error)) << error;
  EXPECT_EQ(table.nearest(1e-4).ber, 1e-4);
  EXPECT_EQ(table.nearest(5e-5).ber, 1e-4) << "log-midpoint rounds up";
  EXPECT_EQ(table.nearest(2e-5).ber, 1e-5);
  EXPECT_EQ(table.nearest(1e-9).ber, 1e-5) << "clamps to the nearest row";
}

TEST(Rates, RatesForCarriesCalibrationAndProvenance) {
  RateTable table;
  std::string error;
  ASSERT_TRUE(RateTable::parse(kTableShape, table, error)) << error;
  table.source = "BENCH_table1.json";
  const MeasuredRates r = table.rates_for(1e-5);
  EXPECT_EQ(r.ber, 1e-5);
  EXPECT_NEAR(r.calibration, 3.3 / 3.0, 1e-12);
  EXPECT_NEAR(r.effective_ber(), 1e-5 * 3.3 / 3.0, 1e-18);
  EXPECT_NE(r.source.find("BENCH_table1.json"), std::string::npos);
  EXPECT_NE(r.source.find("1e-05"), std::string::npos) << r.source;
}

TEST(Rates, RejectsUselessInput) {
  RateTable table;
  std::string error;
  EXPECT_FALSE(RateTable::parse("", table, error));
  EXPECT_FALSE(RateTable::parse("{\"rows\": []}", table, error));
  EXPECT_FALSE(RateTable::parse("{\"rows\": [{\"p_hat\": 1e-10}]}", table,
                                error))
      << "a row without a ber is not a rate";
  EXPECT_FALSE(RateTable::parse("{\"rows\": [{\"ber\": -1.0}]}", table, error));
  EXPECT_FALSE(error.empty());
}

TEST(Rates, LoadsTheCommittedMeasurementFile) {
  // The real provenance chain: the committed rare-engine output must be
  // loadable and carry usable calibrations near 1 (the engine validated
  // expression (4) to ~2%).
  RateTable table;
  std::string error;
  ASSERT_TRUE(RateTable::load(MCAN_REPO_DIR "/BENCH_table1.json", table, error))
      << error;
  ASSERT_GE(table.rows.size(), 3u);
  const MeasuredRates r = table.rates_for(1e-5);
  EXPECT_EQ(r.ber, 1e-5);
  EXPECT_GT(r.calibration, 0.5);
  EXPECT_LT(r.calibration, 2.0);
  EXPECT_NE(r.source.find("BENCH_table1.json"), std::string::npos);
}

TEST(Rates, LoadFailsCleanlyOnMissingFile) {
  RateTable table;
  std::string error;
  EXPECT_FALSE(RateTable::load("/nonexistent/rates.json", table, error));
  EXPECT_NE(error.find("nonexistent"), std::string::npos);
}

}  // namespace
}  // namespace mcan
