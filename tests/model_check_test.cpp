// Tests of the model-checking engine: every reduction (prefix cloning +
// tail memoization, symmetry, parallel workers) must agree *exactly* with
// the reference enumerator; the counterexample minimizer must reproduce
// the paper's Fig. 3a/3b flip sets; exported .scn scenarios must replay to
// the same verdict.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "analysis/coverage.hpp"
#include "core/fsm_coverage.hpp"
#include "scenario/minimize.hpp"
#include "scenario/model_check.hpp"

namespace {

using namespace mcan;

ModelCheckResult run_engine(const ProtocolParams& proto, int k, int jobs,
                            bool dedup, bool symmetry,
                            long long max_cases = 0) {
  ModelCheckConfig mc;
  mc.base.protocol = proto;
  mc.base.n_nodes = 3;
  mc.base.errors = k;
  mc.jobs = jobs;
  mc.dedup = dedup;
  mc.symmetry = symmetry;
  mc.max_cases = max_cases;
  return run_model_check(mc);
}

void expect_same_counts(const ModelCheckResult& a, const ModelCheckResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.cases, b.cases) << what;
  EXPECT_EQ(a.imo, b.imo) << what;
  EXPECT_EQ(a.double_rx, b.double_rx) << what;
  EXPECT_EQ(a.total_loss, b.total_loss) << what;
  EXPECT_EQ(a.timeouts, b.timeouts) << what;
}

// --- reductions are exact ---------------------------------------------------

TEST(ModelCheck, EveryReductionMatchesReference) {
  // For each protocol and k <= 2: dedup alone, symmetry alone, both, and
  // both with two workers must all reproduce the reference counts.
  for (const auto& proto :
       {ProtocolParams::standard_can(), ProtocolParams::minor_can(),
        ProtocolParams::major_can(3)}) {
    for (int k = 1; k <= 2; ++k) {
      const auto ref = run_engine(proto, k, 1, false, false);
      const std::string tag = proto.name() + " k=" + std::to_string(k);
      expect_same_counts(ref, run_engine(proto, k, 1, true, false),
                         tag + " dedup");
      expect_same_counts(ref, run_engine(proto, k, 1, false, true),
                         tag + " symmetry");
      expect_same_counts(ref, run_engine(proto, k, 1, true, true),
                         tag + " dedup+symmetry");
      expect_same_counts(ref, run_engine(proto, k, 2, true, true),
                         tag + " dedup+symmetry jobs=2");
    }
  }
}

TEST(ModelCheck, ReferenceModeMatchesRunExhaustive) {
  ExhaustiveConfig cfg;
  cfg.protocol = ProtocolParams::minor_can();
  cfg.n_nodes = 3;
  cfg.errors = 2;
  const ExhaustiveResult old = run_exhaustive(cfg);
  const auto eng = run_engine(ProtocolParams::minor_can(), 2, 1, true, true);
  EXPECT_EQ(old.cases, eng.cases);
  EXPECT_EQ(old.imo, eng.imo);
  EXPECT_EQ(old.double_rx, eng.double_rx);
  EXPECT_EQ(old.total_loss, eng.total_loss);
}

TEST(ModelCheck, StatsAccountForAllWork) {
  const auto r = run_engine(ProtocolParams::major_can(5), 2, 1, true, true);
  EXPECT_EQ(r.cases, 2775);
  EXPECT_EQ(r.violations(), 0);
  // Every enumerated combination is either symmetry-folded or checked.
  // Each checked case simulates its flip window (prefix-cloned), so
  // simulated == checked; the memo hits are the subset whose quiescence
  // tail was served from the table instead of being run.
  EXPECT_EQ(r.stats.enumerated, 2775);
  EXPECT_EQ(r.stats.enumerated - r.stats.symmetry_skips, r.stats.simulated);
  EXPECT_LE(r.stats.tail_memo_hits, r.stats.simulated);
  EXPECT_GT(r.stats.tail_memo_hits, 0) << "dedup must actually deduplicate";
  EXPECT_GT(r.stats.symmetry_skips, 0) << "symmetry must actually fold";
  EXPECT_GT(r.stats.distinct_tails, 0u);
}

TEST(ModelCheck, MajorCan5UpToThreeErrorsVerifiedWithReductions) {
  // The dedup-assisted sweep that makes k = 3 at m = 5 routine (67525
  // patterns): the paper's <= m tolerance claim holds for this window.
  const auto r = run_engine(ProtocolParams::major_can(5), 3, 0, true, true);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.cases, 67525);
  EXPECT_EQ(r.violations(), 0) << r.summary();
}

// --- budget -----------------------------------------------------------------

TEST(ModelCheck, BudgetBoundsTheSweep) {
  const auto r =
      run_engine(ProtocolParams::major_can(5), 3, 1, true, true, 500);
  EXPECT_FALSE(r.complete);
  EXPECT_LT(r.stats.simulated + r.stats.tail_memo_hits, 67525);
  EXPECT_NE(r.summary().find("budget"), std::string::npos);
}

TEST(ModelCheck, ZeroBudgetMeansExhaustive) {
  const auto r = run_engine(ProtocolParams::standard_can(), 1, 1, true, true);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.cases, 45);
}

// --- progress ---------------------------------------------------------------

TEST(ModelCheck, ProgressCallbackFires) {
  ModelCheckConfig mc;
  mc.base.protocol = ProtocolParams::standard_can();
  mc.base.n_nodes = 3;
  mc.base.errors = 2;
  mc.jobs = 1;
  std::atomic<long long> last_done{0};
  std::atomic<long long> last_total{0};
  const auto r = run_model_check(mc, [&](long long done, long long total) {
    last_done.store(done);
    last_total.store(total);
  });
  EXPECT_EQ(last_total.load(), 990);
  EXPECT_EQ(last_done.load(), r.stats.enumerated);
}

// --- validation -------------------------------------------------------------

TEST(ModelCheck, RejectsMoreErrorsThanSlots) {
  ModelCheckConfig mc;
  mc.base.protocol = ProtocolParams::standard_can();
  mc.base.n_nodes = 3;
  mc.base.errors = 2;
  mc.base.win_lo_rel = 5;
  mc.base.win_hi_rel = 5;  // 3 slots, k = 2 is fine...
  EXPECT_NO_THROW((void)run_model_check(mc));
  mc.base.errors = 4;  // ...but k = 4 cannot pick 4 of 3 slots
  EXPECT_THROW((void)run_model_check(mc), std::invalid_argument);
}

TEST(ModelCheck, RejectsNegativeJobs) {
  ModelCheckConfig mc;
  mc.base.protocol = ProtocolParams::standard_can();
  mc.jobs = -1;
  EXPECT_THROW((void)run_model_check(mc), std::invalid_argument);
}

// --- single-case runner and minimizer ---------------------------------------

TEST(Minimize, Fig3aPatternIsAlreadyMinimal) {
  // The CAN Fig. 3a flip set: transmitter at the last EOF bit, one
  // receiver at the last-but-one.  Minimization must keep both flips.
  const std::vector<std::pair<NodeId, int>> fig3a = {{0, 6}, {1, 5}};
  const auto ce =
      minimize_counterexample(ProtocolParams::standard_can(), 3, fig3a);
  EXPECT_EQ(ce.cls, ViolationClass::Imo);
  EXPECT_EQ(ce.flips.size(), 2u);
}

TEST(Minimize, CanThreeFlipImoMinimizesToFig3a) {
  // Embed the Fig. 3a core in a 3-flip IMO pattern the k=3 sweep reports
  // (the extra transmitter flip at EOF+7 lands harmlessly inside its own
  // error flag); the delta-debugger must strip it and land exactly on the
  // Fig. 3a structure.
  const std::vector<std::pair<NodeId, int>> noisy = {{0, 6}, {0, 7}, {1, 5}};
  const auto ce =
      minimize_counterexample(ProtocolParams::standard_can(), 3, noisy);
  ASSERT_EQ(ce.cls, ViolationClass::Imo);
  ASSERT_EQ(ce.flips.size(), 2u) << "noise flip not removed";
  auto tx = ce.flips[0].first == 0 ? ce.flips[0] : ce.flips[1];
  auto rx = ce.flips[0].first == 0 ? ce.flips[1] : ce.flips[0];
  EXPECT_EQ(tx.first, 0u);
  EXPECT_EQ(tx.second, 6);
  EXPECT_EQ(rx.first, 1u);
  EXPECT_EQ(rx.second, 5);
}

TEST(Minimize, MinorCanFig3bPattern) {
  // MinorCAN's k=2 IMO (Fig. 3b) has the same two-flip shape.
  const std::vector<std::pair<NodeId, int>> fig3b = {{0, 6}, {1, 5}};
  const auto ce =
      minimize_counterexample(ProtocolParams::minor_can(), 3, fig3b);
  EXPECT_EQ(ce.cls, ViolationClass::Imo);
  EXPECT_EQ(ce.flips.size(), 2u);
}

TEST(Minimize, PreservesViolationClassNotJustViolation) {
  // (0,5)+(0,6) on CAN is a double reception whose 1-flip subsets are also
  // double receptions — fine to shrink.  But an IMO pattern must never be
  // "minimized" into a mere double reception: class is preserved.
  const std::vector<std::pair<NodeId, int>> imo = {{0, 6}, {1, 5}};
  const auto ce =
      minimize_counterexample(ProtocolParams::standard_can(), 3, imo);
  EXPECT_EQ(ce.cls, ViolationClass::Imo);
  // Dropping either flip of Fig. 3a leaves no IMO: subsets are not IMO.
  const auto only_tx = classify_flip_pattern(ProtocolParams::standard_can(),
                                             3, {{0, 6}});
  const auto only_rx = classify_flip_pattern(ProtocolParams::standard_can(),
                                             3, {{1, 5}});
  EXPECT_NE(only_tx, ViolationClass::Imo);
  EXPECT_NE(only_rx, ViolationClass::Imo);
}

TEST(Minimize, NonViolatingPatternReturnsNone) {
  const auto ce = minimize_counterexample(ProtocolParams::major_can(5), 3,
                                          {{1, 5}, {2, 6}});
  EXPECT_EQ(ce.cls, ViolationClass::None);
}

// --- .scn export and replay -------------------------------------------------

TEST(ScnExport, Fig3aExportReplaysToSameVerdict) {
  const auto ce = minimize_counterexample(ProtocolParams::standard_can(), 3,
                                          {{0, 6}, {1, 5}});
  ASSERT_EQ(ce.cls, ViolationClass::Imo);
  const std::string text = to_scenario_text(ProtocolParams::standard_can(), 3,
                                            ce, "fig3a roundtrip");
  EXPECT_NE(text.find("expect imo"), std::string::npos);
  EXPECT_NE(text.find("protocol can"), std::string::npos);
  const ReplayResult rr = replay_scenario_text(text);
  EXPECT_TRUE(rr.parsed) << rr.detail;
  EXPECT_TRUE(rr.expectation_met) << rr.detail;
  EXPECT_TRUE(rr.invariants_clean) << rr.detail;
}

TEST(ScnExport, Fig3bExportReplaysToSameVerdict) {
  const auto ce = minimize_counterexample(ProtocolParams::minor_can(), 3,
                                          {{0, 6}, {1, 5}});
  ASSERT_EQ(ce.cls, ViolationClass::Imo);
  const std::string text = to_scenario_text(ProtocolParams::minor_can(), 3,
                                            ce, "fig3b roundtrip");
  const ReplayResult rr = replay_scenario_text(text);
  EXPECT_TRUE(rr.parsed) << rr.detail;
  EXPECT_TRUE(rr.expectation_met) << rr.detail;
  EXPECT_TRUE(rr.invariants_clean) << rr.detail;
}

TEST(ScnExport, DoubleRxExportReplays) {
  const auto ce = minimize_counterexample(ProtocolParams::standard_can(), 3,
                                          {{1, 5}});
  ASSERT_EQ(ce.cls, ViolationClass::DoubleRx);
  const std::string text = to_scenario_text(ProtocolParams::standard_can(), 3,
                                            ce, "fig1b roundtrip");
  EXPECT_NE(text.find("expect double"), std::string::npos);
  const ReplayResult rr = replay_scenario_text(text);
  EXPECT_TRUE(rr.parsed) << rr.detail;
  EXPECT_TRUE(rr.expectation_met) << rr.detail;
}

TEST(ScnExport, EngineExamplesReplayEndToEnd) {
  // Close the loop on engine output: every counterexample the MinorCAN k=2
  // sweep reports must minimize and replay to its own verdict.
  const auto r = run_engine(ProtocolParams::minor_can(), 2, 1, true, true);
  ASSERT_FALSE(r.examples.empty());
  for (const auto& ex : r.examples) {
    const auto ce =
        minimize_counterexample(ProtocolParams::minor_can(), 3, ex.flips);
    ASSERT_NE(ce.cls, ViolationClass::None) << ex.to_string();
    const ReplayResult rr = replay_scenario_text(
        to_scenario_text(ProtocolParams::minor_can(), 3, ce, "engine export"));
    EXPECT_TRUE(rr.parsed && rr.expectation_met) << ex.to_string() << " -> "
                                                 << rr.detail;
  }
}

// --- single-case runner -----------------------------------------------------

TEST(FlipCase, MatchesKnownOutcomes) {
  const auto clean = run_flip_case(ProtocolParams::standard_can(), 3, {});
  EXPECT_FALSE(clean.violation());

  const auto fig1b = run_flip_case(ProtocolParams::standard_can(), 3,
                                   {{1, 5}});
  EXPECT_TRUE(fig1b.dup) << fig1b.describe;

  const auto fig3a = run_flip_case(ProtocolParams::standard_can(), 3,
                                   {{0, 6}, {1, 5}});
  EXPECT_TRUE(fig3a.imo) << fig3a.describe;
  EXPECT_NE(fig3a.describe.find("IMO"), std::string::npos);
}

// --- FSM coverage -----------------------------------------------------------

TEST(FsmCoverage, ExpectedRelationIsVariantSpecific) {
  const auto can = expected_fsm_transitions(Variant::StandardCan);
  const auto minor = expected_fsm_transitions(Variant::MinorCan);
  const auto major = expected_fsm_transitions(Variant::MajorCan);
  EXPECT_EQ(can.size(), minor.size() + 1)
      << "CAN adds only the RxEof->OverloadFlag last-bit edge";
  EXPECT_GT(major.size(), can.size())
      << "MajorCAN adds the sampling/extended-flag end-game";
  // Sampling / ExtFlag are MajorCAN-only states.
  for (const auto& e : can) {
    EXPECT_NE(e.from, FsmState::Sampling);
    EXPECT_NE(e.to, FsmState::ExtFlag);
  }
}

TEST(FsmCoverage, SweepExercisesEndGameTransitions) {
  if (!fsm_coverage_compiled()) {
    GTEST_SKIP() << "built without MCAN_FSM_COVERAGE";
  }
  fsm_coverage::reset();
  (void)run_engine(ProtocolParams::major_can(3), 2, 1, true, true);
  const FsmCoverageReport rep = collect_fsm_coverage(Variant::MajorCan);
  ASSERT_TRUE(rep.instrumented);
  EXPECT_TRUE(rep.unexpected.empty())
      << rep.summary() << "transitions outside the derived FSM contract";
  EXPECT_GT(rep.transition_coverage(), 0.4) << rep.summary();
  // The split-EOF machinery itself must have been exercised.
  EXPECT_GT(fsm_coverage::count(Variant::MajorCan, FsmState::Sampling,
                                FsmState::Delim),
            0u);
  EXPECT_GT(fsm_coverage::count(Variant::MajorCan, FsmState::ExtFlag,
                                FsmState::Delim),
            0u);
}

TEST(FsmCoverage, ResetClearsCounters) {
  if (!fsm_coverage_compiled()) {
    GTEST_SKIP() << "built without MCAN_FSM_COVERAGE";
  }
  (void)run_engine(ProtocolParams::standard_can(), 1, 1, false, false);
  fsm_coverage::reset();
  const auto snap = fsm_coverage::snapshot(Variant::StandardCan);
  EXPECT_TRUE(snap.empty());
}

TEST(FsmCoverage, ReportSerializesToJson) {
  const FsmCoverageReport rep = collect_fsm_coverage(Variant::StandardCan);
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"variant\":\"CAN\""), std::string::npos);
  EXPECT_NE(json.find("\"never_exercised\""), std::string::npos);
  EXPECT_NE(json.find("\"transition_coverage\""), std::string::npos);
}

}  // namespace
