// Unit tests for the frame module: CRC-15, bit stuffing, layout, encoding.
#include <gtest/gtest.h>

#include "frame/crc15.hpp"
#include "frame/encoder.hpp"
#include "frame/frame.hpp"
#include "frame/layout.hpp"
#include "frame/stuffing.hpp"
#include "util/rng.hpp"

namespace mcan {
namespace {

TEST(Frame, MakeDataCopiesPayload) {
  const std::uint8_t bytes[] = {0xde, 0xad, 0xbe};
  Frame f = Frame::make_data(0x123, bytes);
  EXPECT_EQ(f.id, 0x123u);
  EXPECT_EQ(f.dlc, 3);
  EXPECT_FALSE(f.remote);
  ASSERT_EQ(f.payload().size(), 3u);
  EXPECT_EQ(f.payload()[1], 0xad);
}

TEST(Frame, RejectsBadArguments) {
  EXPECT_THROW(Frame::make_blank(0x800, 0), std::invalid_argument);
  EXPECT_THROW(Frame::make_blank(0x1, 9), std::invalid_argument);
  std::vector<std::uint8_t> nine(9, 0);
  EXPECT_THROW(Frame::make_data(1, nine), std::invalid_argument);
}

TEST(Frame, RemoteHasNoPayload) {
  Frame f = Frame::make_remote(0x10, 4);
  EXPECT_TRUE(f.remote);
  EXPECT_EQ(f.payload().size(), 0u);
}

TEST(Frame, ToStringMentionsIdAndData) {
  const std::uint8_t bytes[] = {0xab};
  Frame f = Frame::make_data(0x0f, bytes);
  std::string s = f.to_string();
  EXPECT_NE(s.find("0x00f"), std::string::npos);
  EXPECT_NE(s.find("ab"), std::string::npos);
}

// --- CRC-15 ---

TEST(Crc15, ZeroInputZeroCrc) {
  BitVec v;
  v.append_repeated(Level::Dominant, 20);  // all logical zeros
  EXPECT_EQ(crc15(v), 0u);
}

TEST(Crc15, SingleOneGivesPolynomialTail) {
  // Feeding a single logical 1 then 14 zeros leaves poly-derived residue.
  BitVec v;
  v.push_back(Level::Recessive);
  std::uint16_t c1 = crc15(v);
  EXPECT_EQ(c1, kCrc15Poly & 0x7fff);
}

TEST(Crc15, DetectsSingleBitError) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    BitVec v;
    for (int i = 0; i < 60; ++i) v.push_back(level_of(rng.chance(0.5)));
    const std::uint16_t good = crc15(v);
    const std::size_t flip_at = rng.next_below(60);
    v[flip_at] = flip(v[flip_at]);
    EXPECT_NE(crc15(v), good) << "single bit error must change the CRC";
  }
}

TEST(Crc15, DetectsUpTo5RandomErrors) {
  // The property the paper leans on for m = 5: the CAN CRC detects up to 5
  // randomly distributed bit errors.  (True detection is guaranteed for
  // burst/odd patterns; here we verify statistically over random 5-flip
  // patterns that no counterexample appears in the sample.)
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    BitVec v;
    for (int i = 0; i < 90; ++i) v.push_back(level_of(rng.chance(0.5)));
    const std::uint16_t good = crc15(v);
    BitVec w = v;
    std::set<std::uint32_t> flips;
    while (flips.size() < 5) flips.insert(rng.next_below(90));
    for (std::uint32_t i : flips) w[i] = flip(w[i]);
    EXPECT_NE(crc15(w), good);
  }
}

TEST(Crc15, IncrementalMatchesWhole) {
  Rng rng(13);
  BitVec v;
  for (int i = 0; i < 64; ++i) v.push_back(level_of(rng.chance(0.5)));
  Crc15 inc;
  for (Level l : v) inc.feed(l);
  EXPECT_EQ(inc.value(), crc15(v));
}

// --- stuffing ---

TEST(Stuffing, InsertsAfterFiveEqualBits) {
  BitVec v = BitVec::from_string("ddddd");
  BitVec s = stuff(v);
  EXPECT_EQ(s.to_string(), "dddddr");
}

TEST(Stuffing, StuffBitCountsTowardNextRun) {
  // 5 dominant -> stuff recessive; then 4 more recessive make 5 recessive
  // (including the stuff bit) -> stuff dominant.
  BitVec v = BitVec::from_string("ddddd rrrr");
  BitVec s = stuff(v);
  EXPECT_EQ(s.to_string(), "dddddrrrrrd");
}

TEST(Stuffing, RoundTrip) {
  Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    BitVec v;
    const int n = 1 + static_cast<int>(rng.next_below(120));
    for (int i = 0; i < n; ++i) v.push_back(level_of(rng.chance(0.5)));
    auto d = destuff(stuff(v));
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, v);
  }
}

TEST(Stuffing, StuffedNeverHasSixEqualBits) {
  Rng rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    BitVec v;
    for (int i = 0; i < 100; ++i) v.push_back(level_of(rng.chance(0.2)));
    BitVec s = stuff(v);
    int run = 0;
    Level last = Level::Recessive;
    for (std::size_t i = 0; i < s.size(); ++i) {
      run = (i > 0 && s[i] == last) ? run + 1 : 1;
      last = s[i];
      EXPECT_LT(run, 6);
    }
  }
}

TEST(Stuffing, DestuffDetectsViolation) {
  BitVec six = BitVec::from_string("dddddd");
  EXPECT_FALSE(destuff(six).has_value());
}

TEST(Stuffing, DestufferReportsPendingAfterRunOfFive) {
  BitDestuffer ds;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ds.push(Level::Dominant), BitDestuffer::Result::Payload);
  }
  EXPECT_TRUE(ds.stuff_pending());
  EXPECT_EQ(ds.push(Level::Recessive), BitDestuffer::Result::StuffBit);
  EXPECT_FALSE(ds.stuff_pending());
}

TEST(Stuffing, SixthEqualBitIsStuffError) {
  BitDestuffer ds;
  for (int i = 0; i < 5; ++i) ds.push(Level::Recessive);
  EXPECT_EQ(ds.push(Level::Recessive), BitDestuffer::Result::StuffError);
}

// --- layout / encoder ---

TEST(Layout, BodyBitsMatchFormula) {
  Frame f = Frame::make_blank(0x55, 4);
  BitVec body = unstuffed_body(f);
  EXPECT_EQ(static_cast<int>(body.size()), body_bits_for(32));
}

TEST(Layout, BodyStartsWithSofAndId) {
  Frame f = Frame::make_blank(0x7ff, 0);
  BitVec body = unstuffed_body(f);
  EXPECT_EQ(body[0], Level::Dominant);  // SOF
  for (int i = 1; i <= 11; ++i) {
    EXPECT_EQ(body[static_cast<std::size_t>(i)], Level::Recessive)
        << "id 0x7ff is all recessive";
  }
}

TEST(Layout, CrcFieldMatchesComputedCrc) {
  Frame f = Frame::make_blank(0x123, 2);
  BitVec body = unstuffed_body(f);
  BitVec pre(std::vector<Level>(body.begin(), body.end() - kCrcBits));
  EXPECT_EQ(body.read_uint(body.size() - kCrcBits, kCrcBits), crc15(pre));
}

TEST(Encoder, TailIsFixedForm) {
  Frame f = Frame::make_blank(0x111, 1);
  auto bits = encode_tx(f, kStandardEofBits);
  // last 7 bits are EOF, preceded by ack delim, ack slot, crc delim.
  const std::size_t n = bits.size();
  for (std::size_t i = n - 7; i < n; ++i) {
    EXPECT_EQ(bits[i].phase, TxPhase::Eof);
    EXPECT_EQ(bits[i].level, Level::Recessive);
  }
  EXPECT_EQ(bits[n - 8].phase, TxPhase::AckDelim);
  EXPECT_EQ(bits[n - 9].phase, TxPhase::AckSlot);
  EXPECT_EQ(bits[n - 10].phase, TxPhase::CrcDelim);
}

TEST(Encoder, EofLengthParameterised) {
  Frame f = Frame::make_blank(0x111, 1);
  const int w7 = wire_length(f, 7);
  const int w10 = wire_length(f, majorcan_eof_bits(5));
  EXPECT_EQ(w10 - w7, 3);  // MajorCAN_5 best-case overhead = 2m-7 = 3 bits
}

TEST(Encoder, StartsWithDominantSof) {
  Frame f = Frame::make_blank(0, 0);
  auto bits = encode_tx(f, 7);
  EXPECT_EQ(bits[0].phase, TxPhase::Sof);
  EXPECT_EQ(bits[0].level, Level::Dominant);
}

TEST(Encoder, StuffBitsOnlyInBody) {
  Frame f = Frame::make_blank(0, 8);  // id 0 = long dominant run -> stuffing
  auto bits = encode_tx(f, 7);
  int stuffed = 0;
  for (const TxBit& b : bits) {
    if (b.is_stuff) {
      ++stuffed;
      EXPECT_NE(b.phase, TxPhase::Eof);
      EXPECT_NE(b.phase, TxPhase::AckSlot);
    }
  }
  EXPECT_GT(stuffed, 0);
  EXPECT_EQ(stuffed, stuff_bit_count(f));
}

TEST(Encoder, ReferenceFrameAround110Bits) {
  // The paper's reference workload: tau_data = 110-bit frames.  An 8-byte
  // standard data frame is 108 wire bits + stuffing, i.e. right there.
  Frame f = Frame::make_blank(0x555, 8);  // alternating id avoids stuffing
  const int len = wire_length(f, 7);
  EXPECT_GE(len, 108);
  EXPECT_LE(len, 135);
}

TEST(Encoder, ArbitrationPhaseCoversIdAndRtr) {
  Frame f = Frame::make_blank(0x2aa, 0);
  auto bits = encode_tx(f, 7);
  int arb = 0;
  for (const TxBit& b : bits) {
    if (b.phase == TxPhase::Arbitration && !b.is_stuff) ++arb;
  }
  EXPECT_EQ(arb, kIdBits + kRtrBits);
}

}  // namespace
}  // namespace mcan
