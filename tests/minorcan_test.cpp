// MinorCAN-specific tests: the Primary_error decision rule (§3), its
// performance benefit, and its exact failure boundary.
#include <gtest/gtest.h>

#include "invariant_gtest.hpp"

#include "core/network.hpp"
#include "fault/scripted.hpp"
#include "frame/encoder.hpp"

namespace mcan {
namespace {

Frame probe_frame() { return Frame::make_blank(0x2a5, 1); }

TEST(MinorCan, TransmitterOnlyLastBitErrorAvoidsRetransmission) {
  // §3: "in MinorCAN if the transmitter detects an error in the last bit
  // of EOF retransmission might be avoided" — the receivers' overload
  // flags arrive one bit after the transmitter's own flag, proving it was
  // the primary detector.
  Network net(4, ProtocolParams::minor_can());
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(0, 6));
  net.set_injector(inj);
  net.node(0).enqueue(probe_frame());
  ASSERT_TRUE(net.run_until_quiet());
  EXPECT_EQ(net.log().count(EventKind::SofSent, 0), 1u) << "no retransmission";
  EXPECT_EQ(net.log().count(EventKind::TxSuccess, 0), 1u);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(net.deliveries(i).size(), 1u) << "node " << i;
  }
}

TEST(MinorCan, StandardCanRetransmitsInTheSameCase) {
  // Contrast: standard CAN always retransmits on a transmitter last-bit
  // error, double-delivering to every receiver.
  Network net(4, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(0, 6));
  net.set_injector(inj);
  net.node(0).enqueue(probe_frame());
  ASSERT_TRUE(net.run_until_quiet());
  EXPECT_EQ(net.log().count(EventKind::SofSent, 0), 2u);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(net.deliveries(i).size(), 2u) << "node " << i;
  }
}

TEST(MinorCan, AllNodesLastBitErrorRetransmitsConsistently) {
  // §3: "if all the nodes detect an error in the last bit of EOF,
  // MinorCAN will consider all the errors not primary and the frame will
  // be unnecessarily but consistently retransmitted/rejected."
  Network net(4, ProtocolParams::minor_can());
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  for (NodeId n = 0; n < 4; ++n) inj.add(FaultTarget::eof_bit(n, 6));
  net.set_injector(inj);
  net.node(0).enqueue(probe_frame());
  ASSERT_TRUE(net.run_until_quiet());
  EXPECT_TRUE(inj.all_fired());
  EXPECT_EQ(net.log().count(EventKind::SofSent, 0), 2u)
      << "unnecessary but consistent retransmission";
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(net.deliveries(i).size(), 1u)
        << "everyone rejected the first copy";
  }
}

TEST(MinorCan, SingleReceiverLastBitPhantomAcceptsViaPrimary) {
  // The Fig. 1a situation with only one disturbed receiver: it flags, the
  // rest answer with overload flags one bit later, the primary check sees
  // dominant => accept, no retransmission anywhere.
  Network net(4, ProtocolParams::minor_can());
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(2, 6));
  net.set_injector(inj);
  net.node(0).enqueue(probe_frame());
  ASSERT_TRUE(net.run_until_quiet());
  EXPECT_EQ(net.log().count(EventKind::SofSent, 0), 1u);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(net.deliveries(i).size(), 1u) << "node " << i;
  }
  // The accepting node logged its primary decision.
  bool primary_accept = false;
  for (const Event& e : net.log().events()) {
    if (e.node == 2 && e.kind == EventKind::FrameAccepted &&
        e.detail.find("Primary_error") != std::string::npos) {
      primary_accept = true;
    }
  }
  EXPECT_TRUE(primary_accept);
}

TEST(MinorCan, EarlierEofErrorsKeepStandardSemantics) {
  // Errors before the last EOF bit must behave exactly like standard CAN:
  // reject + retransmit; every receiver ends with exactly one copy and no
  // MinorCAN acceptance events appear.
  for (int pos = 0; pos < 6; ++pos) {
    Network net(4, ProtocolParams::minor_can());
    ScopedInvariants net_invariants(net);
    ScriptedFaults inj;
    inj.add(FaultTarget::eof_bit(1, pos));
    net.set_injector(inj);
    net.node(0).enqueue(probe_frame());
    ASSERT_TRUE(net.run_until_quiet()) << "pos=" << pos;
    EXPECT_EQ(net.log().count(EventKind::SofSent, 0), 2u) << "pos=" << pos;
    for (int i = 1; i < 4; ++i) {
      EXPECT_EQ(net.deliveries(i).size(), 1u)
          << "pos=" << pos << " node=" << i;
    }
  }
}

class MinorSinglePhantom : public ::testing::TestWithParam<int> {};

TEST_P(MinorSinglePhantom, EveryEofPositionConsistentExactlyOnce) {
  // MinorCAN's whole point: one phantom anywhere in the EOF never costs
  // consistency or at-most-once (contrast StandardCanLastBitDuplicates).
  const int pos = GetParam();
  Network net(5, ProtocolParams::minor_can());
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(2, pos));
  net.set_injector(inj);
  net.node(0).enqueue(probe_frame());
  ASSERT_TRUE(net.run_until_quiet());
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(net.deliveries(i).size(), 1u) << "pos=" << pos << " node=" << i;
  }
  EXPECT_EQ(net.log().count(EventKind::TxSuccess, 0), 1u);
}

INSTANTIATE_TEST_SUITE_P(Eof, MinorSinglePhantom, ::testing::Range(0, 7));

class CanSinglePhantom : public ::testing::TestWithParam<int> {};

TEST_P(CanSinglePhantom, StandardCanPositionalOutcomes) {
  // Standard CAN's positional behaviour under one receiver phantom:
  //   pos 0..4: everyone rejects, retransmission delivers exactly once;
  //   pos 5 (last-but-one): Fig. 1b — the *other* receivers see the flag
  //     in their last bit, accept, and then receive the retransmission
  //     too: double reception;
  //   pos 6 (last): the last-bit rule absorbs it, single attempt.
  const int pos = GetParam();
  Network net(5, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(2, pos));
  net.set_injector(inj);
  net.node(0).enqueue(probe_frame());
  ASSERT_TRUE(net.run_until_quiet());

  const auto attempts = net.log().count(EventKind::SofSent, 0);
  const std::size_t others = pos == 5 ? 2u : 1u;
  EXPECT_EQ(net.deliveries(2).size(), 1u) << "pos=" << pos;
  for (int i : {1, 3, 4}) {
    EXPECT_EQ(net.deliveries(i).size(), others)
        << "pos=" << pos << " node=" << i;
  }
  EXPECT_EQ(attempts, pos < 6 ? 2u : 1u) << "pos=" << pos;
}

INSTANTIATE_TEST_SUITE_P(Eof, CanSinglePhantom, ::testing::Range(0, 7));

TEST(MinorCan, NoOverheadOnCleanChannel) {
  // MinorCAN changes only a decision rule: frame timing is identical to
  // standard CAN.
  const Frame f = probe_frame();
  Network minor(2, ProtocolParams::minor_can());
  ScopedInvariants minor_invariants(minor);
  Network standard(2, ProtocolParams::standard_can());
  ScopedInvariants standard_invariants(standard);
  minor.node(0).enqueue(f);
  standard.node(0).enqueue(f);
  ASSERT_TRUE(minor.run_until_quiet());
  ASSERT_TRUE(standard.run_until_quiet());
  ASSERT_EQ(minor.deliveries(1).size(), 1u);
  ASSERT_EQ(standard.deliveries(1).size(), 1u);
  EXPECT_EQ(minor.deliveries(1)[0].t, standard.deliveries(1)[0].t);
}

TEST(MinorCan, PermanentNodeFailureAfterDetectionStaysConsistent) {
  // §3: "MinorCAN achieves consistency in the event of a permanent failure
  // of any of the nodes after the bit error detection."  Crash the
  // flagging receiver right after its flag started; the survivors must
  // still agree.
  const Frame f = probe_frame();
  const int eof_start = wire_length(f, kStandardEofBits) - kStandardEofBits;
  Network net(4, ProtocolParams::minor_can());
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(1, 6));
  net.set_injector(inj);
  // Last EOF bit is at eof_start + 6; the flag starts one bit later; crash
  // node 1 two bits into its flag.
  net.sim().schedule_crash(1, static_cast<BitTime>(eof_start + 9));
  net.node(0).enqueue(f);
  ASSERT_TRUE(net.run_until_quiet());
  // Survivors 2,3 agree with the transmitter's verdict, whatever it was:
  EXPECT_EQ(net.deliveries(2).size(), net.deliveries(3).size());
  const bool tx_ok = net.log().count(EventKind::TxSuccess, 0) == 1;
  EXPECT_TRUE(tx_ok);
  EXPECT_EQ(net.deliveries(2).size(), 1u);
}

}  // namespace
}  // namespace mcan
