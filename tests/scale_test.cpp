// Paper-scale and stress integration tests: the reference 32-node bus,
// arbitration sweeps, and long mixed-traffic runs.
#include <gtest/gtest.h>

#include "invariant_gtest.hpp"

#include "analysis/properties.hpp"
#include "analysis/tagged.hpp"
#include "core/network.hpp"
#include "fault/random_faults.hpp"
#include "fault/scripted.hpp"
#include "scenario/campaign.hpp"
#include "util/rng.hpp"

namespace mcan {
namespace {

TEST(Scale, ReferenceBus32NodesCleanBroadcast) {
  // The paper's reference configuration: 32 nodes.
  Network net(32, ProtocolParams::major_can(5));
  ScopedInvariants net_invariants(net);
  net.node(0).enqueue(Frame::make_blank(0x100, 8));
  ASSERT_TRUE(net.run_until_quiet());
  for (int i = 1; i < 32; ++i) {
    EXPECT_EQ(net.deliveries(i).size(), 1u) << "node " << i;
  }
}

TEST(Scale, ReferenceBus32NodesFig3Pattern) {
  // The Fig. 3a pattern with 15 receivers in X on the full-size bus.
  for (bool major : {false, true}) {
    const ProtocolParams p =
        major ? ProtocolParams::major_can(5) : ProtocolParams::standard_can();
    const int last = p.eof_bits() - 1;
    Network net(32, p);
    ScopedInvariants net_invariants(net);
    ScriptedFaults inj;
    for (NodeId x = 1; x <= 15; ++x) {
      inj.add(FaultTarget::eof_bit(x, last - 1));
    }
    inj.add(FaultTarget::eof_bit(0, last));
    net.set_injector(inj);
    net.node(0).enqueue(Frame::make_blank(0x100, 8));
    ASSERT_TRUE(net.run_until_quiet());
    int with = 0, without = 0;
    for (int i = 1; i < 32; ++i) {
      (net.deliveries(i).empty() ? without : with)++;
    }
    if (major) {
      EXPECT_EQ(without, 0) << "MajorCAN keeps all 31 receivers";
    } else {
      EXPECT_EQ(without, 15) << "X never gets the frame";
      EXPECT_EQ(with, 16) << "Y keeps it";
    }
  }
}

class ArbitrationSweep : public ::testing::TestWithParam<int> {};

TEST_P(ArbitrationSweep, LowerIdAlwaysWins) {
  // Random id pairs (standard and extended, never equal): the lower
  // always goes first, for every protocol variant.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  for (int trial = 0; trial < 20; ++trial) {
    const bool ext_a = rng.chance(0.3);
    const bool ext_b = rng.chance(0.3);
    std::uint32_t id_a = rng.next_below(ext_a ? kMaxExtId : kMaxId);
    std::uint32_t id_b = rng.next_below(ext_b ? kMaxExtId : kMaxId);
    if (!ext_a && !ext_b && id_a == id_b) ++id_b;
    if (ext_a == ext_b && id_a == id_b) ++id_b;

    Network net(3, ProtocolParams::standard_can());
    ScopedInvariants net_invariants(net);
    Frame a = ext_a ? Frame::make_extended(id_a, {}) : Frame::make_blank(id_a, 0);
    Frame b = ext_b ? Frame::make_extended(id_b, {}) : Frame::make_blank(id_b, 0);
    net.node(0).enqueue(a);
    net.node(1).enqueue(b);
    ASSERT_TRUE(net.run_until_quiet());
    ASSERT_EQ(net.deliveries(2).size(), 2u);

    const Frame& first = net.deliveries(2)[0].frame;
    // Arbitration order: base id first; on a tie the standard frame's
    // dominant RTR/IDE beats the extended SRR/IDE; among two extended
    // frames the extension id decides.
    const Frame* expect = nullptr;
    if (a.base_id() != b.base_id()) {
      expect = a.base_id() < b.base_id() ? &a : &b;
    } else if (a.extended != b.extended) {
      expect = a.extended ? &b : &a;
    } else {
      expect = a.id < b.id ? &a : &b;
    }
    EXPECT_EQ(first, *expect)
        << "a=" << a.to_string() << " b=" << b.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArbitrationSweep, ::testing::Range(0, 5));

TEST(Scale, MixedTrafficManySendersUnderLightNoise) {
  SoakConfig cfg;
  cfg.protocol = ProtocolParams::major_can(5);
  cfg.n_nodes = 16;
  cfg.senders = 8;
  cfg.frames_per_sender = 15;
  cfg.period_bits = 900;
  cfg.ber_star = 5e-5;
  cfg.seed = 1234;
  auto res = run_soak(cfg);
  // Body-bit flips on the stuff-dense tagged payloads can desynchronise a
  // receiver's destuffer — the documented finding beyond the paper
  // (DESIGN.md §7) — so a rare agreement violation is tolerated here; this
  // exact seed produces one such incident (verified by hand: one flip at a
  // body bit, late stuff-error flag read as an acceptance notification).
  EXPECT_LE(res.report.agreement_violations, 1) << res.summary();
  EXPECT_EQ(res.report.duplicate_deliveries, 0) << res.summary();
  EXPECT_EQ(res.report.order_inversions, 0) << res.summary();
  EXPECT_EQ(res.report.validity_violations, 0) << res.summary();
  EXPECT_EQ(res.report.fifo_violations, 0) << res.summary();
}

TEST(Scale, SaturatedBusDeliversEverythingInIdOrder) {
  const int n = 12;
  Network net(n, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  // Everyone queues 3 frames at once; arbitration must serialise 36 frames
  // with zero losses and global priority order per round.
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < 3; ++k) {
      net.node(i).enqueue(Frame::make_blank(
          0x100 + static_cast<std::uint32_t>(i) * 8 +
              static_cast<std::uint32_t>(k),
          1));
    }
  }
  ASSERT_TRUE(net.run_until_quiet(200000));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(net.deliveries(i).size(), static_cast<std::size_t>((n - 1) * 3))
        << "node " << i;
  }
}

}  // namespace
}  // namespace mcan
