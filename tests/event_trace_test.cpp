// Tests for the event log and the ASCII trace renderer.
#include <gtest/gtest.h>

#include "invariant_gtest.hpp"

#include "core/network.hpp"
#include "fault/scripted.hpp"
#include "sim/event.hpp"

namespace mcan {
namespace {

TEST(EventLog, EmitFilterCount) {
  EventLog log;
  log.emit({1, 0, EventKind::SofSent, "", std::nullopt});
  log.emit({2, 1, EventKind::SofSeen, "", std::nullopt});
  log.emit({3, 1, EventKind::FrameAccepted, "clean", std::nullopt});
  log.emit({4, 2, EventKind::FrameAccepted, "clean", std::nullopt});

  EXPECT_EQ(log.events().size(), 4u);
  EXPECT_EQ(log.count(EventKind::FrameAccepted), 2u);
  EXPECT_EQ(log.count(EventKind::FrameAccepted, 1), 1u);
  EXPECT_EQ(log.filter(EventKind::FrameAccepted, 2).size(), 1u);
  EXPECT_EQ(log.filter(EventKind::TxSuccess).size(), 0u);
  log.clear();
  EXPECT_TRUE(log.events().empty());
}

TEST(EventLog, ToStringCarriesDetailAndFrame) {
  Event e{42, 7, EventKind::FrameRejected, "stuff error",
          Frame::make_blank(0x1a, 2)};
  const std::string s = e.to_string();
  EXPECT_NE(s.find("t=42"), std::string::npos);
  EXPECT_NE(s.find("node=7"), std::string::npos);
  EXPECT_NE(s.find("FrameRejected"), std::string::npos);
  EXPECT_NE(s.find("stuff error"), std::string::npos);
  EXPECT_NE(s.find("0x01a"), std::string::npos);
}

TEST(EventLog, AllKindNamesDistinct) {
  std::set<std::string> names;
  const int last = static_cast<int>(EventKind::BusOffRecovered);
  for (int k = 0; k <= last; ++k) {
    names.insert(event_kind_name(static_cast<EventKind>(k)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(last) + 1);
  EXPECT_FALSE(names.contains("?"));
}

TEST(SegNames, AllDistinct) {
  std::set<std::string> names;
  for (int s = 0; s <= static_cast<int>(Seg::ExtFlag); ++s) {
    names.insert(seg_name(static_cast<Seg>(s)));
  }
  EXPECT_EQ(names.size(),
            static_cast<std::size_t>(static_cast<int>(Seg::ExtFlag)) + 1);
}

TEST(Trace, WindowedRenderContainsOnlyRequestedBits) {
  Network net(2, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  net.enable_trace();
  net.node(0).enqueue(Frame::make_blank(0x3c, 0));
  ASSERT_TRUE(net.run_until_quiet());
  const std::string full = net.trace().render(net.labels());
  const std::string window = net.trace().render(net.labels(), 10, 20);
  EXPECT_GT(full.size(), window.size());
  // The window row for each node is exactly 10 chars of levels.
  // (ruler + 2 node rows; find the node-0 row)
  auto pos = window.find("node 0");
  ASSERT_NE(pos, std::string::npos);
  auto eol = window.find('\n', pos);
  // label is padded; levels follow — total row length is label width + 10.
  EXPECT_EQ(window.substr(pos, eol - pos).size(),
            window.find('\n') - 0);  // same width as the ruler row
}

TEST(Trace, DisturbanceBandOnlyWhenDisturbed) {
  Network clean(2, ProtocolParams::standard_can());
  ScopedInvariants clean_invariants(clean);
  clean.enable_trace();
  clean.node(0).enqueue(Frame::make_blank(0x3c, 0));
  ASSERT_TRUE(clean.run_until_quiet());
  EXPECT_EQ(clean.trace().render(clean.labels()).find('*'), std::string::npos);

  Network dirty(2, ProtocolParams::standard_can());
  ScopedInvariants dirty_invariants(dirty);
  dirty.enable_trace();
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(1, 3));
  dirty.set_injector(inj);
  dirty.node(0).enqueue(Frame::make_blank(0x3c, 0));
  ASSERT_TRUE(dirty.run_until_quiet());
  EXPECT_NE(dirty.trace().render(dirty.labels()).find('*'), std::string::npos);
}

TEST(Trace, CrashedNodeRendersDots) {
  Network net(3, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  net.enable_trace();
  net.sim().schedule_crash(2, 5);
  net.node(0).enqueue(Frame::make_blank(0x3c, 0));
  ASSERT_TRUE(net.run_until_quiet());
  const std::string out = net.trace().render(net.labels());
  EXPECT_NE(out.find('.'), std::string::npos);
}

TEST(Network, LabelsMatchSize) {
  Network net(4, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  EXPECT_EQ(net.labels().size(), 4u);
  EXPECT_EQ(net.labels()[2], "node 2");
}

TEST(Network, RunUntilQuietTimesOutWhenBusStuck) {
  // A lone transmitter never gets an ACK and retries forever (until
  // bus-off); with fault confinement disabled it really is forever.
  FaultConfinementConfig fc;
  fc.enabled = false;
  Network net(1, ProtocolParams::standard_can(), fc);
  net.node(0).enqueue(Frame::make_blank(0x1, 0));
  EXPECT_FALSE(net.run_until_quiet(2000));
}

}  // namespace
}  // namespace mcan
