// Tests for the fault-injection module: scripted target matching semantics
// and the calibration of the random (ber*) injector.
#include <gtest/gtest.h>

#include "fault/random_faults.hpp"
#include "fault/scripted.hpp"

namespace mcan {
namespace {

NodeBitInfo info_at(Seg seg, int index, int eof_rel = -1, int frame = 0,
                    bool tx = false) {
  NodeBitInfo i;
  i.seg = seg;
  i.index = index;
  i.eof_rel = eof_rel;
  i.frame_index = frame;
  i.transmitter = tx;
  return i;
}

TEST(ScriptedFaults, AtTimeMatchesOnlyThatBit) {
  ScriptedFaults inj;
  inj.add(FaultTarget::at_time(3, 100));
  EXPECT_FALSE(inj.flips(3, 99, info_at(Seg::Body, 0), Level::Recessive));
  EXPECT_FALSE(inj.flips(2, 100, info_at(Seg::Body, 0), Level::Recessive));
  EXPECT_TRUE(inj.flips(3, 100, info_at(Seg::Body, 0), Level::Recessive));
  // count = 1: exhausted.
  EXPECT_FALSE(inj.flips(3, 100, info_at(Seg::Body, 0), Level::Recessive));
  EXPECT_EQ(inj.fired(), 1);
  EXPECT_TRUE(inj.all_fired());
}

TEST(ScriptedFaults, EofBitMatchesSegmentIndexAndFrame) {
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(1, 5, 2));
  EXPECT_FALSE(inj.flips(1, 10, info_at(Seg::Eof, 5, 5, 1), Level::Recessive))
      << "wrong frame";
  EXPECT_FALSE(inj.flips(1, 10, info_at(Seg::Eof, 4, 4, 2), Level::Recessive))
      << "wrong position";
  EXPECT_FALSE(inj.flips(1, 10, info_at(Seg::Body, 5, -1, 2), Level::Recessive))
      << "wrong segment";
  EXPECT_TRUE(inj.flips(1, 10, info_at(Seg::Eof, 5, 5, 2), Level::Recessive));
}

TEST(ScriptedFaults, EofRelativeMatchesAcrossSegments) {
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_relative(0, 12));
  // The same EOF-relative position can occur while the node is sampling.
  EXPECT_TRUE(inj.flips(0, 50, info_at(Seg::Sampling, 12, 12, 0), Level::Recessive));
}

TEST(ScriptedFaults, MultiCountFiresRepeatedly) {
  ScriptedFaults inj;
  FaultTarget t;
  t.node = 0;
  t.seg = Seg::Eof;
  t.count = 3;
  inj.add(t);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(inj.flips(0, static_cast<BitTime>(i), info_at(Seg::Eof, i, i, 0),
                          Level::Recessive));
  }
  EXPECT_FALSE(inj.flips(0, 9, info_at(Seg::Eof, 9, 9, 0), Level::Recessive));
  EXPECT_EQ(inj.fired(), 3);
}

TEST(ScriptedFaults, MultipleTargetsIndependent) {
  ScriptedFaults inj;
  inj.add(FaultTarget::at_time(0, 5));
  inj.add(FaultTarget::at_time(1, 5));
  EXPECT_TRUE(inj.flips(0, 5, info_at(Seg::Idle, 0), Level::Recessive));
  EXPECT_TRUE(inj.flips(1, 5, info_at(Seg::Idle, 0), Level::Recessive));
  EXPECT_TRUE(inj.all_fired());
}

TEST(RandomFaults, RateZeroNeverFires) {
  RandomFaults inj(0.0, Rng(1));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(inj.flips(0, static_cast<BitTime>(i),
                           info_at(Seg::Body, i), Level::Recessive));
  }
  EXPECT_EQ(inj.injected(), 0);
}

TEST(RandomFaults, RateCalibrated) {
  RandomFaults inj(0.1, Rng(7));
  int fired = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (inj.flips(0, static_cast<BitTime>(i), info_at(Seg::Body, i),
                  Level::Recessive)) {
      ++fired;
    }
  }
  EXPECT_NEAR(static_cast<double>(fired) / n, 0.1, 0.01);
  EXPECT_EQ(inj.injected(), fired);
}

TEST(RandomFaults, FramesOnlySkipsIdleBits) {
  RandomFaults inj(1.0, Rng(9));  // always fires when eligible
  inj.set_frames_only(true);
  EXPECT_FALSE(inj.flips(0, 0, info_at(Seg::Idle, 0), Level::Recessive));
  EXPECT_FALSE(inj.flips(0, 1, info_at(Seg::Intermission, 0), Level::Recessive));
  EXPECT_TRUE(inj.flips(0, 2, info_at(Seg::Body, 10), Level::Recessive));
  EXPECT_TRUE(inj.flips(0, 3, info_at(Seg::Eof, 2, 2), Level::Recessive));
}

TEST(RandomFaults, SetRateTakesEffect) {
  RandomFaults inj(1.0, Rng(11));
  EXPECT_TRUE(inj.flips(0, 0, info_at(Seg::Body, 0), Level::Recessive));
  inj.set_rate(0.0);
  EXPECT_FALSE(inj.flips(0, 1, info_at(Seg::Body, 1), Level::Recessive));
}

}  // namespace
}  // namespace mcan
