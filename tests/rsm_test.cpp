// Consensus-layer tests: fragmentation/reassembly under adversarial
// interleavings, the replicated log and its snapshot transfer, full
// cluster runs over every link variant, crash/recovery, the bounded
// consensus model check, the consensus fuzzing oracle, and the serve
// backend — the application-level half of the paper's claim: standard
// CAN's inconsistent message omission breaks replicated-state-machine
// consistency, MajorCAN_m inside its envelope does not.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "fuzz/engine.hpp"
#include "fuzz/triage.hpp"
#include "higher/host.hpp"
#include "rsm/check.hpp"
#include "rsm/cluster.hpp"
#include "rsm/frag.hpp"
#include "rsm/log.hpp"
#include "rsm/runner.hpp"
#include "serve/backend.hpp"

namespace mcan {
namespace {

std::vector<std::uint8_t> pattern_payload(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>(seed + 7 * i);
  }
  return p;
}

// --- fragmentation --------------------------------------------------------

TEST(RsmFrag, SplitRoundTripAllSizes) {
  for (const std::size_t size : {0u, 1u, 2u, 3u, 8u, 255u, 256u}) {
    std::uint16_t seq = 0;
    const std::vector<std::uint8_t> payload =
        pattern_payload(size, static_cast<std::uint8_t>(size));
    const std::vector<Frame> segs =
        split_message(RsmMsgType::Cmd, 2, 0, seq, payload, 0x102);
    const std::size_t want_segs =
        std::max<std::size_t>(1, (size + kRsmChunkBytes - 1) / kRsmChunkBytes);
    EXPECT_EQ(segs.size(), want_segs) << "size " << size;
    EXPECT_EQ(seq, want_segs);

    Reassembler rx;
    std::optional<RsmMessage> done;
    BitTime t = 10;
    for (const Frame& f : segs) {
      EXPECT_FALSE(done) << "completed before the last segment, size "
                         << size;
      done = rx.on_frame(f, t++);
    }
    ASSERT_TRUE(done) << "size " << size;
    EXPECT_EQ(done->type, RsmMsgType::Cmd);
    EXPECT_EQ(done->source, 2);
    EXPECT_EQ(done->payload, payload);
    EXPECT_TRUE(rx.stats().lossless());
    EXPECT_EQ(rx.stats().messages, 1u);
  }
}

TEST(RsmFrag, OversizePayloadThrows) {
  std::uint16_t seq = 0;
  EXPECT_THROW(split_message(RsmMsgType::Cmd, 0, 0, seq,
                             pattern_payload(kRsmMaxPayload + 1, 1), 0x100),
               std::length_error);
}

TEST(RsmFrag, DuplicateSegmentsAbsorbed) {
  std::uint16_t seq = 0;
  const std::vector<std::uint8_t> payload = pattern_payload(4, 9);
  const std::vector<Frame> segs =
      split_message(RsmMsgType::Cmd, 1, 0, seq, payload, 0x101);
  ASSERT_EQ(segs.size(), 2u);

  // CAN's inconsistent double reception: a segment arrives twice.
  Reassembler rx;
  EXPECT_FALSE(rx.on_frame(segs[0], 1));
  EXPECT_FALSE(rx.on_frame(segs[0], 2));  // duplicate, absorbed
  const std::optional<RsmMessage> done = rx.on_frame(segs[1], 3);
  ASSERT_TRUE(done);
  EXPECT_EQ(done->payload, payload);
  EXPECT_EQ(rx.stats().duplicates, 1u);
  EXPECT_TRUE(rx.stats().lossless());

  // A duplicated *last* segment after completion is also just counted.
  EXPECT_FALSE(rx.on_frame(segs[1], 4));
  EXPECT_EQ(rx.stats().duplicates, 2u);
  EXPECT_EQ(rx.stats().messages, 1u);
}

TEST(RsmFrag, LostSegmentDetectedAsGap) {
  std::uint16_t seq = 0;
  const std::vector<Frame> msg_a =
      split_message(RsmMsgType::Cmd, 0, 0, seq, pattern_payload(4, 1), 0x100);
  const std::vector<Frame> msg_b =
      split_message(RsmMsgType::Cmd, 0, 0, seq, pattern_payload(4, 2), 0x100);
  ASSERT_EQ(msg_a.size(), 2u);
  ASSERT_EQ(msg_b.size(), 2u);

  // Lose A's second segment (inconsistent omission): B must still land,
  // and the loss must be visible in the stats — this is the exact signal
  // that turns a wire-level Agreement violation into an application one.
  Reassembler rx;
  EXPECT_FALSE(rx.on_frame(msg_a[0], 1));
  EXPECT_FALSE(rx.on_frame(msg_b[0], 2));  // seq jumps: gap + partial drop
  const std::optional<RsmMessage> done = rx.on_frame(msg_b[1], 3);
  ASSERT_TRUE(done);
  EXPECT_EQ(done->payload, pattern_payload(4, 2));
  EXPECT_EQ(rx.stats().gaps, 1u);
  EXPECT_EQ(rx.stats().dropped, 1u);
  EXPECT_FALSE(rx.stats().lossless());
}

TEST(RsmFrag, InterleavedSendersReassembleIndependently) {
  std::uint16_t seq_a = 0;
  std::uint16_t seq_b = 0;
  const std::vector<std::uint8_t> pay_a = pattern_payload(6, 3);
  const std::vector<std::uint8_t> pay_b = pattern_payload(5, 4);
  const std::vector<Frame> a =
      split_message(RsmMsgType::Cmd, 0, 0, seq_a, pay_a, 0x100);
  const std::vector<Frame> b =
      split_message(RsmMsgType::Vote, 1, 0, seq_b, pay_b, 0x101);
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(b.size(), 3u);

  // Arbitration interleaves two senders' segments; per-sender sequencing
  // must keep the streams apart.
  Reassembler rx;
  EXPECT_FALSE(rx.on_frame(a[0], 1));
  EXPECT_FALSE(rx.on_frame(b[0], 2));
  EXPECT_FALSE(rx.on_frame(a[1], 3));
  EXPECT_FALSE(rx.on_frame(b[1], 4));
  const std::optional<RsmMessage> done_a = rx.on_frame(a[2], 5);
  const std::optional<RsmMessage> done_b = rx.on_frame(b[2], 6);
  ASSERT_TRUE(done_a);
  ASSERT_TRUE(done_b);
  EXPECT_EQ(done_a->source, 0);
  EXPECT_EQ(done_a->payload, pay_a);
  EXPECT_EQ(done_b->type, RsmMsgType::Vote);
  EXPECT_EQ(done_b->payload, pay_b);
  EXPECT_TRUE(rx.stats().lossless());
  EXPECT_EQ(rx.stats().messages, 2u);
}

TEST(RsmFrag, EpochChangeDropsPartialMessage) {
  std::uint16_t seq_old = 0;
  const std::vector<Frame> old_msg = split_message(
      RsmMsgType::Cmd, 3, /*epoch=*/1, seq_old, pattern_payload(4, 5), 0x103);
  // The sender crashed mid-message and came back in a new incarnation.
  std::uint16_t seq_new = 0;
  const std::vector<Frame> new_msg = split_message(
      RsmMsgType::Join, 3, /*epoch=*/2, seq_new, pattern_payload(2, 6), 0x103);

  Reassembler rx;
  EXPECT_FALSE(rx.on_frame(old_msg[0], 1));
  const std::optional<RsmMessage> done = rx.on_frame(new_msg[0], 2);
  ASSERT_TRUE(done);
  EXPECT_EQ(done->type, RsmMsgType::Join);
  EXPECT_EQ(done->epoch, 2);
  EXPECT_EQ(rx.stats().epoch_resets, 1u);
  EXPECT_EQ(rx.stats().dropped, 1u);
}

TEST(RsmFrag, NonSegmentFramesCountedMalformed) {
  Reassembler rx;
  Frame plain;
  plain.id = 0x300;
  plain.dlc = 2;
  plain.data = {0xAB, 0xCD};
  EXPECT_FALSE(rx.on_frame(plain, 1));
  EXPECT_EQ(rx.stats().malformed, 1u);
  EXPECT_FALSE(rx.stats().lossless());
}

// --- log / machine / snapshot ---------------------------------------------

TEST(RsmLogTest, RegisterMachineSignExtendsDeltas) {
  RegisterMachine m;
  LogEntry inc;
  inc.id = {0, 1};
  inc.payload = {1, 0x05};  // reg 1 += 5
  m.apply(inc, 0);
  EXPECT_EQ(m.reg(1), 5);

  LogEntry dec;
  dec.id = {0, 2};
  dec.payload = {1, 0xFF};  // reg 1 += -1 (sign-extended)
  m.apply(dec, 1);
  EXPECT_EQ(m.reg(1), 4);

  LogEntry wide;
  wide.id = {0, 3};
  wide.payload = {2, 0x00, 0xFF};  // reg 2 += -256, little endian
  m.apply(wide, 2);
  EXPECT_EQ(m.reg(2), -256);

  LogEntry bare;
  bare.id = {0, 4};
  bare.payload = {3};  // selector only: delta 0, digest still advances
  const std::uint64_t before = m.digest();
  m.apply(bare, 3);
  EXPECT_EQ(m.reg(3), 0);
  EXPECT_NE(m.digest(), before);
  EXPECT_EQ(m.applied(), 4);
}

TEST(RsmLogTest, AbsoluteIndicesSurviveSnapshotBase) {
  RsmLog log;
  log.reset_to_base(10);
  LogEntry e;
  e.id = {1, 7};
  EXPECT_EQ(log.append(e), 10);
  EXPECT_TRUE(log.holds(10));
  EXPECT_FALSE(log.holds(9));
  EXPECT_TRUE(log.contains({1, 7}));
  EXPECT_EQ(log.index_of({1, 7}).value_or(-1), 10);
  EXPECT_FALSE(log.committed(10));
  log.mark_committed(10);
  EXPECT_TRUE(log.committed(10));
}

TEST(RsmLogTest, SnapshotSerializeParseRoundTrip) {
  RsmSnapshot s;
  s.joiner = 2;
  s.joiner_epoch = 3;
  s.term = 1;
  s.members = 0b111;
  s.base = 5;
  s.regs[0] = -42;
  s.regs[7] = 1234567;
  s.digest = 0xDEADBEEFCAFEF00DULL;
  RsmSnapshot::TailEntry t1;
  t1.entry.id = {0, 9};
  t1.entry.payload = pattern_payload(3, 8);
  t1.voters = 0b101;
  RsmSnapshot::TailEntry t2;
  t2.entry.id = {1, 4};
  t2.entry.is_join = true;
  t2.entry.joiner = 2;
  t2.entry.joiner_epoch = 3;
  t2.voters = 0b001;
  s.tail = {t1, t2};

  const std::vector<std::uint8_t> bytes = s.serialize();
  ASSERT_LE(bytes.size(), static_cast<std::size_t>(kRsmMaxPayload));
  const std::optional<RsmSnapshot> p = RsmSnapshot::parse(bytes);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->joiner, s.joiner);
  EXPECT_EQ(p->joiner_epoch, s.joiner_epoch);
  EXPECT_EQ(p->term, s.term);
  EXPECT_EQ(p->members, s.members);
  EXPECT_EQ(p->base, s.base);
  EXPECT_EQ(p->regs, s.regs);
  EXPECT_EQ(p->digest, s.digest);
  ASSERT_EQ(p->tail.size(), 2u);
  EXPECT_EQ(p->tail[0].entry.id, t1.entry.id);
  EXPECT_EQ(p->tail[0].entry.payload, t1.entry.payload);
  EXPECT_EQ(p->tail[0].voters, t1.voters);
  EXPECT_TRUE(p->tail[1].entry.is_join);
  EXPECT_EQ(p->tail[1].entry.joiner, 2);
  EXPECT_EQ(p->tail[1].entry.digest(), t2.entry.digest());
}

TEST(RsmLogTest, SnapshotSerializerCapsOversizeTail) {
  RsmSnapshot s;
  for (int i = 0; i < 40; ++i) {
    RsmSnapshot::TailEntry t;
    t.entry.id = {0, static_cast<std::uint16_t>(i)};
    t.entry.payload = pattern_payload(10, static_cast<std::uint8_t>(i));
    s.tail.push_back(std::move(t));
  }
  const std::vector<std::uint8_t> bytes = s.serialize();
  ASSERT_LE(bytes.size(), static_cast<std::size_t>(kRsmMaxPayload));
  const std::optional<RsmSnapshot> p = RsmSnapshot::parse(bytes);
  ASSERT_TRUE(p);
  EXPECT_LT(p->tail.size(), 40u);
  EXPECT_TRUE(p->truncated);
}

TEST(RsmLogTest, TruncatedSnapshotBytesRejected) {
  RsmSnapshot s;
  s.members = 0b11;
  RsmSnapshot::TailEntry t;
  t.entry.id = {1, 2};
  t.entry.payload = pattern_payload(4, 1);
  s.tail = {t};
  std::vector<std::uint8_t> bytes = s.serialize();
  for (const std::size_t cut : {bytes.size() - 1, bytes.size() / 2,
                                std::size_t{3}, std::size_t{0}}) {
    std::vector<std::uint8_t> short_bytes(bytes.begin(),
                                          bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(RsmSnapshot::parse(short_bytes)) << "cut " << cut;
  }
}

// --- HostParams validation (satellite: timeout_bits floor) ----------------

TEST(RsmHost, TimeoutFloorMatchesProtocolGeometry) {
  const BitTime can_min = host_min_timeout_bits(ProtocolParams::standard_can());
  const BitTime major_min = host_min_timeout_bits(ProtocolParams::major_can(5));
  // MajorCAN's longer EOF and delimiter push the worst case up.
  EXPECT_GT(major_min, can_min);
  // The default and the value the higher-protocol tests use must stay
  // legal on standard CAN.
  EXPECT_LE(can_min, 400);
  HostParams ok;
  ok.timeout_bits = 400;
  EXPECT_NO_THROW(ok.validate(ProtocolParams::standard_can()));
  HostParams dflt;
  EXPECT_NO_THROW(dflt.validate(ProtocolParams::standard_can()));
  EXPECT_NO_THROW(dflt.validate(ProtocolParams::major_can(5)));

  HostParams bad;
  bad.timeout_bits = can_min;  // must *exceed* the floor
  EXPECT_THROW(bad.validate(ProtocolParams::standard_can()),
               std::invalid_argument);
}

TEST(RsmHost, HigherHostRejectsUnsafeTimeoutAtConstruction) {
  HostParams bad;
  bad.timeout_bits = 10;
  RsmClusterConfig cc;
  cc.n_nodes = 3;
  cc.link = RsmLink::Totcan;
  cc.host = bad;
  EXPECT_THROW(RsmCluster cluster(cc), std::invalid_argument);
}

// --- DSL: the rsm directive ------------------------------------------------

TEST(RsmDsl, DirectiveRoundTrips) {
  const std::string text =
      "protocol major 5\n"
      "nodes 3\n"
      "frame id=0x100 dlc=4\n"
      "rsm commands=4 payload=6 k=2 spacing=500 link=totcan crash=1 "
      "crasht=2000 recovert=9000\n"
      "expect consistent\n";
  const ScenarioSpec spec = parse_scenario(text);
  ASSERT_TRUE(spec.rsm);
  EXPECT_EQ(spec.rsm->commands, 4);
  EXPECT_EQ(spec.rsm->payload, 6);
  EXPECT_EQ(spec.rsm->k, 2);
  EXPECT_EQ(spec.rsm->spacing, 500);
  EXPECT_EQ(spec.rsm->link, 3);
  EXPECT_EQ(spec.rsm->crash_node, 1);
  EXPECT_EQ(spec.rsm->recover_t, 9000);
  EXPECT_EQ(parse_scenario(write_scenario(spec)), spec);
}

TEST(RsmDsl, SanitizeClampsWorkload) {
  RsmWorkload w;
  w.commands = 99;
  w.payload = 1000;
  w.k = 7;
  w.link = 42;
  w.crash_node = 9;
  w.crash_t = 500;
  w.recover_t = 100;  // before the crash: must be pushed after it
  const RsmWorkload c = sanitize_rsm_workload(w, 3);
  EXPECT_LE(c.commands, 10);
  EXPECT_LE(c.payload, 16);
  EXPECT_LE(c.k, 3);
  EXPECT_GE(c.link, 0);
  EXPECT_LE(c.link, 3);
  EXPECT_LT(c.crash_node, 3);
  EXPECT_GT(c.recover_t, c.crash_t);
}

TEST(RsmDsl, PlainRunnerRejectsRsmScenarios) {
  ScenarioSpec spec;
  spec.rsm = RsmWorkload{};
  EXPECT_THROW((void)run_scenario(spec), std::invalid_argument);
  // ... and the dispatcher routes it instead of throwing.
  spec.protocol = ProtocolParams::major_can(5);
  spec.n_nodes = 3;
  const DslRunResult res = run_any_scenario(spec);
  EXPECT_TRUE(res.quiesced);
}

// --- full cluster runs ------------------------------------------------------

RsmWorkload small_workload(int commands = 3, int payload = 4, int k = 2) {
  RsmWorkload w;
  w.commands = commands;
  w.payload = payload;
  w.k = k;
  return w;
}

TEST(RsmRun, MajorCanDirectCleanConsensus) {
  ScenarioSpec spec;
  spec.name = "rsm-major-clean";
  spec.protocol = ProtocolParams::major_can(5);
  spec.n_nodes = 5;
  spec.rsm = small_workload(5, 4, 2);
  spec.expect = Expectation::Consistent;

  const RsmRunResult res = run_rsm_scenario(spec);
  EXPECT_TRUE(res.base.quiesced);
  EXPECT_TRUE(res.within_envelope);
  EXPECT_TRUE(res.rsm.clean()) << res.rsm.summary() << "\n" << res.rsm.detail;
  EXPECT_TRUE(res.base.expectation_met) << res.base.expectation_text;
  EXPECT_EQ(res.rsm.participating, 5);
  EXPECT_EQ(res.rsm.proposals, 5);
  // Every replica commits and applies every command.
  EXPECT_EQ(res.rsm.commits, 25);
  EXPECT_TRUE(res.rsm.liveness_checked);
  EXPECT_TRUE(res.base.invariants.clean()) << res.base.invariants.summary();
}

TEST(RsmRun, StandardCanFaultFreeIsClean) {
  ScenarioSpec spec;
  spec.protocol = ProtocolParams::standard_can();
  spec.n_nodes = 3;
  spec.rsm = small_workload(3, 4, 2);
  spec.expect = Expectation::Consistent;
  const RsmRunResult res = run_rsm_scenario(spec);
  EXPECT_TRUE(res.base.quiesced);
  EXPECT_TRUE(res.within_envelope);  // no disturbances scheduled
  EXPECT_TRUE(res.rsm.clean()) << res.rsm.summary();
  EXPECT_EQ(res.rsm.commits, 9);
}

TEST(RsmRun, MultiSegmentCommandsSurviveArbitration) {
  // 16-byte commands fragment into 8 segments each; three proposers
  // contend simultaneously.  The total order must still produce matching
  // logs and lossless reassembly everywhere.
  ScenarioSpec spec;
  spec.protocol = ProtocolParams::major_can(5);
  spec.n_nodes = 3;
  spec.rsm = small_workload(3, 16, 3);
  spec.expect = Expectation::Consistent;
  const RsmRunResult res = run_rsm_scenario(spec);
  EXPECT_TRUE(res.base.quiesced);
  EXPECT_TRUE(res.rsm.clean()) << res.rsm.summary() << "\n" << res.rsm.detail;
  EXPECT_EQ(res.rsm.commits, 9);
}

TEST(RsmRun, CanImoFlipsBreakConsensus) {
  // The canonical standard-CAN IMO shape (scenarios/fuzz_can_k2_imo.scn):
  // a receiver rejects in the second-to-last EOF bit, and the
  // transmitter's view of the resulting error flag is flipped in its last
  // EOF bit, so it believes the broadcast succeeded and never
  // retransmits.  On the wire that is one lost segment at one node; at
  // the application it is two replicas with different logs.
  ScenarioSpec spec;
  spec.name = "rsm-can-imo";
  spec.protocol = ProtocolParams::standard_can();
  spec.n_nodes = 3;
  spec.rsm = small_workload(2, 2, 2);
  spec.flips.push_back(FaultTarget::eof_relative(0, 6, 0));
  spec.flips.push_back(FaultTarget::eof_relative(1, 5, 0));
  spec.expect = Expectation::Imo;

  const RsmRunResult res = run_rsm_scenario(spec);
  EXPECT_TRUE(res.base.quiesced);
  EXPECT_FALSE(res.within_envelope);
  EXPECT_FALSE(res.rsm.clean()) << res.rsm.summary();
  EXPECT_GT(res.rsm.log_mismatches + res.rsm.state_mismatches, 0)
      << res.rsm.summary();
  EXPECT_TRUE(res.base.expectation_met) << res.base.expectation_text;
}

TEST(RsmRun, MajorCanAbsorbsTheSameFlips) {
  // Same disturbance pattern, MajorCAN_5: two flips are well inside the
  // m=5 envelope, so consensus must hold — the paper's claim end to end.
  ScenarioSpec spec;
  spec.protocol = ProtocolParams::major_can(5);
  spec.n_nodes = 3;
  spec.rsm = small_workload(2, 2, 2);
  spec.flips.push_back(FaultTarget::eof_relative(0, 6, 0));
  spec.flips.push_back(FaultTarget::eof_relative(1, 5, 0));
  spec.expect = Expectation::Consistent;

  const RsmRunResult res = run_rsm_scenario(spec);
  EXPECT_TRUE(res.base.quiesced);
  EXPECT_TRUE(res.within_envelope);
  EXPECT_TRUE(res.rsm.clean()) << res.rsm.summary() << "\n" << res.rsm.detail;
  EXPECT_TRUE(res.rsm.liveness_checked);
}

TEST(RsmRun, CrashRecoveryInstallsSnapshot) {
  ScenarioSpec spec;
  spec.name = "rsm-recovery";
  spec.protocol = ProtocolParams::major_can(5);
  spec.n_nodes = 3;
  RsmWorkload w = small_workload(4, 4, 2);
  w.spacing = 1500;
  w.crash_node = 1;
  w.crash_t = 2500;
  w.recover_t = 12000;
  spec.rsm = w;
  spec.expect = Expectation::Consistent;

  const RsmRunResult res = run_rsm_scenario(spec);
  EXPECT_TRUE(res.base.quiesced);
  EXPECT_TRUE(res.rsm.clean()) << res.rsm.summary() << "\n" << res.rsm.detail;
  EXPECT_EQ(res.rsm.installs, 1);
  EXPECT_EQ(res.rsm.election_violations, 0);
  EXPECT_EQ(res.rsm.stalled_recoveries, 0);
  EXPECT_TRUE(res.base.expectation_met) << res.base.expectation_text;
}

TEST(RsmRun, RecoveredReplicaKeepsCommittingAfterRejoin) {
  // Proposals continue after the rejoin: the recovered replica must take
  // part in committing them (snapshot handoff restored its bookkeeping).
  ScenarioSpec spec;
  spec.protocol = ProtocolParams::major_can(5);
  spec.n_nodes = 3;
  RsmWorkload w = small_workload(6, 4, 3);  // k = n: nobody may lag
  w.spacing = 4000;
  w.crash_node = 2;
  w.crash_t = 3000;
  w.recover_t = 9000;
  spec.rsm = w;
  spec.expect = Expectation::Consistent;

  const RsmRunResult res = run_rsm_scenario(spec);
  EXPECT_TRUE(res.base.quiesced);
  EXPECT_TRUE(res.rsm.clean()) << res.rsm.summary() << "\n" << res.rsm.detail;
  EXPECT_EQ(res.rsm.installs, 1);
  EXPECT_TRUE(res.rsm.liveness_checked);
}

TEST(RsmRun, ControllerCrashMidBroadcastExcludedFromVerdict) {
  // A fail-silent *controller* crash (not a host crash) in the middle of
  // the broadcast schedule: the higher-network journal collection and the
  // consensus checker must both treat that node as out of the model
  // instead of reporting phantom violations.
  for (const int link : {0, 3}) {  // direct and TOTCAN
    ScenarioSpec spec;
    spec.protocol = ProtocolParams::standard_can();
    spec.n_nodes = 4;
    RsmWorkload w = small_workload(4, 4, 2);
    w.link = link;
    w.spacing = 300;
    spec.rsm = w;
    spec.crash = {{2, 700}};  // mid-schedule, segments still in flight
    const RsmRunResult res = run_rsm_scenario(spec);
    EXPECT_TRUE(res.base.quiesced) << "link " << link;
    EXPECT_FALSE(res.within_envelope);  // fail-silence is outside the model
    EXPECT_EQ(res.rsm.election_violations, 0) << "link " << link;
    EXPECT_EQ(res.rsm.participating, 3) << "link " << link;
    EXPECT_EQ(res.base.ab.nontriviality_violations, 0)
        << "link " << link << ": " << res.base.ab.summary();
  }
}

TEST(RsmRun, TotcanPreservesConsensusEdcanDoesNot) {
  // EDCAN and RELCAN deliver a sender's own message immediately — no
  // total order — so three simultaneous proposers append in different
  // orders and the logs diverge.  TOTCAN's ACCEPT-ordered release keeps
  // the logs matching.  This is the Rufino hierarchy, observed from the
  // application.
  for (const int link : {1, 2}) {  // edcan, relcan
    ScenarioSpec spec;
    spec.protocol = ProtocolParams::standard_can();
    spec.n_nodes = 3;
    RsmWorkload w = small_workload(3, 4, 2);
    w.link = link;
    spec.rsm = w;
    const RsmRunResult res = run_rsm_scenario(spec);
    EXPECT_TRUE(res.base.quiesced) << "link " << link;
    EXPECT_GT(res.rsm.log_mismatches, 0)
        << "link " << link << ": " << res.rsm.summary();
  }

  ScenarioSpec spec;
  spec.protocol = ProtocolParams::standard_can();
  spec.n_nodes = 3;
  RsmWorkload w = small_workload(3, 4, 2);
  w.link = 3;  // totcan
  spec.rsm = w;
  const RsmRunResult res = run_rsm_scenario(spec);
  EXPECT_TRUE(res.base.quiesced);
  EXPECT_EQ(res.rsm.log_mismatches, 0) << res.rsm.summary();
  EXPECT_EQ(res.rsm.state_mismatches, 0) << res.rsm.summary();
}

// --- bounded consensus model check -----------------------------------------

TEST(RsmCheck, MajorCanEnvelopeSweepIsClean) {
  // Exhaustive over the whole MajorCAN_3 end-game window (3m+5 = 14),
  // every node, up to two stacked flips: every case is inside the m=3
  // envelope, so election safety, log matching, state-machine safety AND
  // liveness must hold in all of them.
  RsmCheckConfig cfg;
  cfg.base.protocol = ProtocolParams::major_can(3);
  cfg.base.n_nodes = 3;
  cfg.base.rsm = small_workload(2, 2, 2);
  cfg.max_k = 2;
  cfg.max_frames = 1;
  cfg.jobs = 4;
  const RsmCheckResult res = run_rsm_check(cfg);
  const long long targets = 3LL * (cfg.window_hi() + 1);
  EXPECT_EQ(res.cases, targets + targets * (targets - 1) / 2);
  EXPECT_EQ(res.violations(), 0) << res.summary();
  EXPECT_EQ(res.timeouts, 0) << res.summary();
  EXPECT_FALSE(res.stopped);
}

TEST(RsmCheck, StandardCanSweepFindsConsensusCounterexample) {
  RsmCheckConfig cfg;
  cfg.base.protocol = ProtocolParams::standard_can();
  cfg.base.n_nodes = 3;
  cfg.base.rsm = small_workload(2, 2, 2);
  cfg.max_k = 2;
  cfg.win_lo = 4;
  cfg.win_hi = 6;
  cfg.max_frames = 1;
  const RsmCheckResult res = run_rsm_check(cfg);
  EXPECT_GT(res.violations(), 0) << res.summary();
  EXPECT_GT(res.log_diverge + res.state_diverge, 0) << res.summary();
  ASSERT_FALSE(res.findings.empty());
  // Findings are replayable scenarios that still reproduce.
  const RsmRunResult replay = run_rsm_scenario(res.findings.front());
  EXPECT_FALSE(replay.rsm.clean() && replay.base.quiesced);
}

TEST(RsmCheck, ResultIndependentOfJobCount) {
  RsmCheckConfig cfg;
  cfg.base.protocol = ProtocolParams::standard_can();
  cfg.base.n_nodes = 2;
  cfg.base.rsm = small_workload(2, 2, 2);
  cfg.max_k = 2;
  cfg.win_lo = 4;
  cfg.win_hi = 6;
  cfg.max_frames = 1;
  cfg.jobs = 1;
  const RsmCheckResult a = run_rsm_check(cfg);
  cfg.jobs = 4;
  const RsmCheckResult b = run_rsm_check(cfg);
  EXPECT_EQ(a.cases, b.cases);
  EXPECT_EQ(a.clean, b.clean);
  EXPECT_EQ(a.summary(), b.summary());
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i], b.findings[i]) << "finding " << i;
  }
}

// --- the consensus fuzzing oracle ------------------------------------------

TEST(RsmFuzz, OracleClassifiesConsensusBreakage) {
  ScenarioSpec spec;
  spec.protocol = ProtocolParams::standard_can();
  spec.n_nodes = 3;
  spec.rsm = small_workload(2, 2, 2);
  spec.flips.push_back(FaultTarget::eof_relative(0, 6, 0));
  spec.flips.push_back(FaultTarget::eof_relative(1, 5, 0));
  const FuzzVerdict v = run_fuzz_case(spec);
  EXPECT_TRUE(v.violation());
  EXPECT_TRUE(v.classes & (fuzz_class_bit(FuzzClass::LogDiverge) |
                           fuzz_class_bit(FuzzClass::StateDiverge)))
      << fuzz_classes_to_string(v.classes) << "\n" << v.detail;
  // Consensus classes outrank the wire-level ones.
  const FuzzClass primary = v.primary();
  EXPECT_TRUE(primary == FuzzClass::Election ||
              primary == FuzzClass::LogDiverge ||
              primary == FuzzClass::StateDiverge ||
              primary == FuzzClass::RsmStall)
      << fuzz_class_name(primary);
}

TEST(RsmFuzz, ClassNamesRoundTrip) {
  std::uint32_t mask = 0;
  std::string err;
  ASSERT_TRUE(parse_fuzz_classes("election,logdiverge,rsmstall", mask, err))
      << err;
  EXPECT_EQ(mask, fuzz_class_bit(FuzzClass::Election) |
                      fuzz_class_bit(FuzzClass::LogDiverge) |
                      fuzz_class_bit(FuzzClass::RsmStall));
  EXPECT_EQ(fuzz_classes_to_string(mask), "election+logdiverge+rsmstall");
  EXPECT_FALSE(parse_fuzz_classes("statediverge,bogus", mask, err));
}

TEST(RsmFuzz, CampaignWithWorkloadIsDeterministicAcrossJobs) {
  FuzzConfig cfg;
  cfg.protocol = ProtocolParams::standard_can();
  cfg.n_nodes = 3;
  cfg.seed = 11;
  cfg.max_execs = 48;
  cfg.batch = 16;
  cfg.workload = small_workload(2, 2, 2);
  cfg.bounds.allow_body = false;

  cfg.jobs = 1;
  const FuzzResult a = run_fuzz(cfg);
  cfg.jobs = 4;
  const FuzzResult b = run_fuzz(cfg);
  EXPECT_EQ(a.stats.execs, b.stats.execs);
  EXPECT_EQ(a.stats.admitted, b.stats.admitted);
  EXPECT_EQ(a.stats.findings, b.stats.findings);
  EXPECT_EQ(a.stats.classes_seen, b.stats.classes_seen);
  EXPECT_EQ(a.stats.signature_bits, b.stats.signature_bits);
  ASSERT_EQ(a.corpus.size(), b.corpus.size());
  for (std::size_t i = 0; i < a.corpus.entries().size(); ++i) {
    EXPECT_EQ(a.corpus.entries()[i].spec, b.corpus.entries()[i].spec);
    // The campaign workload rides on every genome.
    EXPECT_TRUE(a.corpus.entries()[i].spec.rsm.has_value());
  }
}

TEST(RsmFuzz, CanCampaignFindsAndMinimizesConsensusFinding) {
  // Fixed-seed campaign over standard CAN with the consensus workload
  // attached: the mutator must discover an application-level consistency
  // violation, and triage must ddmin it to a replay-verified .scn.
  FuzzConfig cfg;
  cfg.protocol = ProtocolParams::standard_can();
  cfg.n_nodes = 3;
  cfg.seed = 1;
  cfg.max_execs = 600;
  cfg.batch = 32;
  cfg.jobs = 4;
  cfg.workload = small_workload(2, 2, 2);
  cfg.bounds.allow_body = false;
  cfg.bounds.allow_crash = false;
  cfg.bounds.mutate_nodes = false;
  cfg.bounds.max_flips = 3;
  const FuzzResult res = run_fuzz(cfg);
  const std::uint32_t consensus = fuzz_class_bit(FuzzClass::Election) |
                                  fuzz_class_bit(FuzzClass::LogDiverge) |
                                  fuzz_class_bit(FuzzClass::StateDiverge) |
                                  fuzz_class_bit(FuzzClass::RsmStall);
  ASSERT_NE(res.stats.classes_seen & consensus, 0u)
      << fuzz_classes_to_string(res.stats.classes_seen);

  // Keep triage cheap: minimize only the first consensus finding.
  std::vector<FuzzFinding> picked;
  for (const FuzzFinding& f : res.findings) {
    if (f.verdict.classes & consensus) {
      picked.push_back(f);
      break;
    }
  }
  ASSERT_FALSE(picked.empty());
  const std::vector<TriagedFinding> triaged = triage_findings(picked);
  ASSERT_FALSE(triaged.empty());
  const TriagedFinding& t = triaged.front();
  EXPECT_TRUE(t.replay_ok) << export_finding(t, "rsm-test");
  ASSERT_TRUE(t.spec.rsm);
  // The reproducer replays through the full writer -> parser -> runner
  // path with the same verdict.
  const ScenarioSpec parsed = parse_scenario(write_scenario(t.spec));
  EXPECT_EQ(parsed, t.spec);
  EXPECT_NE(run_fuzz_case(parsed).classes & fuzz_class_bit(t.cls), 0u);
}

TEST(RsmFuzz, MajorCanEnvelopeCampaignStaysClean) {
  // The paper's claim, fuzzed end to end: MajorCAN_5 under any <= 5
  // end-game disturbances keeps the replicated state machine consistent
  // AND live.  Any consensus class here is a repo bug or a paper
  // counterexample — both report-worthy.
  FuzzConfig cfg;
  cfg.protocol = ProtocolParams::major_can(5);
  cfg.n_nodes = 3;
  cfg.seed = 17;
  cfg.max_execs = 220;
  cfg.batch = 32;
  cfg.jobs = 4;
  cfg.workload = small_workload(2, 2, 2);
  cfg.bounds.max_flips = 5;  // the envelope
  cfg.bounds.allow_body = false;
  cfg.bounds.allow_crash = false;
  cfg.bounds.mutate_nodes = false;
  const FuzzResult res = run_fuzz(cfg);
  const std::uint32_t consensus = fuzz_class_bit(FuzzClass::Election) |
                                  fuzz_class_bit(FuzzClass::LogDiverge) |
                                  fuzz_class_bit(FuzzClass::StateDiverge) |
                                  fuzz_class_bit(FuzzClass::RsmStall);
  EXPECT_EQ(res.stats.classes_seen & consensus, 0u)
      << fuzz_classes_to_string(res.stats.classes_seen);
  EXPECT_EQ(res.stats.classes_seen & fuzz_class_bit(FuzzClass::Agreement), 0u)
      << fuzz_classes_to_string(res.stats.classes_seen);
}

// --- committed reproducers ---------------------------------------------------

TEST(RsmScenarios, CommittedReproducersReplay) {
  const std::string dir = MCAN_SCENARIO_DIR;
  {
    const ScenarioSpec s =
        load_scenario_file(dir + "/rsm_can_k2_diverge.scn");
    const RsmRunResult r = run_rsm_scenario(s);
    EXPECT_FALSE(r.rsm.clean()) << r.rsm.summary();
    EXPECT_GT(r.rsm.log_mismatches, 0);
    EXPECT_TRUE(r.base.expectation_met) << r.base.expectation_text;
    EXPECT_NE(run_fuzz_case(s).classes & fuzz_class_bit(FuzzClass::LogDiverge),
              0u);
  }
  {
    const ScenarioSpec s =
        load_scenario_file(dir + "/rsm_major5_envelope.scn");
    const RsmRunResult r = run_rsm_scenario(s);
    EXPECT_TRUE(r.within_envelope);
    EXPECT_TRUE(r.rsm.clean()) << r.rsm.summary() << "\n" << r.rsm.detail;
    EXPECT_TRUE(r.base.expectation_met) << r.base.expectation_text;
  }
  {
    const ScenarioSpec s =
        load_scenario_file(dir + "/rsm_major5_recovery.scn");
    const RsmRunResult r = run_rsm_scenario(s);
    EXPECT_TRUE(r.rsm.clean()) << r.rsm.summary() << "\n" << r.rsm.detail;
    EXPECT_EQ(r.rsm.installs, 1);
    EXPECT_TRUE(r.base.expectation_met) << r.base.expectation_text;
  }
}

// --- serve backend ----------------------------------------------------------

Json parse_json(const std::string& text) {
  Json j;
  std::string err;
  EXPECT_TRUE(Json::parse(text, j, err)) << err << "\n" << text;
  return j;
}

void drive_to_completion(CampaignBackend& b) {
  while (!b.finished()) {
    const std::size_t n = b.plan_round();
    if (n == 0) break;
    for (std::size_t i = 0; i < n; ++i) b.execute_slot(i);
    b.merge_round();
  }
}

TEST(RsmServe, BackendMatchesLocalRunByteForByte) {
  const Json spec = parse_json(
      R"({"backend":"rsm","protocol":"can","nodes":3,"seed":7,)"
      R"("max_execs":48,"batch":16,"commands":2,"payload":2,"k":2})");
  std::string error;
  std::unique_ptr<CampaignBackend> backend = make_backend(spec, error);
  ASSERT_TRUE(backend) << error;
  EXPECT_STREQ(backend->kind(), "rsm");
  drive_to_completion(*backend);
  const std::string served = backend->result_json();

  FuzzConfig cfg;
  cfg.protocol = ProtocolParams::standard_can();
  cfg.n_nodes = 3;
  cfg.seed = 7;
  cfg.max_execs = 48;
  cfg.batch = 16;
  cfg.jobs = 1;
  cfg.workload = small_workload(2, 2, 2);
  FuzzResult local = run_fuzz(cfg);
  local.stats.elapsed_s = 0;
  const std::string local_json =
      fuzz_stats_json(local.stats, cfg.protocol, cfg.n_nodes, cfg.seed);
  EXPECT_EQ(served, local_json);
}

TEST(RsmServe, CheckpointRestoreContinuesIdentically) {
  const std::string spec_text =
      R"({"backend":"rsm","protocol":"can","nodes":3,"seed":9,)"
      R"("max_execs":64,"batch":16,"commands":2,"payload":2,"k":2})";
  const Json spec = parse_json(spec_text);
  std::string error;

  std::unique_ptr<CampaignBackend> straight = make_backend(spec, error);
  ASSERT_TRUE(straight) << error;
  drive_to_completion(*straight);
  const std::string want = straight->result_json();

  // Run two rounds, snapshot, restore into a fresh backend, finish there.
  std::unique_ptr<CampaignBackend> first = make_backend(spec, error);
  ASSERT_TRUE(first) << error;
  for (int round = 0; round < 2 && !first->finished(); ++round) {
    const std::size_t n = first->plan_round();
    for (std::size_t i = 0; i < n; ++i) first->execute_slot(i);
    first->merge_round();
  }
  const std::string snapshot = first->checkpoint();
  ASSERT_FALSE(snapshot.empty());

  std::unique_ptr<CampaignBackend> resumed = make_backend(spec, error);
  ASSERT_TRUE(resumed) << error;
  EXPECT_EQ(first->fingerprint(), resumed->fingerprint());
  ASSERT_TRUE(resumed->restore(snapshot));
  drive_to_completion(*resumed);
  EXPECT_EQ(resumed->result_json(), want);
}

TEST(RsmServe, BadSpecsRejected) {
  std::string error;
  EXPECT_FALSE(make_backend(
      parse_json(R"({"backend":"rsm","link":"carrier-pigeon"})"), error));
  EXPECT_NE(error.find("link"), std::string::npos) << error;
  EXPECT_FALSE(make_backend(
      parse_json(R"({"backend":"rsm","nodes":12})"), error));
}

}  // namespace
}  // namespace mcan
