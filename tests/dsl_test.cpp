// Tests for the scenario DSL: parsing, error reporting, execution, and the
// shipped corpus (scenarios/*.scn must all meet their expectations).
#include <gtest/gtest.h>

#include <filesystem>

#include "scenario/dsl.hpp"

namespace mcan {
namespace {

TEST(Dsl, ParsesFullSpec) {
  auto spec = parse_scenario(R"(
# comment
name My scenario
protocol major 7
nodes 6
frame id=0x155 dlc=8
flip node=1 eof=5
flip node=2 eofrel=12 frame=1
flip node=3 body=20
flip node=4 t=99
crash node=0 t=75
expect imo
)");
  EXPECT_EQ(spec.name, "My scenario");
  EXPECT_EQ(spec.protocol.variant, Variant::MajorCan);
  EXPECT_EQ(spec.protocol.m, 7);
  EXPECT_EQ(spec.n_nodes, 6);
  EXPECT_EQ(spec.frame_id, 0x155u);
  EXPECT_EQ(spec.frame_dlc, 8);
  ASSERT_EQ(spec.flips.size(), 4u);
  EXPECT_EQ(spec.flips[0].node, 1u);
  EXPECT_EQ(spec.flips[0].seg, Seg::Eof);
  EXPECT_EQ(spec.flips[1].eof_rel, 12);
  EXPECT_EQ(spec.flips[1].frame_index, 1);
  EXPECT_EQ(spec.flips[2].seg, Seg::Body);
  EXPECT_EQ(spec.flips[3].at, 99u);
  ASSERT_TRUE(spec.crash.has_value());
  EXPECT_EQ(spec.crash->first, 0u);
  EXPECT_EQ(spec.crash->second, 75u);
  EXPECT_EQ(spec.expect, Expectation::Imo);
}

TEST(Dsl, DefaultsAreStandardCan) {
  auto spec = parse_scenario("flip node=1 eof=5\n");
  EXPECT_EQ(spec.protocol.variant, Variant::StandardCan);
  EXPECT_EQ(spec.n_nodes, 5);
  EXPECT_EQ(spec.expect, Expectation::Any);
}

TEST(Dsl, ErrorsCarryLineNumbers) {
  try {
    parse_scenario("protocol can\nbogus directive\n");
    FAIL() << "expected a parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Dsl, RejectsBadInput) {
  EXPECT_THROW(parse_scenario("protocol warp\n"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("nodes 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("flip node=1\n"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("flip eof=5\n"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("crash node=0\n"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("expect maybe\n"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("frame id=zzz\n"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("protocol major 2\n"), std::invalid_argument);
}

TEST(Dsl, RunMatchesHardcodedFig3a) {
  auto spec = parse_scenario(R"(
protocol can
nodes 5
flip node=1 eof=5
flip node=2 eof=5
flip node=0 eof=6
expect imo
)");
  auto res = run_scenario(spec);
  EXPECT_TRUE(res.expectation_met) << res.outcome.summary();
  EXPECT_TRUE(res.outcome.imo());
  EXPECT_EQ(res.outcome.tx_success, 1);

  auto hard = run_fig3(ProtocolParams::standard_can());
  EXPECT_EQ(res.outcome.deliveries, hard.deliveries);
}

TEST(Dsl, ShippedCorpusMeetsExpectations) {
  for (const char* file :
       {"fig1b_double_reception.scn", "fig3a_new_scenario.scn",
        "fig3b_minorcan.scn", "fig5_majorcan.scn", "desync_finding.scn"}) {
    SCOPED_TRACE(file);
    ScenarioSpec spec;
    try {
      spec = load_scenario_file(std::string(MCAN_SCENARIO_DIR "/") + file);
    } catch (const std::invalid_argument& e) {
      FAIL() << e.what();
    }
    auto res = run_scenario(spec);
    EXPECT_TRUE(res.expectation_met)
        << res.expectation_text << " but got: " << res.outcome.summary();
    EXPECT_TRUE(res.outcome.faults_all_fired);
  }
}

TEST(Dsl, MissingFileThrows) {
  EXPECT_THROW(load_scenario_file("/nonexistent/x.scn"), std::invalid_argument);
}

TEST(Dsl, WriterRoundTripsSyntheticSpec) {
  // One of everything: every flip addressing form, a traffic mix, a crash.
  auto spec = parse_scenario(R"(
name round trip
protocol major 7
nodes 6
frame id=0x155 dlc=8
traffic id=0x2a0 dlc=2 node=3
traffic id=0x07f dlc=0 node=5
flip node=1 eof=5
flip node=2 eofrel=12 frame=1
flip node=3 body=20
flip node=4 t=99
crash node=0 t=75
expect imo
)");
  const std::string text = write_scenario(spec);
  EXPECT_EQ(parse_scenario(text), spec) << text;
}

TEST(Dsl, WriterRoundTripsEverySpec) {
  // expect is always emitted, even at its default.
  const ScenarioSpec bare = parse_scenario("nodes 3\n");
  EXPECT_EQ(parse_scenario(write_scenario(bare)), bare);
  // Comments are presentation-only: they don't disturb the parse.
  ScenarioWriteOptions opts;
  opts.header = {"header line", "another"};
  EXPECT_EQ(parse_scenario(write_scenario(bare, opts)), bare);
}

TEST(Dsl, WriterRoundTripsShippedCorpus) {
  // Every committed scenario file must survive parse -> write -> parse
  // exactly: the writer is the one exporter (model checker, fuzzer triage),
  // so drift between it and the parser would corrupt reproducers.
  int seen = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(MCAN_SCENARIO_DIR)) {
    if (entry.path().extension() != ".scn") continue;
    SCOPED_TRACE(entry.path().filename().string());
    const ScenarioSpec spec = load_scenario_file(entry.path().string());
    const std::string text = write_scenario(spec);
    EXPECT_EQ(parse_scenario(text), spec) << text;
    ++seen;
  }
  EXPECT_GE(seen, 7);  // the shipped corpus
}

}  // namespace
}  // namespace mcan
