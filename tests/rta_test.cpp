// Response-time analysis tests: the C bound vs the real encoder, the
// fixed-point recurrence, and — the important one — validation of the
// analytic bound against worst observed latencies on the simulated bus.
#include <gtest/gtest.h>

#include "invariant_gtest.hpp"

#include "app/rta.hpp"
#include "app/scheduler.hpp"
#include "core/network.hpp"
#include "frame/encoder.hpp"
#include "util/rng.hpp"

namespace mcan {
namespace {

TEST(RtaBound, DominatesEveryRealFrame) {
  // The classic worst-case C must upper-bound the encoder's output for
  // every payload (plus the 3 intermission bits it folds in).
  Rng rng(61);
  for (int trial = 0; trial < 300; ++trial) {
    Frame f;
    f.extended = rng.chance(0.3);
    f.id = rng.next_below(f.extended ? kMaxExtId + 1 : kMaxId + 1);
    f.dlc = static_cast<std::uint8_t>(rng.next_below(9));
    for (int i = 0; i < f.dlc; ++i) {
      f.data[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(rng.next_below(256));
    }
    for (int eof : {7, 10}) {
      EXPECT_GE(worst_case_frame_bits(f.dlc, f.extended, eof),
                wire_length(f, eof) + kIntermissionBits)
          << f.to_string();
    }
  }
}

TEST(RtaBound, TightForStuffDenseFrames) {
  // The bound should not be wildly loose: an all-zero frame (dense
  // stuffing) comes within a handful of bits.
  Frame f = Frame::make_blank(0, 8);
  const int bound = worst_case_frame_bits(8, false, 7);
  const int actual = wire_length(f, 7) + kIntermissionBits;
  EXPECT_GE(bound, actual);
  EXPECT_LE(bound - actual, 8);
}

TEST(Rta, PriorityOrderFollowsArbitration) {
  std::vector<RtaMessage> set = {
      {"low", 0x300, false, 2, 5000},
      {"high", 0x050, false, 2, 5000},
      {"ext", 0x050u << kExtIdBits, true, 2, 5000},
  };
  auto rows = response_time_analysis(set, 7);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].msg.name, "high") << "0x050 standard first";
  EXPECT_EQ(rows[1].msg.name, "ext") << "same base id, extended loses";
  EXPECT_EQ(rows[2].msg.name, "low");
}

TEST(Rta, HighestPriorityOnlyBlocksOnLongestLower) {
  std::vector<RtaMessage> set = {
      {"a", 0x100, false, 1, 10000},
      {"b", 0x200, false, 8, 10000},
  };
  auto rows = response_time_analysis(set, 7);
  EXPECT_EQ(rows[0].blocking, rows[1].c_bits);
  EXPECT_EQ(rows[1].blocking, 0);
  EXPECT_TRUE(rows[0].schedulable);
  EXPECT_EQ(rows[0].response,
            static_cast<BitTime>(rows[0].blocking + rows[0].c_bits));
}

TEST(Rta, OverloadedSetIsUnschedulable) {
  // Three 8-byte messages every 150 bits cannot fit (C ~ 135 each).
  std::vector<RtaMessage> set = {
      {"a", 0x100, false, 8, 150},
      {"b", 0x200, false, 8, 150},
      {"c", 0x300, false, 8, 150},
  };
  auto rows = response_time_analysis(set, 7);
  EXPECT_GT(rta_utilisation(rows), 1.0);
  EXPECT_FALSE(rows[2].schedulable);
}

TEST(Rta, MajorCanEofRaisesResponseTimes) {
  std::vector<RtaMessage> set = {
      {"a", 0x100, false, 8, 2000},
      {"b", 0x200, false, 8, 2000},
      {"c", 0x300, false, 8, 2000},
  };
  auto can = response_time_analysis(set, 7);
  auto major = response_time_analysis(set, 10);  // MajorCAN_5
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_GT(major[i].response, can[i].response);
    // The lowest-priority message accumulates 3 bits from every frame
    // ahead of it plus its own: <= 4 * (2m-7) = 12 here.
    EXPECT_LE(major[i].response - can[i].response, 12u);
  }
}

TEST(Rta, SimulatorNeverExceedsTheBound) {
  // Critical-instant experiment: all messages released together, several
  // hyperperiods, per-message worst observed queue->delivery latency must
  // stay within the analytic response time.
  std::vector<RtaMessage> set = {
      {"m1", 0x080, false, 4, 700},
      {"m2", 0x100, false, 8, 900},
      {"m3", 0x180, false, 8, 1100},
      {"m4", 0x200, false, 6, 1300},
  };
  for (int eof : {7, 10}) {
    auto rows = response_time_analysis(set, eof);
    for (const auto& r : rows) ASSERT_TRUE(r.schedulable);

    const ProtocolParams proto = eof == 7 ? ProtocolParams::standard_can()
                                          : ProtocolParams::major_can(5);
    // Senders 0..3, receiver 4.
    Network net(5, proto);
    ScopedInvariants net_invariants(net);
    std::map<std::uint32_t, BitTime> queued_at;
    std::map<std::uint32_t, BitTime> worst;
    net.node(4).add_delivery_handler([&](const Frame& f, BitTime t) {
      auto it = queued_at.find(f.id);
      if (it == queued_at.end()) return;
      worst[f.id] = std::max(worst[f.id], t - it->second);
      queued_at.erase(it);
    });

    std::vector<BitTime> next(set.size(), 0);
    for (BitTime t = 0; t < 9000; ++t) {
      for (std::size_t i = 0; i < set.size(); ++i) {
        if (t == next[static_cast<std::size_t>(i)]) {
          next[i] += set[i].period;
          queued_at[set[i].can_id] = t;
          net.node(static_cast<int>(i))
              .enqueue(Frame::make_blank(set[i].can_id,
                                         static_cast<std::uint8_t>(set[i].dlc)));
        }
      }
      net.sim().step();
    }

    for (const RtaRow& r : rows) {
      ASSERT_TRUE(worst.contains(r.msg.can_id) || queued_at.empty());
      EXPECT_LE(worst[r.msg.can_id], r.response)
          << r.msg.name << " eof=" << eof;
      EXPECT_GT(worst[r.msg.can_id], 0u);
    }
  }
}

}  // namespace
}  // namespace mcan
