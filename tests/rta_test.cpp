// Response-time analysis tests: the C bound vs the real encoder (with the
// Davis et al. stuffing values pinned exactly), the fixed-point
// recurrence, the per-variant error model, the probabilistic layer's
// degeneracy/monotonicity properties, and — the important one —
// validation of the analytic distributions against observed per-instance
// latencies on the simulated bus with injected faults.
#include <gtest/gtest.h>

#include "invariant_gtest.hpp"

#include "analysis/rta/error_model.hpp"
#include "analysis/rta/prob_rta.hpp"
#include "analysis/rta/rta.hpp"
#include "analysis/rta/validate.hpp"
#include "app/scheduler.hpp"
#include "core/network.hpp"
#include "frame/encoder.hpp"
#include "util/rng.hpp"

namespace mcan {
namespace {

TEST(RtaBound, DominatesEveryRealFrame) {
  // The classic worst-case C must upper-bound the encoder's output for
  // every payload (plus the 3 intermission bits it folds in).
  Rng rng(61);
  for (int trial = 0; trial < 300; ++trial) {
    Frame f;
    f.extended = rng.chance(0.3);
    f.id = rng.next_below(f.extended ? kMaxExtId + 1 : kMaxId + 1);
    f.dlc = static_cast<std::uint8_t>(rng.next_below(9));
    for (int i = 0; i < f.dlc; ++i) {
      f.data[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(rng.next_below(256));
    }
    for (int eof : {7, 10}) {
      EXPECT_GE(worst_case_frame_bits(f.dlc, f.extended, eof),
                wire_length(f, eof) + kIntermissionBits)
          << f.to_string();
    }
  }
}

TEST(RtaBound, TightForStuffDenseFrames) {
  // The bound should not be wildly loose: an all-zero frame (dense
  // stuffing) comes within a handful of bits.
  Frame f = Frame::make_blank(0, 8);
  const int bound = worst_case_frame_bits(8, false, 7);
  const int actual = wire_length(f, 7) + kIntermissionBits;
  EXPECT_GE(bound, actual);
  EXPECT_LE(bound - actual, 8);
}

TEST(RtaBound, PinsDavisPublishedValues) {
  // Davis, Burns, Bril & Lukkien (RTS 2007): with the corrected stuffing
  // bound ⌊(g + 8s − 1)/4⌋, a standard frame at EOF = 7 costs exactly
  // 55 + 10s bits and an extended frame 80 + 10s bits, both including
  // the 3-bit intermission.  These are the published C_i values.
  for (int s = 0; s <= 8; ++s) {
    EXPECT_EQ(worst_case_frame_bits(s, false, 7), 55 + 10 * s) << "s=" << s;
    EXPECT_EQ(worst_case_frame_bits(s, true, 7), 80 + 10 * s) << "s=" << s;
  }
}

TEST(RtaBound, TindellRefutedBoundUndercounts) {
  // Tindell's original ⌊(g + 8s)/5⌋ stuffing term is strictly smaller for
  // every payload length — the flaw Davis et al. correct.  An analysis
  // built on it would certify message sets that can miss deadlines.
  for (bool extended : {false, true}) {
    for (int s = 0; s <= 8; ++s) {
      EXPECT_LT(tindell_refuted_frame_bits(s, extended, 7),
                worst_case_frame_bits(s, extended, 7))
          << "s=" << s << " ext=" << extended;
    }
  }
  // Magnitude of the undercount at s = 8 standard: 10 − 8 stuff bits.
  EXPECT_EQ(worst_case_frame_bits(8, false, 7) -
                tindell_refuted_frame_bits(8, false, 7),
            5);
}

TEST(Rta, PriorityOrderFollowsArbitration) {
  std::vector<RtaMessage> set = {
      {"low", 0x300, false, 2, 5000},
      {"high", 0x050, false, 2, 5000},
      {"ext", 0x050u << kExtIdBits, true, 2, 5000},
  };
  auto rows = response_time_analysis(set, 7);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].msg.name, "high") << "0x050 standard first";
  EXPECT_EQ(rows[1].msg.name, "ext") << "same base id, extended loses";
  EXPECT_EQ(rows[2].msg.name, "low");
}

TEST(Rta, HighestPriorityOnlyBlocksOnLongestLower) {
  std::vector<RtaMessage> set = {
      {"a", 0x100, false, 1, 10000},
      {"b", 0x200, false, 8, 10000},
  };
  auto rows = response_time_analysis(set, 7);
  EXPECT_EQ(rows[0].blocking, rows[1].c_bits);
  EXPECT_EQ(rows[1].blocking, 0);
  EXPECT_TRUE(rows[0].schedulable);
  EXPECT_EQ(rows[0].response,
            static_cast<BitTime>(rows[0].blocking + rows[0].c_bits));
}

TEST(Rta, OverloadedSetIsUnschedulable) {
  // Three 8-byte messages every 150 bits cannot fit (C ~ 135 each).
  std::vector<RtaMessage> set = {
      {"a", 0x100, false, 8, 150},
      {"b", 0x200, false, 8, 150},
      {"c", 0x300, false, 8, 150},
  };
  auto rows = response_time_analysis(set, 7);
  EXPECT_GT(rta_utilisation(rows), 1.0);
  EXPECT_FALSE(rows[2].schedulable);
}

TEST(Rta, MajorCanEofRaisesResponseTimes) {
  std::vector<RtaMessage> set = {
      {"a", 0x100, false, 8, 2000},
      {"b", 0x200, false, 8, 2000},
      {"c", 0x300, false, 8, 2000},
  };
  auto can = response_time_analysis(set, 7);
  auto major = response_time_analysis(set, 10);  // MajorCAN_5
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_GT(major[i].response, can[i].response);
    // The lowest-priority message accumulates 3 bits from every frame
    // ahead of it plus its own: <= 4 * (2m-7) = 12 here.
    EXPECT_LE(major[i].response - can[i].response, 12u);
  }
}

TEST(Rta, SaeBenchmarkSetIsSchedulableOnEveryVariant) {
  for (int m : {0, 5, 8}) {
    const ProtocolParams proto =
        m == 0 ? ProtocolParams::standard_can() : ProtocolParams::major_can(m);
    auto rows = response_time_analysis(sae_benchmark_set(), proto.eof_bits());
    for (const RtaRow& r : rows) {
      EXPECT_TRUE(r.schedulable) << r.msg.name << " m=" << m;
    }
    EXPECT_LT(rta_utilisation(rows), 1.0);
  }
}

TEST(Rta, ScalePeriodsSaturatesAndFloors) {
  const auto base = sae_benchmark_set();
  const auto tight = scale_periods(base, 0.5);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(tight[i].period, base[i].period / 2);
  }
  const auto floored = scale_periods(base, 0.1);
  for (const RtaMessage& m : floored) EXPECT_GE(m.period, 64u);
  EXPECT_THROW((void)scale_periods(base, 0.01), std::invalid_argument);
}

TEST(ErrorModel, CanChargesFullRetransmitExposure) {
  MeasuredRates rates;
  rates.ber = 1e-4;
  const VariantErrorModel can(ProtocolParams::standard_can(), rates);
  // CAN has no end-game: no accept-side tolerance anywhere in the frame.
  EXPECT_EQ(can.endgame_extra_bits(), 0);
  EXPECT_EQ(can.endgame_prob(135), 0.0);
  // Error frame: 11-bit flag superposition + 8-bit delimiter + 3 inter.
  EXPECT_EQ(can.error_frame_bits(), 11 + 8 + 3);
  // More exposed bits, more retransmissions.
  EXPECT_GT(can.retransmit_prob(135), can.retransmit_prob(65));
  EXPECT_GT(can.retransmit_prob(135), 0.0);
  EXPECT_LT(can.retransmit_prob(135), 1.0);
}

TEST(ErrorModel, MajorCanEndGameTradesRetransmissionForBits) {
  MeasuredRates rates;
  rates.ber = 1e-4;
  const int m = 5;
  const VariantErrorModel major(ProtocolParams::major_can(m), rates);
  const VariantErrorModel can(ProtocolParams::standard_can(), rates);
  // Worst end-game stretch: extended flags through 3m+4 vs a clean EOF,
  // 2m−2 extra bits; and the error delimiter grows to 2m+1.
  EXPECT_EQ(major.endgame_extra_bits(), 2 * m - 2);
  EXPECT_EQ(major.error_frame_bits(), 11 + (2 * m + 1) + 3);
  // Errors landing in the accept-side EOF sub-field do NOT retransmit:
  // at equal frame length MajorCAN's retransmit probability is lower,
  // compensated by a nonzero end-game probability.
  const int c = 140;
  EXPECT_LT(major.retransmit_prob(c), can.retransmit_prob(c));
  EXPECT_GT(major.endgame_prob(c), 0.0);
}

TEST(ErrorModel, AttemptPmfConservesMass) {
  MeasuredRates rates;
  rates.ber = 1e-3;  // high enough that retransmission atoms matter
  for (int m : {0, 5}) {
    const ProtocolParams proto =
        m == 0 ? ProtocolParams::standard_can() : ProtocolParams::major_can(m);
    const VariantErrorModel model(proto, rates);
    const Pmf pmf = model.attempt_pmf(135, 6);
    EXPECT_NEAR(pmf.total_mass(), 1.0, 1e-12) << "m=" << m;
    EXPECT_EQ(pmf.min_value(), 135u);
    // Clean transmission dominates at these rates.
    EXPECT_GT(pmf.mass_at(135), 0.8);
    // Capping at the clean length pushes everything else to the tail.
    const Pmf capped = model.attempt_pmf(135, 6, 135 + m);
    EXPECT_NEAR(capped.total_mass(), 1.0, 1e-12);
    EXPECT_GT(capped.tail_mass(), 0.0);
  }
}

TEST(ProbRta, ZeroBerDegeneratesToDeterministicAnalysis) {
  // With ber = 0 every attempt distribution is a point mass at C_i and
  // the distributional fixed point must reproduce the classic recurrence
  // exactly: response PMF = delta at R_i, zero miss probability.
  MeasuredRates rates;
  rates.ber = 0;
  for (int m : {0, 5}) {
    const ProtocolParams proto =
        m == 0 ? ProtocolParams::standard_can() : ProtocolParams::major_can(m);
    const ProbRtaResult res = probabilistic_rta(sae_benchmark_set(), proto,
                                                rates);
    EXPECT_TRUE(res.deterministic_schedulable);
    EXPECT_EQ(res.max_miss_prob, 0.0);
    for (const ProbRtaRow& r : res.rows) {
      ASSERT_TRUE(r.response.has_finite_mass()) << r.det.msg.name;
      EXPECT_EQ(r.response.min_value(), r.det.response) << r.det.msg.name;
      EXPECT_EQ(r.response.max_value(), r.det.response) << r.det.msg.name;
      EXPECT_NEAR(r.response.mass_at(r.det.response), 1.0, 1e-12);
      EXPECT_EQ(r.miss_prob, 0.0);
      EXPECT_EQ(r.quantile(0.5), r.det.response);
      EXPECT_EQ(r.quantile(0.9999), r.det.response);
    }
  }
}

TEST(ProbRta, MissProbabilityIsMonotoneInBer) {
  // Scale 0.8 keeps the set deterministically schedulable (util ~0.88)
  // but leaves so little slack that every extra retransmission shows up
  // as miss mass — the regime the probabilistic layer exists for.
  const ProtocolParams proto = ProtocolParams::standard_can();
  const auto set = scale_periods(sae_benchmark_set(), 0.8);
  double prev = -1;
  for (double ber : {0.0, 1e-6, 1e-5, 1e-4, 1e-3}) {
    MeasuredRates rates;
    rates.ber = ber;
    const ProbRtaResult res = probabilistic_rta(set, proto, rates);
    ASSERT_TRUE(res.deterministic_schedulable) << "ber=" << ber;
    EXPECT_GT(res.max_miss_prob, prev) << "ber=" << ber;
    EXPECT_LE(res.max_miss_prob, 1.0) << "ber=" << ber;
    prev = res.max_miss_prob;
  }
  EXPECT_GT(prev, 0.1) << "near-saturated set at 1e-3 must show miss mass";
}

TEST(ProbRta, CalibrationScalesTheEffectiveRate) {
  const ProtocolParams proto = ProtocolParams::standard_can();
  const auto set = scale_periods(sae_benchmark_set(), 0.8);
  MeasuredRates plain;
  plain.ber = 1e-4;
  MeasuredRates calibrated = plain;
  calibrated.calibration = 3.0;
  const auto a = probabilistic_rta(set, proto, plain);
  const auto b = probabilistic_rta(set, proto, calibrated);
  EXPECT_GT(b.max_miss_prob, a.max_miss_prob)
      << "a >1 measured calibration must worsen the analytic verdict";
}

TEST(ProbRta, MajorCanTailIsSmallerAtEqualBer) {
  // MajorCAN pays a deterministic 2m−7 bits per frame but converts
  // accept-side EOF errors into short end-game stretches instead of
  // retransmissions, so at equal ber its fault-induced tail is no worse.
  const auto set = scale_periods(sae_benchmark_set(), 0.85);
  MeasuredRates rates;
  rates.ber = 1e-3;
  const auto can =
      probabilistic_rta(set, ProtocolParams::standard_can(), rates);
  const auto major =
      probabilistic_rta(set, ProtocolParams::major_can(5), rates);
  // Deterministic part: MajorCAN strictly slower (longer frames).
  EXPECT_GT(major.rows.back().det.response, can.rows.back().det.response);
  // Probabilistic part: the lowest-priority stream's miss probability
  // must not blow up relative to CAN's by more than the frame-length
  // ratio (it is typically smaller; allow equality plus slack for the
  // longer exposed frame body).
  EXPECT_LT(major.max_miss_prob, can.max_miss_prob * 1.5);
}

TEST(ProbRta, JsonCarriesProvenance) {
  MeasuredRates rates;
  rates.ber = 1e-5;
  rates.calibration = 1.25;
  rates.source = "BENCH_table1.json row ber=1e-05";
  const auto res = probabilistic_rta(sae_benchmark_set(),
                                     ProtocolParams::standard_can(), rates);
  const std::string j = res.to_json();
  EXPECT_NE(j.find("\"rates_source\": \"BENCH_table1.json row ber=1e-05\""),
            std::string::npos)
      << j;
  EXPECT_NE(j.find("\"calibration\": 1.25"), std::string::npos) << j;
  EXPECT_NE(j.find("\"miss_prob\""), std::string::npos) << j;
}

TEST(Rta, SimulatorNeverExceedsTheBound) {
  // Critical-instant experiment: all messages released together, several
  // hyperperiods, per-message worst observed queue->delivery latency must
  // stay within the analytic response time.  Uses the per-instance
  // harness (release time stamped into the payload), which retransmit
  // and backlog churn cannot confuse.
  std::vector<RtaMessage> set = {
      {"m1", 0x080, false, 4, 700},
      {"m2", 0x100, false, 8, 900},
      {"m3", 0x180, false, 8, 1100},
      {"m4", 0x200, false, 6, 1300},
  };
  for (int eof : {7, 10}) {
    auto rows = response_time_analysis(set, eof);
    for (const auto& r : rows) ASSERT_TRUE(r.schedulable);

    const ProtocolParams proto = eof == 7 ? ProtocolParams::standard_can()
                                          : ProtocolParams::major_can(5);
    const SimValidation sim =
        simulate_response_times(set, proto, 0.0, 9000, 1);
    ASSERT_EQ(sim.streams.size(), rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SimStreamObservation& s = sim.streams[i];
      EXPECT_EQ(s.msg.name, rows[i].msg.name);
      EXPECT_GT(s.delivered, 0) << s.msg.name << " eof=" << eof;
      EXPECT_GT(s.worst, 0u);
      EXPECT_LE(s.worst, rows[i].response) << s.msg.name << " eof=" << eof;
      EXPECT_EQ(s.missed, 0) << s.msg.name << " eof=" << eof;
    }
  }
}

TEST(ProbRta, AnalysisBoundsSimulationWithInjectedFaults) {
  // The full validation loop, per variant: analytic response-time
  // quantiles must upper-bound the empirical per-instance quantiles of a
  // long faulty trace.  This is the CI acceptance property behind
  // `mcan-rta validate --expect-bounded`.
  MeasuredRates rates;
  rates.ber = 2e-4;
  const auto set = scale_periods(sae_benchmark_set(), 0.9);
  for (int m : {0, 3, 5}) {
    const ProtocolParams proto =
        m == 0 ? ProtocolParams::standard_can() : ProtocolParams::major_can(m);
    const ProbRtaResult res = probabilistic_rta(set, proto, rates);
    const SimValidation sim = simulate_response_times(
        set, proto, rates.effective_ber(), 120000, 7);
    const auto verdicts = compare_quantiles(res, sim, 0);
    EXPECT_FALSE(verdicts.empty()) << "m=" << m;
    for (const ValidationVerdict& v : verdicts) {
      EXPECT_TRUE(v.ok) << v.stream << " q=" << v.q << " analytic "
                        << v.analytic << " < simulated " << v.simulated
                        << " (m=" << m << ")";
    }
  }
}

TEST(ProbRta, ValidationIsDeterministic) {
  const auto set = sae_benchmark_set();
  const ProtocolParams proto = ProtocolParams::major_can(5);
  const SimValidation a = simulate_response_times(set, proto, 1e-4, 30000, 3);
  const SimValidation b = simulate_response_times(set, proto, 1e-4, 30000, 3);
  ASSERT_EQ(a.streams.size(), b.streams.size());
  for (std::size_t i = 0; i < a.streams.size(); ++i) {
    EXPECT_EQ(a.streams[i].latencies, b.streams[i].latencies);
  }
}

}  // namespace
}  // namespace mcan
