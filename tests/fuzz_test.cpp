// Tests for the coverage-guided fuzzing subsystem (src/fuzz/): signatures,
// oracle classification, mutation bounds, corpus management, ddmin triage,
// and the end-to-end acceptance campaigns — fixed-seed runs that rediscover
// the paper's k=2 IMO counterexamples for CAN and MinorCAN, and a MajorCAN_5
// run restricted to the <= m frame-tail envelope that must come back clean.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "fuzz/engine.hpp"
#include "fuzz/mutate.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/triage.hpp"

namespace mcan {
namespace {

// --- signatures ----------------------------------------------------------

TEST(FuzzSignature, MergeContainsNewBits) {
  Signature a;
  a.set_transition(FsmState::Idle, FsmState::Rx);
  a.set_feature(Signature::kDeliveredAll);
  EXPECT_EQ(a.popcount(), 2);
  EXPECT_EQ(a.fsm_popcount(), 1);

  Signature b;
  b.set_transition(FsmState::Idle, FsmState::Rx);
  b.set_transition(FsmState::Rx, FsmState::Idle);
  EXPECT_EQ(a.new_bits(b), 1);
  EXPECT_FALSE(a.contains(b));

  EXPECT_EQ(a.merge(b), 1);
  EXPECT_TRUE(a.contains(b));
  EXPECT_EQ(a.new_bits(b), 0);
  EXPECT_EQ(a.merge(b), 0);  // idempotent
  EXPECT_EQ(a.popcount(), 3);
  EXPECT_TRUE(a.feature(Signature::kDeliveredAll));
  EXPECT_FALSE(a.feature(Signature::kDeliveredNone));
  EXPECT_FALSE(a.to_hex().empty());
}

TEST(FuzzSignature, ScopedSinkCapturesTransitions) {
  // A clean run must light up FSM transition bits and the variant feature.
  const auto spec = seed_scenario(ProtocolParams::standard_can(), 3);
  const FuzzVerdict v = run_fuzz_case(spec);
  EXPECT_EQ(v.classes, 0u) << v.detail;
  EXPECT_GT(v.sig.fsm_popcount(), 0);
  EXPECT_TRUE(v.sig.feature(Signature::kVariantBase +
                            static_cast<int>(Variant::StandardCan)));
  EXPECT_TRUE(v.sig.feature(Signature::kDeliveredAll));

  // Without an installed sink, nothing leaks between runs: a second capture
  // sees the same bits, not an accumulation.
  const FuzzVerdict v2 = run_fuzz_case(spec);
  EXPECT_EQ(v.sig, v2.sig);
}

// --- class names and parsing ---------------------------------------------

TEST(FuzzOracle, ParseClasses) {
  std::uint32_t mask = 0;
  std::string err;
  ASSERT_TRUE(parse_fuzz_classes("imo", mask, err)) << err;
  EXPECT_EQ(mask, fuzz_class_bit(FuzzClass::Agreement));
  ASSERT_TRUE(parse_fuzz_classes("double,order", mask, err)) << err;
  EXPECT_EQ(mask,
            fuzz_class_bit(FuzzClass::Duplicate) | fuzz_class_bit(FuzzClass::Order));
  ASSERT_TRUE(parse_fuzz_classes("none", mask, err)) << err;
  EXPECT_EQ(mask, 0u);
  EXPECT_FALSE(parse_fuzz_classes("bogus", mask, err));
  EXPECT_NE(err.find("bogus"), std::string::npos);

  EXPECT_EQ(fuzz_classes_to_string(0), "none");
  EXPECT_EQ(fuzz_classes_to_string(fuzz_class_bit(FuzzClass::Agreement) |
                                   fuzz_class_bit(FuzzClass::Invariant)),
            "agreement+invariant");
}

TEST(FuzzOracle, ClassifiesCommittedCounterexamples) {
  // The model checker's CAN k=2 IMO certificate is an Agreement finding.
  auto imo = load_scenario_file(std::string(MCAN_SCENARIO_DIR) +
                                "/modelcheck_can_k2_imo.scn");
  const FuzzVerdict v1 = run_fuzz_case(imo);
  EXPECT_TRUE(v1.classes & fuzz_class_bit(FuzzClass::Agreement)) << v1.detail;
  EXPECT_EQ(v1.primary(), FuzzClass::Agreement);
  EXPECT_FALSE(v1.detail.empty());

  // Fig 1b's double reception is a Duplicate finding.
  auto dbl = load_scenario_file(std::string(MCAN_SCENARIO_DIR) +
                                "/fig1b_double_reception.scn");
  const FuzzVerdict v2 = run_fuzz_case(dbl);
  EXPECT_TRUE(v2.classes & fuzz_class_bit(FuzzClass::Duplicate)) << v2.detail;
}

// --- mutation engine -----------------------------------------------------

TEST(FuzzMutate, SeedScenarioIsCleanAndInBounds) {
  const FuzzBounds b;
  for (auto proto : {ProtocolParams::standard_can(), ProtocolParams::minor_can(),
                     ProtocolParams::major_can(5)}) {
    auto spec = seed_scenario(proto, 3);
    EXPECT_TRUE(scenario_in_bounds(spec, b));
    EXPECT_TRUE(spec.flips.empty());
    const FuzzVerdict v = run_fuzz_case(spec);
    EXPECT_EQ(v.classes, 0u) << v.detail;
  }
}

TEST(FuzzMutate, MutationsStayInBounds) {
  FuzzBounds b;
  b.mutate_protocol = true;  // open the full genome space
  Rng rng(42, 0);
  ScenarioSpec spec = seed_scenario(ProtocolParams::standard_can(), 3);
  for (int i = 0; i < 2000; ++i) {
    spec = mutate_scenario(spec, b, rng);
    ASSERT_TRUE(scenario_in_bounds(spec, b)) << "after mutation " << i;
    ASSERT_NO_THROW(spec.protocol.validate());
    // Canonical round-trip form: every mutated genome is a valid data file.
    ASSERT_EQ(parse_scenario(write_scenario(spec)), spec);
  }
}

TEST(FuzzMutate, EnvelopeBoundsAreRespected) {
  FuzzBounds b;
  b.max_flips = 5;  // MajorCAN_5's tolerance
  b.allow_body = false;
  b.allow_crash = false;
  b.mutate_protocol = false;
  Rng rng(7, 1);
  ScenarioSpec spec = seed_scenario(ProtocolParams::major_can(5), 3);
  for (int i = 0; i < 1000; ++i) {
    spec = mutate_scenario(spec, b, rng);
    ASSERT_LE(spec.flips.size(), 5u);
    ASSERT_FALSE(spec.crash.has_value());
    ASSERT_EQ(spec.protocol.variant, Variant::MajorCan);
    ASSERT_EQ(spec.protocol.m, 5);
    for (const auto& f : spec.flips) {
      ASSERT_FALSE(f.seg.has_value() && *f.seg == Seg::Body)
          << "body flip under allow_body=false";
    }
  }
}

TEST(FuzzMutate, SanitizeIsIdempotent) {
  const FuzzBounds b;
  Rng rng(3, 9);
  ScenarioSpec spec = seed_scenario(ProtocolParams::minor_can(), 4);
  for (int i = 0; i < 500; ++i) {
    spec = mutate_scenario(spec, b, rng);
    ScenarioSpec again = spec;
    sanitize_scenario(again, b);
    ASSERT_EQ(again, spec) << "sanitize moved an already-sanitized genome";
  }
}

// --- corpus --------------------------------------------------------------

TEST(FuzzCorpus, AdmissionRequiresNovelty) {
  Corpus c;
  Signature s1;
  s1.set_feature(Signature::kDeliveredAll);
  const auto spec = seed_scenario(ProtocolParams::standard_can(), 3);
  EXPECT_TRUE(c.admit(spec, s1, 0));
  EXPECT_FALSE(c.admit(spec, s1, 1));  // nothing new
  Signature s2 = s1;
  s2.set_feature(Signature::kRetransmit);
  EXPECT_TRUE(c.admit(spec, s2, 2));
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.accumulated().popcount(), 2);

  Rng rng(1, 0);
  for (int i = 0; i < 10; ++i) {
    (void)c.select(rng);  // never out of range
  }
}

TEST(FuzzCorpus, MinimizeKeepsCoverage) {
  Corpus c;
  const auto spec = seed_scenario(ProtocolParams::standard_can(), 3);
  // Entry 0 covered by entry 2's superset signature; entry 1 unique.
  Signature a, b, ab;
  a.set_feature(Signature::kDeliveredAll);
  b.set_feature(Signature::kDeliveredNone);
  ab.set_feature(Signature::kDeliveredAll);
  ab.set_feature(Signature::kRetransmit);
  EXPECT_TRUE(c.admit(spec, a, 0));
  EXPECT_TRUE(c.admit(spec, b, 1));
  EXPECT_TRUE(c.admit(spec, ab, 2));
  const int before = c.accumulated().popcount();
  EXPECT_EQ(c.minimize(), 1);  // `a` is redundant under `ab`
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.accumulated().popcount(), before);
  Signature covered;
  for (const auto& e : c.entries()) covered.merge(e.sig);
  EXPECT_TRUE(covered.contains(c.accumulated()));
}

TEST(FuzzCorpus, SaveLoadRoundTrip) {
  Corpus c;
  ScenarioSpec s1 = seed_scenario(ProtocolParams::standard_can(), 3);
  ScenarioSpec s2 = s1;
  s2.flips.push_back(FaultTarget::eof_bit(0, 6));
  s2.flips.push_back(FaultTarget::eof_bit(1, 5));
  c.admit(s1, run_fuzz_case(s1).sig, 0);
  c.admit(s2, run_fuzz_case(s2).sig, 1);
  ASSERT_EQ(c.size(), 2u);

  const std::string dir = testing::TempDir() + "fuzz_corpus_rt";
  std::filesystem::remove_all(dir);
  EXPECT_EQ(save_corpus(c, dir), 2);

  Corpus reloaded;
  EXPECT_EQ(load_corpus_dir(reloaded, dir), 2);
  ASSERT_EQ(reloaded.size(), 2u);
  EXPECT_EQ(reloaded.entries()[0].spec, c.entries()[0].spec);
  EXPECT_EQ(reloaded.entries()[1].spec, c.entries()[1].spec);
  EXPECT_EQ(reloaded.accumulated(), c.accumulated());
  std::filesystem::remove_all(dir);

  Corpus empty_dir;
  EXPECT_EQ(load_corpus_dir(empty_dir, dir + "-missing"), 0);
}

// --- triage --------------------------------------------------------------

TEST(FuzzTriage, DdminStripsRedundantGenome) {
  // The Fig 3a IMO core, padded with provably redundant material: a flip
  // during bus idle, a crash long after quiescence, and a third node
  // nothing references once those are gone.
  auto fat = parse_scenario(R"(
protocol can
nodes 3
frame id=0x100 dlc=4
flip node=0 eof=6
flip node=1 eof=5
flip node=1 t=250
crash node=2 t=5000
)");
  ASSERT_TRUE(run_fuzz_case(fat).classes & fuzz_class_bit(FuzzClass::Agreement));

  const ScenarioSpec min = minimize_finding(fat, FuzzClass::Agreement);
  EXPECT_TRUE(run_fuzz_case(min).classes &
              fuzz_class_bit(FuzzClass::Agreement));
  EXPECT_FALSE(min.crash.has_value());
  EXPECT_TRUE(min.traffic.empty());
  EXPECT_EQ(min.n_nodes, 2);
  ASSERT_EQ(min.flips.size(), 2u);
  // Canonical order: sorted by node.  The pattern is the paper's Fig 3a
  // {tx @ EOF+6, rx @ EOF+5} certificate.
  EXPECT_EQ(min.flips[0], FaultTarget::eof_bit(0, 6));
  EXPECT_EQ(min.flips[1], FaultTarget::eof_bit(1, 5));
}

TEST(FuzzTriage, DedupesAcrossGenomeVariants) {
  // Two raw findings that minimize to the same canonical genome collapse
  // into one reproducer carrying both raw counts.
  auto base = parse_scenario(
      "protocol can\nnodes 3\nflip node=0 eof=6\nflip node=1 eof=5\n");
  auto fat = base;
  fat.crash = {{2, 5000}};

  std::vector<FuzzFinding> raw;
  raw.push_back({base, run_fuzz_case(base), 10});
  raw.push_back({fat, run_fuzz_case(fat), 20});
  ASSERT_TRUE(raw[0].verdict.violation());
  ASSERT_TRUE(raw[1].verdict.violation());

  const auto triaged = triage_findings(raw);
  ASSERT_EQ(triaged.size(), 1u);
  EXPECT_EQ(triaged[0].cls, FuzzClass::Agreement);
  EXPECT_EQ(triaged[0].raw_count, 2);
  EXPECT_EQ(triaged[0].exec_index, 10u);
  EXPECT_TRUE(triaged[0].replay_ok);
  // The legacy `expect imo` clause needs >= 2 receivers to describe a
  // delivery split; the 2-node minimized genome keeps the oracle-neutral
  // `expect any` instead.
  EXPECT_EQ(triaged[0].spec.expect, Expectation::Any);

  const std::string text = export_finding(triaged[0], "unit test");
  EXPECT_NE(text.find("replay-verified"), std::string::npos);
  const auto reparsed = parse_scenario(text);
  EXPECT_TRUE(run_fuzz_case(reparsed).classes &
              fuzz_class_bit(FuzzClass::Agreement));
}

// --- acceptance: the ISSUE's fixed-seed campaigns ------------------------

// Shared helper: run a campaign and triage its findings.
struct CampaignOutcome {
  FuzzResult result;
  std::vector<TriagedFinding> triaged;
};

CampaignOutcome run_campaign(const ProtocolParams& proto, std::uint64_t seed,
                             std::uint64_t execs, const FuzzBounds& bounds) {
  FuzzConfig cfg;
  cfg.protocol = proto;
  cfg.n_nodes = 3;
  cfg.seed = seed;
  cfg.max_execs = execs;
  cfg.jobs = 2;
  cfg.bounds = bounds;
  CampaignOutcome out;
  out.result = run_fuzz(cfg);
  out.triaged = triage_findings(out.result.findings);
  return out;
}

// True iff `f` is the paper's k=2 frame-tail IMO: two EOF flips, the
// transmitter's at position 6, a receiver's at position 5, nothing else.
bool is_fig3_certificate(const TriagedFinding& f) {
  if (f.cls != FuzzClass::Agreement || !f.replay_ok) return false;
  const auto& s = f.spec;
  if (s.crash || !s.traffic.empty() || s.flips.size() != 2) return false;
  const auto& a = s.flips[0];
  const auto& b = s.flips[1];
  auto eof_at = [](const FaultTarget& t, NodeId node, int pos) {
    return t == FaultTarget::eof_bit(node, pos);
  };
  // Canonical sort puts the transmitter (node 0) first.
  return eof_at(a, 0, 6) && b.seg == Seg::Eof && b.index == 5 && b.node != 0;
}

TEST(FuzzAcceptance, RediscoversCanImoWithinBudget) {
  auto out = run_campaign(ProtocolParams::standard_can(), 1, 6000, {});
  EXPECT_TRUE(out.result.stats.classes_seen &
              fuzz_class_bit(FuzzClass::Agreement));
  bool found = false;
  for (const auto& f : out.triaged) found = found || is_fig3_certificate(f);
  EXPECT_TRUE(found) << "no Fig 3a-equivalent reproducer among "
                     << out.triaged.size() << " triaged findings";
}

TEST(FuzzAcceptance, RediscoversMinorCanImoWithinBudget) {
  auto out = run_campaign(ProtocolParams::minor_can(), 5, 4000, {});
  EXPECT_TRUE(out.result.stats.classes_seen &
              fuzz_class_bit(FuzzClass::Agreement));
  bool found = false;
  for (const auto& f : out.triaged) found = found || is_fig3_certificate(f);
  EXPECT_TRUE(found) << "no Fig 3b-equivalent reproducer among "
                     << out.triaged.size() << " triaged findings";
}

TEST(FuzzAcceptance, MajorCanCleanInsideEnvelope) {
  // MajorCAN_5 under the paper's fault model: at most m=5 disturbances in
  // the frame-tail window, no mid-frame corruption, no crashes.  The same
  // budget that breaks CAN and MinorCAN must report neither Agreement nor
  // Validity here.
  FuzzBounds envelope;
  envelope.max_flips = 5;
  envelope.allow_body = false;
  envelope.allow_crash = false;
  envelope.mutate_protocol = false;
  auto out = run_campaign(ProtocolParams::major_can(5), 7, 3000, envelope);
  const std::uint32_t headline = fuzz_class_bit(FuzzClass::Agreement) |
                                 fuzz_class_bit(FuzzClass::Validity);
  EXPECT_EQ(out.result.stats.classes_seen & headline, 0u)
      << fuzz_classes_to_string(out.result.stats.classes_seen);
  for (const auto& f : out.triaged) {
    EXPECT_NE(f.cls, FuzzClass::Agreement) << export_finding(f, "test");
    EXPECT_NE(f.cls, FuzzClass::Validity) << export_finding(f, "test");
  }
  // The campaign still exercised the protocol: coverage accumulated.
  EXPECT_GT(out.result.stats.signature_bits, 0);
  EXPECT_GT(out.result.stats.fsm_transitions, 0);
}

}  // namespace
}  // namespace mcan
