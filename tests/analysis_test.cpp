// Tests for the analysis module: the paper's probability model (Table 1)
// and the Atomic Broadcast property checker.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "analysis/prob_model.hpp"
#include "analysis/properties.hpp"
#include "analysis/tagged.hpp"

namespace mcan {
namespace {

TEST(ProbModel, Binomials) {
  EXPECT_DOUBLE_EQ(binom(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binom(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(binom(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(binom(31, 1), 31.0);
  EXPECT_DOUBLE_EQ(binom(31, 2), 465.0);
  EXPECT_DOUBLE_EQ(binom(4, 7), 0.0);
  EXPECT_DOUBLE_EQ(binom(4, -1), 0.0);
}

TEST(ProbModel, BerStarIsBerOverN) {
  ModelParams p;
  p.ber = 3.2e-5;
  p.n_nodes = 32;
  EXPECT_DOUBLE_EQ(p.ber_star(), 1e-6);
}

TEST(ProbModel, FramesPerHourReference) {
  ModelParams p;  // 1 Mbit/s, 90% load, 110-bit frames
  EXPECT_NEAR(p.frames_per_hour(), 0.9e6 / 110 * 3600, 1.0);
}

TEST(ProbModel, Table1MatchesPaperToPrintedPrecision) {
  const auto computed = compute_table1();
  const auto published = published_table1();
  ASSERT_EQ(computed.size(), published.size());
  for (std::size_t i = 0; i < computed.size(); ++i) {
    // The paper prints 3 significant digits; require < 1% relative error.
    EXPECT_NEAR(computed[i].imo_new_per_hour / published[i].imo_new_per_hour,
                1.0, 0.01)
        << "IMOnew row " << i;
    EXPECT_NEAR(
        computed[i].imo_old_star_per_hour / published[i].imo_old_star_per_hour,
        1.0, 0.01)
        << "IMO* row " << i;
  }
}

TEST(ProbModel, NewScenarioDominatesOld) {
  // The dominance ratio shrinks with ber (ber* vs the fixed crash factor):
  // ~2000x at ber=1e-4 down to ~22x at ber=1e-6 — exactly Table 1's shape.
  for (double ber : {1e-4, 1e-5, 1e-6}) {
    ModelParams p;
    p.ber = ber;
    const double ratio =
        p_new_scenario_per_frame(p) / p_old_scenario_per_frame(p);
    EXPECT_GT(ratio, 10.0) << "ber=" << ber;
  }
  ModelParams aggressive;
  aggressive.ber = 1e-4;
  EXPECT_GT(p_new_scenario_per_frame(aggressive) /
                p_old_scenario_per_frame(aggressive),
            1e3);
}

TEST(ProbModel, ValidateAcceptsReferenceParameters) {
  ModelParams p;  // the Table-1 defaults
  EXPECT_NO_THROW(p.validate());
}

TEST(ProbModel, ValidateRejectsBadParameters) {
  const auto expect_reject = [](auto mutate) {
    ModelParams p;
    mutate(p);
    EXPECT_THROW(p.validate(), std::invalid_argument);
    // The evaluators must refuse the same configuration.
    EXPECT_THROW((void)p_new_scenario_per_frame(p), std::invalid_argument);
    EXPECT_THROW((void)p_old_scenario_per_frame(p), std::invalid_argument);
  };
  expect_reject([](ModelParams& p) { p.ber = 0.0; });
  expect_reject([](ModelParams& p) { p.ber = -1e-5; });
  expect_reject([](ModelParams& p) { p.ber = 1.5; });
  expect_reject([](ModelParams& p) { p.ber = std::nan(""); });
  expect_reject([](ModelParams& p) { p.load = 0.0; });
  expect_reject([](ModelParams& p) { p.load = 1.2; });
  expect_reject([](ModelParams& p) { p.n_nodes = 1; });
  expect_reject([](ModelParams& p) { p.frame_bits = 0; });
  expect_reject([](ModelParams& p) { p.frame_bits = -110; });
  expect_reject([](ModelParams& p) { p.bitrate = 0.0; });
  expect_reject([](ModelParams& p) { p.lambda_per_hour = -1.0; });
  expect_reject([](ModelParams& p) { p.delta_t_s = -5e-3; });
}

TEST(ProbModel, ValidateErrorsNameTheField) {
  ModelParams p;
  p.ber = 0.0;
  try {
    p.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("ber"), std::string::npos);
  }
}

TEST(ProbModel, AboveAerospaceReference) {
  // The paper's point: even at benign ber=1e-6, the new scenarios exceed
  // the 1e-9/h aerospace target.
  ModelParams p;
  p.ber = 1e-6;
  EXPECT_GT(imo_new_per_hour(p), 1e-9);
}

TEST(ProbModel, ScalesRoughlyQuadraticallyInBer) {
  // Expression (4) has two independent hits => ~ber^2 behaviour.
  ModelParams a, b;
  a.ber = 1e-5;
  b.ber = 1e-6;
  const double ratio = p_new_scenario_per_frame(a) / p_new_scenario_per_frame(b);
  EXPECT_NEAR(ratio, 100.0, 2.0);
}

// --- tagged messages ---

TEST(Tagged, RoundTrip) {
  Frame f = make_tagged_frame(0x123, MsgKind::Confirm, MessageKey{7, 0xbeef});
  auto tag = parse_tag(f);
  ASSERT_TRUE(tag.has_value());
  EXPECT_EQ(tag->kind, MsgKind::Confirm);
  EXPECT_EQ(tag->key.source, 7u);
  EXPECT_EQ(tag->key.seq, 0xbeef);
}

TEST(Tagged, RejectsNonTaggedFrames) {
  EXPECT_FALSE(parse_tag(Frame::make_blank(1, 2)).has_value());
  EXPECT_FALSE(parse_tag(Frame::make_remote(1, 4)).has_value());
  Frame f = Frame::make_blank(1, 4);
  f.data[0] = 99;  // unknown kind
  EXPECT_FALSE(parse_tag(f).has_value());
}

TEST(Tagged, NeedsFourBytes) {
  EXPECT_THROW(make_tagged_frame(1, MsgKind::Data, MessageKey{0, 0}, 2),
               std::invalid_argument);
}

// --- property checker ---

DeliveryJournal journal(std::initializer_list<MessageKey> keys) {
  DeliveryJournal j;
  BitTime t = 0;
  for (const MessageKey& k : keys) j.push_back({k, ++t});
  return j;
}

TEST(Properties, CleanRunIsAtomicBroadcast) {
  const MessageKey a{0, 1}, b{1, 1};
  std::map<NodeId, DeliveryJournal> js;
  js[0] = journal({a, b});
  js[1] = journal({a, b});
  js[2] = journal({a, b});
  auto rep = check_atomic_broadcast({{a, 0}, {b, 1}}, js, {0, 1, 2});
  EXPECT_TRUE(rep.atomic_broadcast()) << rep.summary();
}

TEST(Properties, AgreementViolationIsImo) {
  const MessageKey a{0, 1};
  std::map<NodeId, DeliveryJournal> js;
  js[0] = journal({a});
  js[1] = journal({a});
  js[2] = journal({});  // node 2 never got it
  auto rep = check_atomic_broadcast({{a, 0}}, js, {0, 1, 2});
  EXPECT_EQ(rep.agreement_violations, 1);
  EXPECT_FALSE(rep.atomic_broadcast());
}

TEST(Properties, CrashedNodesDoNotCountForAgreement) {
  const MessageKey a{0, 1};
  std::map<NodeId, DeliveryJournal> js;
  js[0] = journal({a});
  js[1] = journal({a});
  js[2] = journal({});  // crashed: excluded from `correct`
  auto rep = check_atomic_broadcast({{a, 0}}, js, {0, 1});
  EXPECT_EQ(rep.agreement_violations, 0);
  EXPECT_TRUE(rep.atomic_broadcast()) << rep.summary();
}

TEST(Properties, DuplicateDeliveriesCounted) {
  const MessageKey a{0, 1};
  std::map<NodeId, DeliveryJournal> js;
  js[0] = journal({a});
  js[1] = journal({a, a, a});
  auto rep = check_atomic_broadcast({{a, 0}}, js, {0, 1});
  EXPECT_EQ(rep.duplicate_deliveries, 2);
  EXPECT_EQ(rep.messages_with_duplicates, 1);
  EXPECT_FALSE(rep.atomic_broadcast());
  EXPECT_TRUE(rep.reliable_broadcast()) << "dups don't break agreement";
}

TEST(Properties, ValidityViolationWhenNobodyDelivers) {
  const MessageKey a{0, 1};
  std::map<NodeId, DeliveryJournal> js;
  js[0] = journal({});
  js[1] = journal({});
  auto rep = check_atomic_broadcast({{a, 0}}, js, {0, 1});
  EXPECT_EQ(rep.validity_violations, 1);
}

TEST(Properties, NoValidityViolationForCrashedSender) {
  const MessageKey a{5, 1};
  std::map<NodeId, DeliveryJournal> js;
  js[0] = journal({});
  js[1] = journal({});
  auto rep = check_atomic_broadcast({{a, 5}}, js, {0, 1});  // 5 not correct
  EXPECT_EQ(rep.validity_violations, 0);
}

TEST(Properties, NontrivialityOnUnknownMessage) {
  const MessageKey ghost{9, 9};
  std::map<NodeId, DeliveryJournal> js;
  js[0] = journal({ghost});
  auto rep = check_atomic_broadcast({}, js, {0});
  EXPECT_EQ(rep.nontriviality_violations, 1);
}

TEST(Properties, OrderInversionsDetected) {
  const MessageKey a{0, 1}, b{1, 1};
  std::map<NodeId, DeliveryJournal> js;
  js[0] = journal({a, b});
  js[1] = journal({b, a});
  auto rep = check_atomic_broadcast({{a, 0}, {b, 1}}, js, {0, 1});
  EXPECT_EQ(rep.order_inversions, 1);
  EXPECT_FALSE(rep.atomic_broadcast());
}

TEST(Properties, FifoViolationDetected) {
  const MessageKey a1{0, 1}, a2{0, 2};
  std::map<NodeId, DeliveryJournal> js;
  js[0] = journal({a1, a2});
  js[1] = journal({a2, a1});  // same source delivered out of order
  auto rep = check_atomic_broadcast({{a1, 0}, {a2, 0}}, js, {0, 1});
  EXPECT_EQ(rep.fifo_violations, 1);
}

TEST(Properties, FifoHoldsAcrossSources) {
  const MessageKey a{0, 5}, b{1, 1};
  std::map<NodeId, DeliveryJournal> js;
  js[0] = journal({a, b});
  js[1] = journal({b, a});  // different sources: total order broken,
                            // per-source FIFO intact
  auto rep = check_atomic_broadcast({{a, 0}, {b, 1}}, js, {0, 1});
  EXPECT_EQ(rep.fifo_violations, 0);
  EXPECT_EQ(rep.order_inversions, 1);
}

TEST(Properties, DuplicatesUseFirstDeliveryForOrder) {
  const MessageKey a{0, 1}, b{1, 1};
  std::map<NodeId, DeliveryJournal> js;
  js[0] = journal({a, b, a});  // duplicate a at the end
  js[1] = journal({a, b});
  auto rep = check_atomic_broadcast({{a, 0}, {b, 1}}, js, {0, 1});
  EXPECT_EQ(rep.order_inversions, 0) << "order judged by first delivery";
}

}  // namespace
}  // namespace mcan
