// Bit-exact conformance battery for the error-signalling machinery:
// flag start positions, flag lengths, delimiter lengths and recovery
// timing, measured from the recorded trace rather than inferred from
// outcomes.  These anchor the simulator to ISO 11898 behaviour.
#include <gtest/gtest.h>

#include "invariant_gtest.hpp"

#include "analysis/tagged.hpp"
#include "core/network.hpp"
#include "fault/scripted.hpp"
#include "frame/encoder.hpp"
#include "scenario/figures.hpp"

namespace mcan {
namespace {

Frame probe_frame() { return Frame::make_blank(0x2a5, 1); }

/// Times at which `node` drove dominant, within [from, to).
std::vector<BitTime> dominant_times(const TraceRecorder& trace, int node,
                                    BitTime from, BitTime to) {
  std::vector<BitTime> out;
  for (const BitRecord& rec : trace.bits()) {
    if (rec.t < from || rec.t >= to) continue;
    if (is_dominant(rec.driven[static_cast<std::size_t>(node)])) {
      out.push_back(rec.t);
    }
  }
  return out;
}

struct Rig {
  Network net{2, ProtocolParams::standard_can()};
  ScopedInvariants invariants{net};
  explicit Rig(int n, const ProtocolParams& p = ProtocolParams::standard_can())
      : net(n, p), invariants(net) {
    net.enable_trace();
  }
};

TEST(Conformance, ErrorFlagStartsOneBitAfterDetection) {
  // Corrupt receiver 1's view of body bit 25 such that it detects an error
  // at some bit t*; its first driven dominant bit outside the ACK slot
  // must be exactly t* + 1 and the flag exactly 6 bits long.
  Rig run(2);
  ScriptedFaults inj;
  FaultTarget t;
  t.node = 1;
  t.seg = Seg::Body;
  t.index = 25;
  inj.add(t);
  run.net.set_injector(inj);
  run.net.node(0).enqueue(probe_frame());
  ASSERT_TRUE(run.net.run_until_quiet());

  BitTime detect = kNoTime;
  for (const Event& e : run.net.log().events()) {
    if (e.node == 1 && e.kind == EventKind::ErrorDetected) {
      detect = e.t;
      break;
    }
  }
  ASSERT_NE(detect, kNoTime);

  auto dom = dominant_times(run.net.trace(), 1, detect, detect + 20);
  ASSERT_GE(dom.size(), 6u);
  EXPECT_EQ(dom[0], detect + 1) << "flag starts the bit after the error";
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(dom[static_cast<std::size_t>(i)], detect + 1 + static_cast<BitTime>(i));
  }
  EXPECT_EQ(dom.size(), 6u) << "active error flag is exactly 6 bits";
}

TEST(Conformance, CrcErrorFlagStartsAtFirstEofBit) {
  // ISO 11898 / paper §5: "whenever a CRC error is detected, transmission
  // of an error frame starts at the bit following the ACK delimiter".
  const auto p = ProtocolParams::standard_can();
  const int crc_bit = find_crc_error_body_bit(p, 3);
  ASSERT_GE(crc_bit, 0);
  Rig run(3, p);
  ScriptedFaults inj;
  FaultTarget t;
  t.node = 1;
  t.seg = Seg::Body;
  t.index = crc_bit;
  inj.add(t);
  run.net.set_injector(inj);
  const Frame f = make_tagged_frame(0x100, MsgKind::Data, MessageKey{0, 1});
  run.net.node(0).enqueue(f);
  ASSERT_TRUE(run.net.run_until_quiet());

  bool crc_error = false;
  BitTime flag_start = kNoTime;
  for (const Event& e : run.net.log().events()) {
    if (e.node == 1 && e.kind == EventKind::ErrorDetected &&
        e.detail == "CRC error") {
      crc_error = true;
    }
    if (e.node == 1 && e.kind == EventKind::ErrorFlagStart &&
        flag_start == kNoTime) {
      flag_start = e.t;
    }
  }
  ASSERT_TRUE(crc_error) << "searched flip must land as a clean CRC error";
  const int eof_start = wire_length(f, p.eof_bits()) - p.eof_bits();
  auto dom = dominant_times(run.net.trace(), 1,
                            static_cast<BitTime>(eof_start),
                            static_cast<BitTime>(eof_start + 10));
  ASSERT_FALSE(dom.empty());
  EXPECT_EQ(dom[0], static_cast<BitTime>(eof_start))
      << "CRC-error flag occupies the first EOF bit";
}

TEST(Conformance, ErrorDelimiterIsEightRecessiveBits) {
  // After a receiver's lone error flag the bus goes recessive; the node
  // must re-enter intermission exactly 8 recessive bits later (1 detected
  // + 7 counted), then be idle 3 bits after that.
  Rig run(2);
  ScriptedFaults inj;
  FaultTarget t;
  t.node = 1;
  t.seg = Seg::Body;
  t.index = 25;
  inj.add(t);
  run.net.set_injector(inj);
  run.net.node(0).enqueue(probe_frame());
  ASSERT_TRUE(run.net.run_until_quiet());
  run.net.sim().run(2);

  // The delimiter is anchored to the bus: the first recessive bit after
  // the superposed flags is delimiter bit 1; intermission starts 8 bits
  // after the last dominant bus bit.  (How long the flags superpose
  // depends on when the transmitter's own bit-error check fires, which is
  // frame-content dependent — so anchor on the bus, not on node 1's flag.)
  BitTime flag_end = kNoTime;
  BitTime last_dominant = kNoTime;
  BitTime interm = kNoTime;
  for (const BitRecord& rec : run.net.trace().bits()) {
    const NodeBitInfo& info = rec.info[1];
    if (info.seg == Seg::ErrorFlag) flag_end = rec.t;
    if (flag_end != kNoTime) {
      if (interm == kNoTime && is_dominant(rec.bus)) last_dominant = rec.t;
      if (interm == kNoTime && info.seg == Seg::Intermission) interm = rec.t;
    }
  }
  ASSERT_NE(flag_end, kNoTime);
  ASSERT_NE(last_dominant, kNoTime);
  ASSERT_NE(interm, kNoTime);
  EXPECT_EQ(interm - last_dominant, 9u)
      << "8 recessive delimiter bits, intermission on the 9th";
}

TEST(Conformance, RetransmissionStartsAfterDelimiterPlusIntermission) {
  Rig run(2);
  ScriptedFaults inj;
  FaultTarget t;
  t.node = 0;
  t.seg = Seg::Body;
  t.index = 25;
  inj.add(t);
  run.net.set_injector(inj);
  run.net.node(0).enqueue(probe_frame());
  ASSERT_TRUE(run.net.run_until_quiet());

  std::vector<BitTime> sofs;
  for (const Event& e : run.net.log().events()) {
    if (e.kind == EventKind::SofSent && e.node == 0) sofs.push_back(e.t);
  }
  ASSERT_EQ(sofs.size(), 2u);

  // Anchor on the bus: the last dominant bit of the error-frame episode is
  // followed by exactly 8 delimiter bits + 3 intermission bits, then SOF.
  BitTime detect = kNoTime;
  for (const Event& e : run.net.log().events()) {
    if (e.node == 0 && e.kind == EventKind::ErrorDetected) {
      detect = e.t;
      break;
    }
  }
  ASSERT_NE(detect, kNoTime);
  BitTime last_dominant = kNoTime;
  for (const BitRecord& rec : run.net.trace().bits()) {
    if (rec.t > detect && rec.t < sofs[1] && is_dominant(rec.bus)) {
      last_dominant = rec.t;
    }
  }
  ASSERT_NE(last_dominant, kNoTime);
  EXPECT_EQ(sofs[1], last_dominant + 8 + 3 + 1);
}

TEST(Conformance, OverloadFlagAfterLastBitRuleIsSixBits) {
  Rig run(3);
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(1, 6));
  run.net.set_injector(inj);
  run.net.node(0).enqueue(probe_frame());
  ASSERT_TRUE(run.net.run_until_quiet());

  BitTime overload = kNoTime;
  for (const Event& e : run.net.log().events()) {
    if (e.node == 1 && e.kind == EventKind::OverloadFlagStart) {
      overload = e.t;
      break;
    }
  }
  ASSERT_NE(overload, kNoTime);
  auto dom = dominant_times(run.net.trace(), 1, overload, overload + 20);
  EXPECT_EQ(dom.size(), 6u);
  EXPECT_EQ(dom[0], overload + 1);
}

TEST(Conformance, MajorCanDelimiterIs2mPlus1) {
  // After a MajorCAN end-game, the fixed delimiter holds exactly 2m+1 bits
  // between the last end-game position and the intermission.
  const int m = 5;
  Rig run(3, ProtocolParams::major_can(m));
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(1, 0));
  run.net.set_injector(inj);
  const Frame f = probe_frame();
  run.net.node(0).enqueue(f);
  ASSERT_TRUE(run.net.run_until_quiet());
  run.net.sim().run(2);

  const int eof_start = wire_length(f, 2 * m) - 2 * m;
  const BitTime endgame_last =
      static_cast<BitTime>(eof_start + 3 * m + 4);  // position 3m+5, 1-based
  BitTime interm = kNoTime;
  for (const BitRecord& rec : run.net.trace().bits()) {
    if (rec.t <= endgame_last) continue;
    if (rec.info[1].seg == Seg::Intermission) {
      interm = rec.t;
      break;
    }
  }
  ASSERT_NE(interm, kNoTime);
  // 2m+1 delimiter bits occupy positions 3m+5 .. 5m+5 (0-based); the first
  // intermission bit is the one after, hence the distance is 2m+2.
  EXPECT_EQ(interm - endgame_last, static_cast<BitTime>(2 * m + 2));
}

TEST(Conformance, SuspendTransmissionDelaysPassiveTransmitter) {
  // An error-passive transmitter waits 8 extra bits after intermission
  // before starting its next frame.
  EventLog log;
  ControllerConfig c0;
  c0.id = 0;
  ControllerConfig c1;
  c1.id = 1;
  CanController tx(c0, log), rx(c1, log);
  Simulator sim;
  sim.attach(tx);
  sim.attach(rx);
  tx.force_error_counters(130, 0);  // error-passive
  EXPECT_EQ(tx.fc_state(), FcState::ErrorPassive);

  tx.enqueue(probe_frame());
  tx.enqueue(probe_frame());
  sim.run(400);

  std::vector<BitTime> sofs;
  for (const Event& e : log.events()) {
    if (e.kind == EventKind::SofSent && e.node == 0) sofs.push_back(e.t);
  }
  ASSERT_EQ(sofs.size(), 2u);
  const int len = wire_length(probe_frame(), 7);
  // Frame 2 must start 8 bits later than the active-case gap (3 bits of
  // intermission) after frame 1's last bit.
  EXPECT_EQ(sofs[1] - sofs[0], static_cast<BitTime>(len + 3 + 8));
}

}  // namespace
}  // namespace mcan
