// Integration tests for the CAN controller FSM on a simulated bus:
// clean exchanges, arbitration, acknowledgement, error signalling,
// retransmission, and fault confinement driven through real traffic.
#include <gtest/gtest.h>

#include "invariant_gtest.hpp"

#include "core/network.hpp"
#include "fault/scripted.hpp"
#include "frame/encoder.hpp"

namespace mcan {
namespace {

Frame test_frame(std::uint32_t id = 0x123, std::uint8_t dlc = 2) {
  Frame f = Frame::make_blank(id, dlc);
  for (int i = 0; i < dlc; ++i) {
    f.data[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(0xa0 + i);
  }
  return f;
}

TEST(Controller, CleanBroadcastDeliversToAllOnce) {
  Network net(4, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  const Frame f = test_frame();
  net.node(0).enqueue(f);
  ASSERT_TRUE(net.run_until_quiet());
  for (int i = 1; i < 4; ++i) {
    ASSERT_EQ(net.deliveries(i).size(), 1u) << "node " << i;
    EXPECT_EQ(net.deliveries(i)[0].frame, f);
  }
  EXPECT_EQ(net.deliveries(0).size(), 0u) << "no self-delivery";
  EXPECT_EQ(net.log().count(EventKind::TxSuccess, 0), 1u);
  EXPECT_EQ(net.log().count(EventKind::SofSent, 0), 1u);
  EXPECT_EQ(net.node(0).tec(), 0);
}

TEST(Controller, CleanBroadcastTimingMatchesWireLength) {
  Network net(2, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  const Frame f = test_frame();
  net.node(0).enqueue(f);
  ASSERT_TRUE(net.run_until_quiet());
  // Delivery happens at the last EOF bit: wire_length - 1 bits after SOF(t=0).
  ASSERT_EQ(net.deliveries(1).size(), 1u);
  EXPECT_EQ(net.deliveries(1)[0].t,
            static_cast<BitTime>(wire_length(f, 7) - 1));
}

TEST(Controller, BackToBackFramesFromOneNode) {
  Network net(3, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  for (int k = 0; k < 5; ++k) net.node(0).enqueue(test_frame(0x100 + k, 1));
  ASSERT_TRUE(net.run_until_quiet());
  for (int i = 1; i < 3; ++i) {
    ASSERT_EQ(net.deliveries(i).size(), 5u);
    for (int k = 0; k < 5; ++k) {
      EXPECT_EQ(net.deliveries(i)[static_cast<std::size_t>(k)].frame.id,
                0x100u + static_cast<std::uint32_t>(k));
    }
  }
}

TEST(Controller, ArbitrationLowestIdWins) {
  Network net(3, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  net.node(0).enqueue(test_frame(0x200));
  net.node(1).enqueue(test_frame(0x100));
  ASSERT_TRUE(net.run_until_quiet());
  // Both frames arrive everywhere (except at their own senders), id 0x100
  // first.
  ASSERT_EQ(net.deliveries(2).size(), 2u);
  EXPECT_EQ(net.deliveries(2)[0].frame.id, 0x100u);
  EXPECT_EQ(net.deliveries(2)[1].frame.id, 0x200u);
  EXPECT_EQ(net.log().count(EventKind::ArbitrationLost, 0), 1u);
  // The loser receives the winner's frame (but never its own).
  ASSERT_EQ(net.deliveries(0).size(), 1u);
  EXPECT_EQ(net.deliveries(0)[0].frame.id, 0x100u);
  ASSERT_EQ(net.deliveries(1).size(), 1u);
  EXPECT_EQ(net.deliveries(1)[0].frame.id, 0x200u);
}

TEST(Controller, ArbitrationManyContenders) {
  const int n = 8;
  Network net(n, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  for (int i = 0; i < n; ++i) {
    net.node(i).enqueue(test_frame(0x100 + static_cast<std::uint32_t>(n - i), 1));
  }
  ASSERT_TRUE(net.run_until_quiet());
  // Everyone receives all frames but its own, in ascending id order.
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(net.deliveries(i).size(), static_cast<std::size_t>(n - 1));
    std::uint32_t prev = 0;
    for (const Delivery& d : net.deliveries(i)) {
      EXPECT_GT(d.frame.id, prev);
      prev = d.frame.id;
    }
  }
}

TEST(Controller, NoAckMeansAckErrorAndEventualBusOff) {
  // A transmitter alone on the bus never gets an ACK: it must signal an ACK
  // error, retransmit, and accumulate TEC +8 per attempt until bus-off.
  Network net(1, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  net.node(0).enqueue(test_frame());
  net.run_until_quiet(60000);
  EXPECT_EQ(net.node(0).fc_state(), FcState::BusOff);
  EXPECT_FALSE(net.node(0).active());
  EXPECT_GE(net.log().count(EventKind::ErrorDetected, 0), 31u);
  EXPECT_EQ(net.log().count(EventKind::TxSuccess, 0), 0u);
}

TEST(Controller, AckDisabledReceiversCauseAckError) {
  FaultConfinementConfig fc;
  fc.enabled = false;  // keep the tx error-active forever
  Network net(3, ProtocolParams::standard_can(), fc);
  // Receivers silent in the ACK slot: the transmitter keeps retrying.
  // (ack_enabled is per-node config; emulate by building a custom net.)
  EventLog log;
  ControllerConfig c0;
  c0.id = 10;
  ControllerConfig c1;
  c1.id = 11;
  c1.ack_enabled = false;
  CanController tx(c0, log), rx(c1, log);
  Simulator sim;
  sim.attach(tx);
  sim.attach(rx);
  tx.enqueue(test_frame());
  sim.run(400);
  EXPECT_EQ(log.count(EventKind::TxSuccess, 10), 0u);
  EXPECT_GT(log.count(EventKind::TxRetransmit, 10), 0u);
  // The receiver still parses the frames but they always die at the ACK
  // slot, so nothing is delivered... actually the rx accepts at EOF: the
  // frame is fine for it; only the transmitter errors out at the ACK slot.
  // The tx error flag then destroys the rx's EOF, so no delivery.
  EXPECT_GT(log.count(EventKind::ErrorDetected, 10), 0u);
}

TEST(Controller, MidFrameCorruptionRetransmitsConsistently) {
  // Flip one receiver's view of a body bit: whatever the detection
  // mechanism (stuff/CRC/form), the error frame globalises it and the
  // retransmission leaves every receiver with exactly one copy.
  for (int body_bit = 16; body_bit < 26; ++body_bit) {
    Network net(4, ProtocolParams::standard_can());
    ScopedInvariants net_invariants(net);
    ScriptedFaults inj;
    FaultTarget t;
    t.node = 1;
    t.seg = Seg::Body;
    t.index = body_bit;
    inj.add(t);
    net.set_injector(inj);
    net.node(0).enqueue(test_frame());
    ASSERT_TRUE(net.run_until_quiet());
    for (int i = 1; i < 4; ++i) {
      EXPECT_EQ(net.deliveries(i).size(), 1u)
          << "node " << i << " with flip at body bit " << body_bit;
    }
  }
}

TEST(Controller, TransmitterBitErrorRetransmits) {
  // Flip the transmitter's own view of a body bit: bit error, flag,
  // retransmission.
  Network net(3, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  FaultTarget t;
  t.node = 0;
  t.seg = Seg::Body;
  t.index = 30;
  inj.add(t);
  net.set_injector(inj);
  net.node(0).enqueue(test_frame());
  ASSERT_TRUE(net.run_until_quiet());
  EXPECT_EQ(net.log().count(EventKind::TxRetransmit, 0), 1u);
  EXPECT_EQ(net.log().count(EventKind::TxSuccess, 0), 1u);
  for (int i = 1; i < 3; ++i) EXPECT_EQ(net.deliveries(i).size(), 1u);
  EXPECT_EQ(net.node(0).tec(), 7) << "+8 on the error, -1 on the success";
}

TEST(Controller, ReceiverErrorBumpsRec) {
  Network net(3, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  FaultTarget t;
  t.node = 1;
  t.seg = Seg::Body;
  t.index = 22;
  inj.add(t);
  net.set_injector(inj);
  net.node(0).enqueue(test_frame());
  ASSERT_TRUE(net.run_until_quiet());
  // +1 on the error (+8 if it was primary), -1 on the successful reception.
  EXPECT_GT(net.node(1).rec(), 0);
}

TEST(Controller, AutoRetransmitOffDropsFrame) {
  EventLog log;
  ControllerConfig c0;
  c0.id = 0;
  c0.auto_retransmit = false;
  ControllerConfig c1;
  c1.id = 1;
  CanController tx(c0, log), rx(c1, log);
  Simulator sim;
  sim.attach(tx);
  sim.attach(rx);
  ScriptedFaults inj;
  FaultTarget t;
  t.node = 0;
  t.seg = Seg::Body;
  t.index = 30;
  inj.add(t);
  sim.set_injector(inj);
  tx.enqueue(test_frame());
  sim.run(400);
  EXPECT_EQ(log.count(EventKind::TxRejected, 0), 1u);
  EXPECT_EQ(log.count(EventKind::TxRetransmit, 0), 0u);
  EXPECT_EQ(log.count(EventKind::TxSuccess, 0), 0u);
  EXPECT_EQ(tx.pending_tx(), 0u);
}

TEST(Controller, LastEofBitRuleAcceptsAndOverloads) {
  // Standard CAN: a receiver seeing dominant at the last EOF bit accepts
  // the frame and signals an overload condition; the transmitter, clean,
  // does not retransmit.
  Network net(3, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(1, 6));
  net.set_injector(inj);
  net.node(0).enqueue(test_frame());
  ASSERT_TRUE(net.run_until_quiet());
  EXPECT_EQ(net.deliveries(1).size(), 1u);
  EXPECT_EQ(net.deliveries(2).size(), 1u);
  EXPECT_EQ(net.log().count(EventKind::SofSent, 0), 1u) << "no retransmission";
  EXPECT_GE(net.log().count(EventKind::OverloadFlagStart), 1u);
}

TEST(Controller, OverloadAtIntermissionDelaysNextFrame) {
  Network net(2, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  FaultTarget t;
  t.node = 1;
  t.seg = Seg::Intermission;
  t.index = 0;
  inj.add(t);
  net.set_injector(inj);
  net.node(0).enqueue(test_frame(0x100));
  net.node(0).enqueue(test_frame(0x101));
  ASSERT_TRUE(net.run_until_quiet());
  EXPECT_GE(net.log().count(EventKind::OverloadFlagStart, 1), 1u);
  ASSERT_EQ(net.deliveries(1).size(), 2u) << "both frames still delivered";
}

TEST(Controller, EnqueueWhileBusBusyWaits) {
  Network net(3, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  net.node(0).enqueue(test_frame(0x100, 8));
  net.sim().run(20);  // frame 0 is mid-flight
  net.node(1).enqueue(test_frame(0x050, 1));
  ASSERT_TRUE(net.run_until_quiet());
  // Node 1's (higher-priority) frame must NOT preempt the ongoing one.
  ASSERT_EQ(net.deliveries(2).size(), 2u);
  EXPECT_EQ(net.deliveries(2)[0].frame.id, 0x100u);
  EXPECT_EQ(net.deliveries(2)[1].frame.id, 0x050u);
}

TEST(Controller, IdenticalFramesMergeOnTheBus) {
  // Two nodes transmitting the same frame at the same bit: every wire bit
  // coincides, both see success.
  Network net(3, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  const Frame f = test_frame(0x0aa, 1);
  net.node(0).enqueue(f);
  net.node(1).enqueue(f);
  ASSERT_TRUE(net.run_until_quiet());
  EXPECT_EQ(net.log().count(EventKind::TxSuccess, 0), 1u);
  EXPECT_EQ(net.log().count(EventKind::TxSuccess, 1), 1u);
  ASSERT_EQ(net.deliveries(2).size(), 1u) << "one frame on the wire";
}

TEST(Controller, MinorCanValidatesProtocol) {
  EXPECT_THROW(ProtocolParams::major_can(2), std::invalid_argument);
  EXPECT_NO_THROW(ProtocolParams::major_can(3));
}

TEST(Controller, MajorCanCleanBroadcast) {
  for (int m : {3, 4, 5, 7}) {
    Network net(4, ProtocolParams::major_can(m));
    ScopedInvariants net_invariants(net);
    const Frame f = test_frame();
    net.node(0).enqueue(f);
    ASSERT_TRUE(net.run_until_quiet()) << "m=" << m;
    for (int i = 1; i < 4; ++i) {
      ASSERT_EQ(net.deliveries(i).size(), 1u) << "m=" << m << " node " << i;
    }
    // Clean-channel cost: exactly 2m-7 bits longer than standard CAN.
    EXPECT_EQ(net.deliveries(1)[0].t,
              static_cast<BitTime>(wire_length(f, 2 * m) - 1));
  }
}

TEST(Controller, MinorCanCleanBroadcast) {
  Network net(4, ProtocolParams::minor_can());
  ScopedInvariants net_invariants(net);
  net.node(0).enqueue(test_frame());
  ASSERT_TRUE(net.run_until_quiet());
  for (int i = 1; i < 4; ++i) EXPECT_EQ(net.deliveries(i).size(), 1u);
}

}  // namespace
}  // namespace mcan
