// Tests for the application substrate: the signal codec (mini-DBC) and the
// periodic scheduler with overrun accounting.
#include <gtest/gtest.h>

#include "invariant_gtest.hpp"

#include "app/scheduler.hpp"
#include "app/signals.hpp"
#include "core/network.hpp"
#include "util/rng.hpp"

namespace mcan {
namespace {

MessageSpec engine_spec() {
  MessageSpec m;
  m.name = "engine_status";
  m.can_id = 0x0c8;
  m.dlc = 8;
  m.signals = {
      {"rpm", 0, 16, 0.25, 0.0, false},
      {"coolant_temp", 16, 8, 1.0, -40.0, false},
      {"throttle", 24, 10, 0.1, 0.0, false},
      {"torque", 34, 12, 0.5, -1024.0, true},
  };
  return m;
}

TEST(Signals, RoundTripAllSignals) {
  const MessageSpec spec = engine_spec();
  SignalValues in{{"rpm", 3050.25},
                  {"coolant_temp", 92.0},
                  {"throttle", 42.7},
                  {"torque", -123.5}};
  const Frame f = encode_signals(spec, in);
  const SignalValues out = decode_signals(spec, f);
  EXPECT_DOUBLE_EQ(out.at("rpm"), 3050.25);
  EXPECT_DOUBLE_EQ(out.at("coolant_temp"), 92.0);
  EXPECT_NEAR(out.at("throttle"), 42.7, 0.05);
  EXPECT_DOUBLE_EQ(out.at("torque"), -123.5);
}

TEST(Signals, MissingSignalsEncodeAsRawZero) {
  const MessageSpec spec = engine_spec();
  const Frame f = encode_signals(spec, {});
  EXPECT_DOUBLE_EQ(decode_signal(*spec.find("rpm"), f), 0.0);
  EXPECT_DOUBLE_EQ(decode_signal(*spec.find("coolant_temp"), f), -40.0)
      << "raw 0 maps through the offset";
}

TEST(Signals, UnknownSignalThrows) {
  EXPECT_THROW(encode_signals(engine_spec(), {{"boost", 1.0}}),
               std::invalid_argument);
}

TEST(Signals, ClampsToRange) {
  const MessageSpec spec = engine_spec();
  // rpm: 16 bits * 0.25 -> max 16383.75
  Frame f = encode_signals(spec, {{"rpm", 99999.0}});
  EXPECT_DOUBLE_EQ(decode_signal(*spec.find("rpm"), f), 16383.75);
  f = encode_signals(spec, {{"rpm", -5.0}});
  EXPECT_DOUBLE_EQ(decode_signal(*spec.find("rpm"), f), 0.0);
  // torque: signed 12 bits * 0.5 - 1024 -> [-2048-..., ...]
  f = encode_signals(spec, {{"torque", -99999.0}});
  EXPECT_DOUBLE_EQ(decode_signal(*spec.find("torque"), f),
                   spec.find("torque")->phys_min());
}

TEST(Signals, SignedSignExtension) {
  SignalSpec s{"v", 5, 7, 1.0, 0.0, true};
  Frame f = Frame::make_blank(1, 8);
  set_signal(s, -3.0, f);
  EXPECT_DOUBLE_EQ(decode_signal(s, f), -3.0);
  set_signal(s, 63.0, f);
  EXPECT_DOUBLE_EQ(decode_signal(s, f), 63.0);
  set_signal(s, -64.0, f);
  EXPECT_DOUBLE_EQ(decode_signal(s, f), -64.0);
}

TEST(Signals, SettingOneSignalPreservesOthers) {
  const MessageSpec spec = engine_spec();
  Frame f = encode_signals(spec, {{"rpm", 1000.0}, {"coolant_temp", 80.0}});
  set_signal(*spec.find("throttle"), 50.0, f);
  EXPECT_DOUBLE_EQ(decode_signal(*spec.find("rpm"), f), 1000.0);
  EXPECT_DOUBLE_EQ(decode_signal(*spec.find("coolant_temp"), f), 80.0);
  EXPECT_NEAR(decode_signal(*spec.find("throttle"), f), 50.0, 0.05);
}

TEST(Signals, FuzzRoundTripRandomSpecs) {
  Rng rng(53);
  for (int trial = 0; trial < 200; ++trial) {
    SignalSpec s;
    s.name = "x";
    s.length = 1 + static_cast<int>(rng.next_below(32));
    s.start_bit = static_cast<int>(rng.next_below(
        static_cast<std::uint32_t>(64 - s.length + 1)));
    s.is_signed = rng.chance(0.5) && s.length > 1;
    s.scale = 1.0;
    const std::int64_t lo = s.raw_min();
    const std::int64_t hi = s.raw_max();
    const auto raw = static_cast<std::int64_t>(
        lo + static_cast<std::int64_t>(
                 rng.next_below(static_cast<std::uint32_t>(
                     std::min<std::int64_t>(hi - lo, 1000000) + 1))));
    Frame f = Frame::make_blank(1, 8);
    set_signal(s, static_cast<double>(raw), f);
    EXPECT_DOUBLE_EQ(decode_signal(s, f), static_cast<double>(raw))
        << "len=" << s.length << " start=" << s.start_bit
        << " signed=" << s.is_signed;
  }
}

TEST(Signals, ValidationCatchesOverlap) {
  MessageSpec m = engine_spec();
  m.signals.push_back({"bad", 8, 10, 1.0, 0.0, false});  // overlaps rpm
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(Signals, ValidationCatchesDlcOverflow) {
  MessageSpec m;
  m.name = "tiny";
  m.can_id = 1;
  m.dlc = 2;
  m.signals = {{"wide", 8, 10, 1.0, 0.0, false}};  // bits 8..17 > 16
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(Signals, ValidationCatchesBadSpecs) {
  EXPECT_THROW((SignalSpec{"", 0, 8, 1.0, 0.0, false}).validate(),
               std::invalid_argument);
  EXPECT_THROW((SignalSpec{"z", 60, 8, 1.0, 0.0, false}).validate(),
               std::invalid_argument);
  EXPECT_THROW((SignalSpec{"z", 0, 0, 1.0, 0.0, false}).validate(),
               std::invalid_argument);
  EXPECT_THROW((SignalSpec{"z", 0, 8, 0.0, 0.0, false}).validate(),
               std::invalid_argument);
}

TEST(Signals, DecodeRejectsWrongFrame) {
  const MessageSpec spec = engine_spec();
  EXPECT_THROW(decode_signals(spec, Frame::make_blank(0x555, 8)),
               std::invalid_argument);
  EXPECT_THROW(decode_signals(spec, Frame::make_blank(spec.can_id, 2)),
               std::invalid_argument);
}

// --- scheduler ---

TEST(Scheduler, ReleasesOnSchedule) {
  Network net(2, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  PeriodicScheduler sched(net.node(0));
  MessageSpec spec = engine_spec();
  int samples = 0;
  sched.add({spec, 500, 0, [&](BitTime) {
               ++samples;
               return SignalValues{{"rpm", 1000.0 + samples}};
             }});
  for (BitTime t = 0; t < 2500; ++t) {
    sched.tick(net.sim().now());
    net.sim().step();
  }
  net.run_until_quiet();
  EXPECT_EQ(sched.releases(), 5);
  EXPECT_EQ(sched.overruns(), 0);
  EXPECT_EQ(net.deliveries(1).size(), 5u);
  // Receiver decodes monotonically increasing rpm samples.
  double prev = 0;
  for (const Delivery& d : net.deliveries(1)) {
    const double rpm = decode_signal(*spec.find("rpm"), d.frame);
    EXPECT_GT(rpm, prev);
    prev = rpm;
  }
}

TEST(Scheduler, PhaseStaggering) {
  Network net(2, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  PeriodicScheduler sched(net.node(0));
  MessageSpec a = engine_spec();
  MessageSpec b = engine_spec();
  b.name = "b";
  b.can_id = 0x0c9;
  sched.add({a, 1000, 0, nullptr});
  sched.add({b, 1000, 400, nullptr});
  for (BitTime t = 0; t < 1200; ++t) {
    sched.tick(net.sim().now());
    net.sim().step();
  }
  net.run_until_quiet();
  ASSERT_EQ(net.deliveries(1).size(), 3u);  // a@0, b@400, a@1000
  EXPECT_EQ(net.deliveries(1)[0].frame.id, 0x0c8u);
  EXPECT_EQ(net.deliveries(1)[1].frame.id, 0x0c9u);
  EXPECT_EQ(net.deliveries(1)[2].frame.id, 0x0c8u);
}

TEST(Scheduler, OverrunSupersedesStaleInstance) {
  // A period far shorter than the frame time forces overruns: the queue
  // must never grow beyond one pending instance and the receiver must see
  // the *latest* sample, not a backlog.
  Network net(2, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  PeriodicScheduler sched(net.node(0));
  MessageSpec spec = engine_spec();
  int sample = 0;
  sched.add({spec, 20, 0, [&](BitTime) {
               ++sample;
               return SignalValues{{"rpm", static_cast<double>(sample)}};
             }});
  for (BitTime t = 0; t < 3000; ++t) {
    sched.tick(net.sim().now());
    net.sim().step();
  }
  net.run_until_quiet();
  EXPECT_GT(sched.overruns(), 0);
  EXPECT_LE(net.node(0).pending_tx(), 1u);
  EXPECT_LT(net.deliveries(1).size(),
            static_cast<std::size_t>(sched.releases()));
  // The last delivered sample is close to the last released one.
  const double last = decode_signal(*spec.find("rpm"),
                                    net.deliveries(1).back().frame);
  EXPECT_GT(last, sample - 10);
}

}  // namespace
}  // namespace mcan
