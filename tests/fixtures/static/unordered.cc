// nondet-unordered-iter fixture (line numbers asserted by the test).
std::unordered_map<int, int> table;
void emit() {
  for (const auto& kv : table) {
    print(kv);
  }
  auto it = table.begin();
  // mcan-analyze: allow(nondet-unordered-iter) order folded through a sort
  for (const auto& kv : table) {
    print(kv);
  }
  // mcan-analyze: allow(nondet-unordered-iter)
  for (const auto& kv : table) {
    print(kv);
  }
  // mcan-analyze: allow(nondet-random) stale entry, suppresses nothing
  int x = 0;
}
