// bad-directive fixture (line 2 asserted by the test).
// mcan-analyze: disallow(nondet-random) not a real verb
int x = 0;
