// signal-safety fixture: violations (lines asserted by the test).
int g_count = 0;
std::atomic<int> g_atomic{0};
void on_bad(int) {
  printf("caught\n");
  g_count = 1;
  g_atomic.store(1);
}
void install() {
  std::signal(SIGTERM, on_bad);
  std::signal(SIGHUP, [](int) {});
}
