// nondet-random fixture: line numbers below are asserted by
// static_analyze_test.cpp -- keep edits line-stable.
int noisy() {
  std::random_device rd;
  int x = rand();
  srand(42);
  return x + mylib::rand();
}
