// signal-safety fixture: handlers the rule must accept.
volatile std::sig_atomic_t g_flag = 0;
std::atomic<bool> g_stop{false};
static_assert(std::atomic<bool>::is_always_lock_free, "lock-free");
void on_sig(int) {
  g_flag = 1;
  g_stop.store(true);
}
int main() {
  std::signal(SIGINT, on_sig);
}
