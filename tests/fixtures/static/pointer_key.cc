// nondet-pointer-key / nondet-hash fixture (lines asserted by the test).
std::map<const Node*, int> by_ptr;
std::set<int> fine;
std::size_t h = std::hash<std::string>{}("k");
std::size_t p = std::hash<void*>{}(q);
