// wallclock fixture (lines asserted by the test).
double now_s() {
  auto t0 = std::chrono::steady_clock::now();
  struct timeval tv;
  gettimeofday(&tv, nullptr);
  return std::time(nullptr);
}
