// Unit tests for the simulation kernel: wired-AND resolution, view-level
// fault injection, crash scheduling, trace recording.
#include <gtest/gtest.h>

#include "fault/scripted.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "util/bitvec.hpp"

namespace mcan {
namespace {

/// Minimal scriptable participant: drives a fixed pattern, records views.
class Probe final : public BusParticipant {
 public:
  Probe(NodeId id, BitVec pattern) : id_(id), pattern_(std::move(pattern)) {}

  Level drive(BitTime t) override {
    return t < pattern_.size() ? pattern_[t] : Level::Recessive;
  }
  void sample(BitTime, Level view) override { seen_.push_back(view); }
  NodeBitInfo bit_info() const override { return info_; }
  NodeId id() const override { return id_; }
  bool active() const override { return active_; }

  void set_info(NodeBitInfo i) { info_ = i; }
  void set_active(bool a) { active_ = a; }

  BitVec seen_;

 private:
  NodeId id_;
  BitVec pattern_;
  NodeBitInfo info_;
  bool active_ = true;
};

TEST(Simulator, WiredAndDominantWins) {
  Probe a(0, BitVec::from_string("drrd"));
  Probe b(1, BitVec::from_string("rrdd"));
  Simulator sim;
  sim.attach(a);
  sim.attach(b);
  sim.run(4);
  EXPECT_EQ(a.seen_.to_string(), "drdd");
  EXPECT_EQ(b.seen_.to_string(), "drdd");
}

TEST(Simulator, DuplicateIdRejected) {
  Probe a(7, {});
  Probe b(7, {});
  Simulator sim;
  sim.attach(a);
  EXPECT_THROW(sim.attach(b), std::invalid_argument);
}

TEST(Simulator, InjectorFlipsOnlyTargetView) {
  Probe a(0, BitVec::from_string("rrrr"));
  Probe b(1, BitVec::from_string("rrrr"));
  Simulator sim;
  sim.attach(a);
  sim.attach(b);
  ScriptedFaults inj;
  inj.add(FaultTarget::at_time(0, 2));
  sim.set_injector(inj);
  sim.run(4);
  EXPECT_EQ(a.seen_.to_string(), "rrdr") << "node 0 sees the flipped bit";
  EXPECT_EQ(b.seen_.to_string(), "rrrr") << "node 1 is unaffected";
  EXPECT_EQ(inj.fired(), 1);
  EXPECT_TRUE(inj.all_fired());
}

TEST(Simulator, InjectorFlipsDominantToRecessive) {
  Probe a(0, BitVec::from_string("d"));
  Probe b(1, BitVec::from_string("r"));
  Simulator sim;
  sim.attach(a);
  sim.attach(b);
  ScriptedFaults inj;
  inj.add(FaultTarget::at_time(1, 0));
  sim.set_injector(inj);
  sim.run(1);
  EXPECT_EQ(a.seen_[0], Level::Dominant);
  EXPECT_EQ(b.seen_[0], Level::Recessive) << "missed dominant (Fig 3a style)";
}

TEST(Simulator, CrashedNodeStopsDrivingAndSampling) {
  Probe a(0, BitVec::from_string("dddd"));
  Probe b(1, BitVec::from_string("rrrr"));
  Simulator sim;
  sim.attach(a);
  sim.attach(b);
  sim.schedule_crash(0, 2);
  sim.run(4);
  EXPECT_EQ(b.seen_.to_string(), "ddrr") << "bus recessive once 0 crashed";
  EXPECT_EQ(a.seen_.size(), 2u) << "crashed node no longer samples";
  EXPECT_TRUE(sim.crashed(0));
  EXPECT_FALSE(sim.crashed(1));
}

TEST(Simulator, CrashUnknownNodeThrows) {
  Probe a(0, {});
  Simulator sim;
  sim.attach(a);
  EXPECT_THROW(sim.schedule_crash(9, 1), std::invalid_argument);
}

TEST(Simulator, InactiveNodeIgnored) {
  Probe a(0, BitVec::from_string("dd"));
  Probe b(1, BitVec::from_string("rr"));
  a.set_active(false);
  Simulator sim;
  sim.attach(a);
  sim.attach(b);
  sim.run(2);
  EXPECT_EQ(b.seen_.to_string(), "rr");
}

TEST(Simulator, RunUntilPredicate) {
  Probe a(0, {});
  Simulator sim;
  sim.attach(a);
  EXPECT_TRUE(sim.run_until([&] { return sim.now() >= 5; }, 100));
  EXPECT_EQ(sim.now(), 5u);
  EXPECT_FALSE(sim.run_until([] { return false; }, 10));
}

TEST(Trace, RecordsBusAndViews) {
  Probe a(0, BitVec::from_string("drr"));
  Probe b(1, BitVec::from_string("rrr"));
  Simulator sim;
  TraceRecorder rec;
  sim.attach(a);
  sim.attach(b);
  sim.add_observer(rec);
  sim.run(3);
  ASSERT_EQ(rec.bits().size(), 3u);
  EXPECT_EQ(rec.bits()[0].bus, Level::Dominant);
  EXPECT_EQ(rec.bits()[1].bus, Level::Recessive);
  EXPECT_EQ(rec.bits()[0].driven[0], Level::Dominant);
  EXPECT_EQ(rec.bits()[0].driven[1], Level::Recessive);
}

TEST(Trace, RenderMarksDriversUppercase) {
  Probe a(0, BitVec::from_string("dr"));
  Probe b(1, BitVec::from_string("rr"));
  Simulator sim;
  TraceRecorder rec;
  sim.attach(a);
  sim.attach(b);
  sim.add_observer(rec);
  sim.run(2);
  std::string out = rec.render({"tx", "rx"});
  EXPECT_NE(out.find("tx"), std::string::npos);
  EXPECT_NE(out.find('D'), std::string::npos) << "driver rendered uppercase";
  EXPECT_NE(out.find('d'), std::string::npos) << "observer sees lowercase d";
}

TEST(Trace, FirstTimeInSeg) {
  Probe a(0, {});
  Simulator sim;
  TraceRecorder rec;
  sim.attach(a);
  sim.add_observer(rec);
  NodeBitInfo info;
  info.seg = Seg::Idle;
  a.set_info(info);
  sim.run(2);
  info.seg = Seg::Eof;
  a.set_info(info);
  sim.run(1);
  EXPECT_EQ(rec.first_time_in_seg(Seg::Eof), 2u);
  EXPECT_EQ(rec.first_time_in_seg(Seg::Sampling), kNoTime);
}

TEST(ScriptedFaults, SegmentTargeting) {
  Probe a(0, BitVec::from_string("rrrr"));
  Simulator sim;
  sim.attach(a);
  NodeBitInfo info;
  info.seg = Seg::Eof;
  info.index = 2;
  info.frame_index = 0;
  a.set_info(info);
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(0, 2, 0));
  sim.set_injector(inj);
  sim.run(1);
  EXPECT_EQ(a.seen_[0], Level::Dominant) << "segment-matched flip fired";
  // Same info again: count=1 means it must not fire twice.
  sim.run(1);
  EXPECT_EQ(a.seen_[1], Level::Recessive);
}

TEST(ScriptedFaults, FrameIndexFilters) {
  Probe a(0, BitVec::from_string("rr"));
  Simulator sim;
  sim.attach(a);
  NodeBitInfo info;
  info.seg = Seg::Eof;
  info.index = 2;
  info.frame_index = 1;  // second frame
  a.set_info(info);
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(0, 2, 0));  // targets the FIRST frame
  sim.set_injector(inj);
  sim.run(1);
  EXPECT_EQ(a.seen_[0], Level::Recessive);
  EXPECT_FALSE(inj.all_fired());
}

}  // namespace
}  // namespace mcan
