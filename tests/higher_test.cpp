// Tests for the higher-level baselines (EDCAN, RELCAN, TOTCAN) over
// standard CAN: failure-free operation, recovery from the Fig. 1c
// transmitter crash, and their documented fate in the paper's new Fig. 3
// scenarios (only EDCAN survives; none of the others do).
#include <gtest/gtest.h>

#include "fault/scripted.hpp"
#include "higher/higher_network.hpp"

namespace mcan {
namespace {

void broadcast_one(HigherNetwork& net, int sender, std::uint16_t seq) {
  net.host(sender).broadcast(MessageKey{static_cast<NodeId>(sender), seq});
}

TEST(Higher, EdcanCleanRunDeliversEverywhereOnce) {
  HigherNetwork net(HigherKind::Edcan, 4);
  broadcast_one(net, 0, 1);
  ASSERT_TRUE(net.run_until_quiet());
  auto rep = net.check();
  EXPECT_TRUE(rep.reliable_broadcast()) << rep.summary();
  EXPECT_EQ(rep.duplicate_deliveries, 0) << "app-level dedup";
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(net.host(i).app_deliveries().size(), 1u) << "node " << i;
  }
  // Eager diffusion: every receiver relays once => 3 extra frames.
  EXPECT_EQ(net.extra_frames(), 3);
}

TEST(Higher, RelcanCleanRunCostsOneConfirm) {
  HigherNetwork net(HigherKind::Relcan, 4);
  broadcast_one(net, 0, 1);
  ASSERT_TRUE(net.run_until_quiet());
  auto rep = net.check();
  EXPECT_TRUE(rep.reliable_broadcast()) << rep.summary();
  EXPECT_EQ(net.extra_frames(), 1) << "just the CONFIRM";
}

TEST(Higher, TotcanCleanRunCostsOneAccept) {
  HigherNetwork net(HigherKind::Totcan, 4);
  broadcast_one(net, 0, 1);
  ASSERT_TRUE(net.run_until_quiet());
  auto rep = net.check();
  EXPECT_TRUE(rep.atomic_broadcast()) << rep.summary();
  EXPECT_EQ(net.extra_frames(), 1) << "just the ACCEPT";
}

TEST(Higher, TotcanOrdersConcurrentSenders) {
  HigherNetwork net(HigherKind::Totcan, 5);
  for (int s = 0; s < 3; ++s) broadcast_one(net, s, 1);
  ASSERT_TRUE(net.run_until_quiet());
  auto rep = net.check();
  EXPECT_TRUE(rep.atomic_broadcast()) << rep.summary();
  EXPECT_EQ(rep.order_inversions, 0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(net.host(i).app_deliveries().size(), 3u);
  }
}

TEST(Higher, ManyMessagesAllProtocolsAgree) {
  for (HigherKind kind :
       {HigherKind::Edcan, HigherKind::Relcan, HigherKind::Totcan}) {
    HigherNetwork net(kind, 4);
    for (std::uint16_t q = 1; q <= 5; ++q) {
      broadcast_one(net, static_cast<int>(q % 3), q);
      net.run(80);
    }
    ASSERT_TRUE(net.run_until_quiet()) << higher_kind_name(kind);
    auto rep = net.check();
    EXPECT_EQ(rep.agreement_violations, 0)
        << higher_kind_name(kind) << ": " << rep.summary();
    EXPECT_EQ(rep.validity_violations, 0) << higher_kind_name(kind);
  }
}

// --- recovery from the Fig. 1c pattern (tx crash after partial delivery) ---

/// Drive the Fig. 1b/1c disturbance against a higher-protocol net: X (nodes
/// 1,2) see a phantom in the last-but-one EOF bit of the DATA frame, and the
/// transmitter crashes before it can retransmit.
template <typename Prep>
AbReport fig1c_against(HigherKind kind, Prep&& prep) {
  HigherNetwork net(kind, 5);
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(1, 5, 0));
  inj.add(FaultTarget::eof_bit(2, 5, 0));
  net.link().set_injector(inj);
  prep(net);
  broadcast_one(net, 0, 1);
  // Crash the transmitter right after the error frame of the first attempt:
  // the DATA frame is ~55 bits; the error frame ends well before bit 110.
  net.link().sim().schedule_crash(0, 75);
  net.run_until_quiet();
  // Node 0 crashed: correct set is 1..4.
  return net.check({1, 2, 3, 4});
}

TEST(Higher, EdcanRecoversFromTransmitterCrash) {
  auto rep = fig1c_against(HigherKind::Edcan, [](HigherNetwork&) {});
  EXPECT_EQ(rep.agreement_violations, 0) << rep.summary();
}

TEST(Higher, RelcanRecoversFromTransmitterCrash) {
  auto rep = fig1c_against(HigherKind::Relcan, [](HigherNetwork&) {});
  EXPECT_EQ(rep.agreement_violations, 0) << rep.summary();
}

TEST(Higher, TotcanStaysConsistentUnderTransmitterCrash) {
  auto rep = fig1c_against(HigherKind::Totcan, [](HigherNetwork&) {});
  // TOTCAN may deliver nowhere (ACCEPT never sent) but never inconsistently.
  EXPECT_EQ(rep.agreement_violations, 0) << rep.summary();
  EXPECT_EQ(rep.order_inversions, 0);
}

// --- the paper's §4 claim: the new scenario defeats RELCAN and TOTCAN ---

/// The Fig. 3a disturbance against the DATA frame of a higher protocol:
/// X rejects, Y accepts, and the (correct!) transmitter sees nothing wrong.
AbReport fig3_against(HigherKind kind) {
  HigherNetwork net(kind, 5);
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(1, 5, 0));
  inj.add(FaultTarget::eof_bit(2, 5, 0));
  inj.add(FaultTarget::eof_bit(0, 6, 0));
  net.link().set_injector(inj);
  broadcast_one(net, 0, 1);
  net.run_until_quiet();
  return net.check();
}

TEST(Higher, EdcanSurvivesTheNewScenario) {
  auto rep = fig3_against(HigherKind::Edcan);
  EXPECT_EQ(rep.agreement_violations, 0) << rep.summary();
}

TEST(Higher, RelcanFailsTheNewScenario) {
  auto rep = fig3_against(HigherKind::Relcan);
  EXPECT_GT(rep.agreement_violations, 0)
      << "RELCAN only recovers on transmitter failure; the transmitter is "
         "correct here: "
      << rep.summary();
}

TEST(Higher, TotcanFailsTheNewScenario) {
  auto rep = fig3_against(HigherKind::Totcan);
  EXPECT_GT(rep.agreement_violations, 0)
      << "TOTCAN's ACCEPT releases the message only where DATA arrived: "
      << rep.summary();
}

TEST(Higher, EdcanDoesNotProvideTotalOrder) {
  // EDCAN relays break ordering: with two concurrent broadcasts and a
  // disturbance pattern delaying one DATA frame, nodes can deliver in
  // different orders.  We reproduce the paper's weaker statement: EDCAN
  // gives Reliable Broadcast; total order is simply not enforced by any
  // mechanism (delivery happens at first copy, whichever that is).
  HigherNetwork net(HigherKind::Edcan, 5);
  ScriptedFaults inj;
  // Nodes 3,4 miss the end of A's DATA frame => they reject it and first
  // meet A through a relay, after B.
  inj.add(FaultTarget::eof_bit(3, 5, 0));
  inj.add(FaultTarget::eof_bit(4, 5, 0));
  inj.add(FaultTarget::eof_bit(0, 6, 0));
  net.link().set_injector(inj);
  broadcast_one(net, 0, 1);
  net.run(20);
  broadcast_one(net, 1, 1);
  net.run_until_quiet();
  auto rep = net.check();
  EXPECT_EQ(rep.agreement_violations, 0) << rep.summary();
  // Order may or may not invert depending on relay timing; the property we
  // assert is that EDCAN never *guarantees* order — verified structurally in
  // the scenario benches.  Here: reliable broadcast holds.
  EXPECT_TRUE(rep.reliable_broadcast()) << rep.summary();
}

}  // namespace
}  // namespace mcan
