// Determinism regression suite: identical seeds must give byte-identical
// results, serial or parallel, run after run.  This is a hard design
// constraint — the CI gates, the committed reproducers and the paper's
// campaign numbers all rely on (seed, budget) fully determining a run.
#include <gtest/gtest.h>

#include <vector>

#include "fuzz/engine.hpp"
#include "fuzz/triage.hpp"
#include "scenario/campaign.hpp"
#include "util/rng.hpp"

namespace mcan {
namespace {

// --- RNG streams ---------------------------------------------------------

TEST(Determinism, RngStreamsReproduce) {
  Rng a(5, 3);
  Rng b(5, 3);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u32(), b.next_u32()) << "draw " << i;
  }
  // Different streams of the same seed diverge.
  Rng c(5, 4);
  Rng d(5, 3);
  bool differs = false;
  for (int i = 0; i < 16 && !differs; ++i) differs = c.next_u32() != d.next_u32();
  EXPECT_TRUE(differs);
  // split() is a pure function of (state, tag).
  Rng e(9, 1);
  Rng f(9, 1);
  Rng es = e.split(7);
  Rng fs = f.split(7);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(es.next_u32(), fs.next_u32());
}

// --- randomized campaigns ------------------------------------------------

TEST(Determinism, EofCampaignRepeatsExactly) {
  CampaignConfig cfg;
  cfg.protocol = ProtocolParams::minor_can();
  cfg.n_nodes = 4;
  cfg.trials = 300;
  cfg.errors = 2;
  cfg.seed = 11;
  const auto r1 = run_eof_campaign(cfg);
  const auto r2 = run_eof_campaign(cfg);
  EXPECT_EQ(r1.imo, r2.imo);
  EXPECT_EQ(r1.double_rx, r2.double_rx);
  EXPECT_EQ(r1.total_loss, r2.total_loss);
  EXPECT_EQ(r1.retransmissions, r2.retransmissions);
  EXPECT_EQ(r1.timeouts, r2.timeouts);
}

TEST(Determinism, EofCampaignParallelMatchesSerial) {
  CampaignConfig cfg;
  cfg.protocol = ProtocolParams::standard_can();
  cfg.n_nodes = 3;
  cfg.trials = 300;
  cfg.errors = 2;
  cfg.seed = 23;
  const auto serial = run_eof_campaign(cfg);
  const auto parallel = run_eof_campaign_parallel(cfg, 4);
  EXPECT_EQ(serial.imo, parallel.imo);
  EXPECT_EQ(serial.double_rx, parallel.double_rx);
  EXPECT_EQ(serial.total_loss, parallel.total_loss);
  EXPECT_EQ(serial.retransmissions, parallel.retransmissions);
  EXPECT_EQ(serial.timeouts, parallel.timeouts);
}

// --- the fuzzer ----------------------------------------------------------

FuzzConfig small_campaign(int jobs) {
  FuzzConfig cfg;
  cfg.protocol = ProtocolParams::standard_can();
  cfg.n_nodes = 3;
  cfg.seed = 13;
  cfg.max_execs = 1500;
  cfg.jobs = jobs;
  return cfg;
}

// Everything observable must match; elapsed_s is wall clock and exempt.
void expect_identical(const FuzzResult& a, const FuzzResult& b) {
  EXPECT_EQ(a.stats.execs, b.stats.execs);
  EXPECT_EQ(a.stats.admitted, b.stats.admitted);
  EXPECT_EQ(a.stats.findings, b.stats.findings);
  EXPECT_EQ(a.stats.evicted, b.stats.evicted);
  EXPECT_EQ(a.stats.classes_seen, b.stats.classes_seen);
  EXPECT_EQ(a.stats.corpus_size, b.stats.corpus_size);
  EXPECT_EQ(a.stats.signature_bits, b.stats.signature_bits);
  EXPECT_EQ(a.stats.fsm_transitions, b.stats.fsm_transitions);

  EXPECT_EQ(a.corpus.accumulated(), b.corpus.accumulated());
  ASSERT_EQ(a.corpus.size(), b.corpus.size());
  for (std::size_t i = 0; i < a.corpus.size(); ++i) {
    const auto& ea = a.corpus.entries()[i];
    const auto& eb = b.corpus.entries()[i];
    ASSERT_EQ(ea.spec, eb.spec) << "corpus entry " << i;
    ASSERT_EQ(ea.sig, eb.sig) << "corpus entry " << i;
    ASSERT_EQ(ea.exec_index, eb.exec_index) << "corpus entry " << i;
    ASSERT_EQ(ea.energy, eb.energy) << "corpus entry " << i;
  }

  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    ASSERT_EQ(a.findings[i].spec, b.findings[i].spec) << "finding " << i;
    ASSERT_EQ(a.findings[i].exec_index, b.findings[i].exec_index);
    ASSERT_EQ(a.findings[i].verdict.classes, b.findings[i].verdict.classes);
    ASSERT_EQ(a.findings[i].verdict.sig, b.findings[i].verdict.sig);
  }
}

TEST(Determinism, FuzzCampaignRepeatsExactly) {
  const auto r1 = run_fuzz(small_campaign(1));
  const auto r2 = run_fuzz(small_campaign(1));
  expect_identical(r1, r2);
}

TEST(Determinism, FuzzCampaignIndependentOfJobs) {
  const auto serial = run_fuzz(small_campaign(1));
  const auto parallel = run_fuzz(small_campaign(4));
  expect_identical(serial, parallel);

  // Triage of identical raw findings is itself deterministic, down to the
  // exported reproducer text.
  const auto t1 = triage_findings(serial.findings);
  const auto t2 = triage_findings(parallel.findings);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(export_finding(t1[i], "determinism"),
              export_finding(t2[i], "determinism"));
    EXPECT_EQ(finding_file_name(t1[i]), finding_file_name(t2[i]));
  }
}

}  // namespace
}  // namespace mcan
