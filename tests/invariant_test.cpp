// The invariant analyzer itself under test: hand-crafted violating traces
// prove each rule actually fires; clean simulations and every shipped
// scenario file prove the rules hold on conforming runs (no
// false positives).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/invariants.hpp"
#include "core/network.hpp"
#include "fault/scripted.hpp"
#include "invariant_gtest.hpp"
#include "scenario/dsl.hpp"
#include "sim/vcd.hpp"

namespace mcan {
namespace {

// --- hand-crafted record stream helpers ---

/// A quiet bus bit: everyone idle, everyone recessive.
BitRecord idle_record(BitTime t, std::size_t n) {
  BitRecord rec;
  rec.t = t;
  rec.bus = Level::Recessive;
  rec.driven.assign(n, Level::Recessive);
  rec.view.assign(n, Level::Recessive);
  rec.info.assign(n, NodeBitInfo{});
  rec.disturbed.assign(n, false);
  rec.active.assign(n, true);
  return rec;
}

/// Set the resolved bus level and keep every (undisturbed) view consistent.
void set_bus(BitRecord& rec, Level l) {
  rec.bus = l;
  for (auto& v : rec.view) v = l;
}

InvariantChecker make_checker(const ProtocolParams& p, std::size_t n,
                              InvariantConfig cfg = {}) {
  return InvariantChecker(std::vector<ProtocolParams>(n, p), nullptr, cfg);
}

// --- each rule fires on a violating trace ---

TEST(InvariantRules, WiredAndMismatchFires) {
  auto c = make_checker(ProtocolParams::major_can(5), 3);
  BitRecord rec = idle_record(0, 3);
  rec.driven[1] = Level::Dominant;  // bus stays recessive: impossible
  c.on_bit(rec);
  EXPECT_EQ(c.report().count(InvariantRule::WiredAnd), 1u);
}

TEST(InvariantRules, ViewInconsistentWithDisturbanceMarkerFires) {
  auto c = make_checker(ProtocolParams::major_can(5), 3);
  BitRecord rec = idle_record(0, 3);
  rec.disturbed[2] = true;  // marked disturbed, yet view equals the bus
  c.on_bit(rec);
  EXPECT_EQ(c.report().count(InvariantRule::WiredAnd), 1u);
}

TEST(InvariantRules, SixIdenticalBitsInStuffedRegionFires) {
  auto c = make_checker(ProtocolParams::standard_can(), 2);
  for (BitTime t = 0; t < 7; ++t) {
    BitRecord rec = idle_record(t, 2);
    rec.info[0].transmitter = true;  // node 0 is pumping the body
    rec.info[0].seg = Seg::Body;
    rec.driven[0] = Level::Dominant;
    set_bus(rec, Level::Dominant);
    c.on_bit(rec);
  }
  // Exactly one report, at the first bit past the legal run of 5.
  EXPECT_EQ(c.report().count(InvariantRule::StuffConformance), 1u);
  ASSERT_FALSE(c.report().violations.empty());
  EXPECT_EQ(c.report().violations[0].t, 5u);
}

TEST(InvariantRules, FiveIdenticalBitsIsLegal) {
  auto c = make_checker(ProtocolParams::standard_can(), 2);
  for (BitTime t = 0; t < 5; ++t) {
    BitRecord rec = idle_record(t, 2);
    rec.info[0].transmitter = true;
    rec.info[0].seg = Seg::Body;
    rec.driven[0] = Level::Dominant;
    set_bus(rec, Level::Dominant);
    c.on_bit(rec);
  }
  EXPECT_TRUE(c.report().clean());
}

TEST(InvariantRules, RecessiveBitInsideActiveFlagFires) {
  auto c = make_checker(ProtocolParams::standard_can(), 2);
  BitRecord rec = idle_record(0, 2);
  rec.info[0].seg = Seg::ErrorFlag;  // in its flag, yet driving recessive
  c.on_bit(rec);
  EXPECT_EQ(c.report().count(InvariantRule::FlagLegality), 1u);
}

TEST(InvariantRules, SevenBitActiveFlagFires) {
  auto c = make_checker(ProtocolParams::standard_can(), 2);
  for (BitTime t = 0; t < 7; ++t) {
    BitRecord rec = idle_record(t, 2);
    rec.info[0].seg = Seg::ErrorFlag;
    rec.driven[0] = Level::Dominant;
    set_bus(rec, Level::Dominant);
    c.on_bit(rec);
  }
  EXPECT_EQ(c.report().count(InvariantRule::FlagLegality), 1u);
}

TEST(InvariantRules, TruncatedActiveFlagFires) {
  auto c = make_checker(ProtocolParams::standard_can(), 2);
  for (BitTime t = 0; t < 4; ++t) {  // only 4 flag bits, then back to idle
    BitRecord rec = idle_record(t, 2);
    rec.info[0].seg = Seg::ErrorFlag;
    rec.driven[0] = Level::Dominant;
    set_bus(rec, Level::Dominant);
    c.on_bit(rec);
  }
  c.on_bit(idle_record(4, 2));
  EXPECT_EQ(c.report().count(InvariantRule::FlagLegality), 1u);
}

TEST(InvariantRules, ErrorPassiveFlagDrivingDominantFires) {
  auto c = make_checker(ProtocolParams::standard_can(), 2);
  BitRecord rec = idle_record(0, 2);
  rec.info[1].seg = Seg::PassiveFlag;
  rec.driven[1] = Level::Dominant;
  set_bus(rec, Level::Dominant);
  c.on_bit(rec);
  EXPECT_EQ(c.report().count(InvariantRule::FlagLegality), 1u);
}

TEST(InvariantRules, MajorEndGameStateUnderStandardCanFires) {
  auto c = make_checker(ProtocolParams::standard_can(), 2);
  BitRecord rec = idle_record(0, 2);
  rec.info[0].seg = Seg::Sampling;  // no such state in CAN
  c.on_bit(rec);
  EXPECT_GE(c.report().count(InvariantRule::EndGameLegality), 1u);
}

TEST(InvariantRules, EofIndexOutsideFieldFires) {
  const auto p = ProtocolParams::major_can(5);
  auto c = make_checker(p, 2);
  BitRecord rec = idle_record(0, 2);
  rec.info[0].seg = Seg::Eof;
  rec.info[0].index = p.eof_bits();  // one past the field
  c.on_bit(rec);
  EXPECT_EQ(c.report().count(InvariantRule::EndGameLegality), 1u);
}

TEST(InvariantRules, SamplingPastVoteWindowFires) {
  const auto p = ProtocolParams::major_can(5);
  auto c = make_checker(p, 2);
  BitRecord rec = idle_record(0, 2);
  rec.info[1].seg = Seg::Sampling;
  rec.info[1].eof_rel = p.sample_end() + 1;  // beyond 3m+4
  c.on_bit(rec);
  EXPECT_EQ(c.report().count(InvariantRule::EndGameLegality), 1u);
}

TEST(InvariantRules, IllegalTecStepFires) {
  auto c = make_checker(ProtocolParams::standard_can(), 2);
  c.on_bit(idle_record(0, 2));  // baseline: TEC 0
  BitRecord rec = idle_record(1, 2);
  rec.info[0].tec = 5;  // +5 is not an ISO 11898 transition
  c.on_bit(rec);
  EXPECT_EQ(c.report().count(InvariantRule::CounterTransition), 1u);
}

TEST(InvariantRules, IsoCounterStepsAreLegalButJumpsAreNot) {
  auto c = make_checker(ProtocolParams::standard_can(), 1);
  // TEC walks +8, +8, -1, -1, reset — all ISO transitions.  REC walks
  // +1, +8, -1, then an illegal +122 jump, then the legal >127 -> 119
  // rebound.  Exactly the jump must be reported.
  const int tecs[] = {0, 8, 16, 15, 14, 0};
  const int recs[] = {0, 1, 9, 8, 130, 119};
  for (std::size_t i = 0; i < std::size(tecs); ++i) {
    BitRecord rec = idle_record(static_cast<BitTime>(i), 1);
    rec.info[0].tec = tecs[i];
    rec.info[0].rec = recs[i];
    c.on_bit(rec);
  }
  EXPECT_EQ(c.report().count(InvariantRule::CounterTransition), 1u);
  ASSERT_EQ(c.report().violations.size(), 1u);
  EXPECT_EQ(c.report().violations[0].t, 4u);
}

TEST(InvariantRules, BusOffNodeDrivingDominantFires) {
  auto c = make_checker(ProtocolParams::standard_can(), 2);
  BitRecord rec = idle_record(0, 2);
  rec.info[0].tec = 256;  // at the bus-off limit...
  rec.driven[0] = Level::Dominant;  // ...yet still driving
  set_bus(rec, Level::Dominant);
  c.on_bit(rec);
  EXPECT_GE(c.report().count(InvariantRule::CounterTransition), 1u);
}

TEST(InvariantRules, IdleFrameCountDisagreementFires) {
  auto c = make_checker(ProtocolParams::major_can(5), 3);
  BitRecord rec = idle_record(0, 3);
  rec.info[0].frame_index = 1;  // node 0 thinks a frame happened...
  rec.info[1].frame_index = 0;  // ...node 1 disagrees, on an idle bus
  rec.info[2].frame_index = 1;
  c.on_bit(rec);
  c.on_bit(rec);  // second idle bit: still only one report per episode
  EXPECT_EQ(c.report().count(InvariantRule::Reconvergence), 1u);
}

TEST(InvariantRules, DisabledRuleStaysSilent) {
  InvariantConfig cfg;
  cfg.wired_and = false;
  auto c = make_checker(ProtocolParams::major_can(5), 2, cfg);
  BitRecord rec = idle_record(0, 2);
  rec.driven[1] = Level::Dominant;
  c.on_bit(rec);
  EXPECT_TRUE(c.report().clean());
}

TEST(InvariantRules, AblationConfigurationRelaxesEndGame) {
  auto p = ProtocolParams::major_can(5);
  p.delimiter = DelimiterMode::EagerCount;  // ablation: no end-game claims
  auto c = make_checker(p, 2);
  BitRecord rec = idle_record(0, 2);
  rec.info[1].seg = Seg::Sampling;
  rec.info[1].eof_rel = p.sample_end() + 3;
  c.on_bit(rec);
  EXPECT_TRUE(c.report().clean());
}

TEST(InvariantRules, ReportCapsRecordedViolations) {
  InvariantConfig cfg;
  cfg.max_recorded = 4;
  auto c = make_checker(ProtocolParams::standard_can(), 2, cfg);
  for (BitTime t = 0; t < 10; ++t) {
    BitRecord rec = idle_record(t, 2);
    rec.driven[0] = Level::Dominant;  // wired-AND mismatch every bit
    c.on_bit(rec);
  }
  EXPECT_EQ(c.report().total, 10u);
  EXPECT_EQ(c.report().violations.size(), 4u);
  EXPECT_FALSE(c.report().summary().empty());
}

// --- no false positives on conforming simulations ---

TEST(InvariantClean, CleanMajorCanRun) {
  Network net(5, ProtocolParams::major_can());
  ScopedInvariants inv(net);
  net.node(0).enqueue(Frame::make_blank(0x155, 2));
  ASSERT_TRUE(net.run_until_quiet());
  for (int i = 0; i < 25; ++i) net.sim().step();  // observe the idle bus
  EXPECT_TRUE(inv.report().clean()) << inv.report().summary();
  EXPECT_GT(inv.report().bits_checked, 0u);
}

TEST(InvariantClean, DisturbedMajorCanRunStaysConformant) {
  // The injector disturbs node views, never the wire: every invariant must
  // survive an m-error end-game.
  Network net(5, ProtocolParams::major_can(5));
  ScopedInvariants inv(net);
  ScriptedFaults inj;
  for (int node = 1; node <= 5 / 2 + 1; ++node) {
    inj.add(FaultTarget::eof_bit(node % 4 + 1, 4 + node));
  }
  net.set_injector(inj);
  net.node(0).enqueue(Frame::make_blank(0x155, 2));
  ASSERT_TRUE(net.run_until_quiet());
  for (int i = 0; i < 25; ++i) net.sim().step();
  EXPECT_TRUE(inv.report().clean()) << inv.report().summary();
}

TEST(InvariantClean, StandardCanImoScenarioViolatesNoInvariant) {
  // Fig 1b (IMO) breaks *agreement*, not the bit-level protocol rules:
  // reconvergence still holds because every node ends on the same frame
  // count (the victim simply never delivered).  The run must lint clean.
  Network net(5, ProtocolParams::standard_can());
  ScopedInvariants inv(net);
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(1, 5));
  inj.add(FaultTarget::eof_bit(0, 6));
  net.set_injector(inj);
  net.node(0).enqueue(Frame::make_blank(0x155, 2));
  ASSERT_TRUE(net.run_until_quiet());
  for (int i = 0; i < 25; ++i) net.sim().step();
  EXPECT_TRUE(inv.report().clean()) << inv.report().summary();
}

// --- every shipped scenario file lints clean ---

class ScenarioLint : public ::testing::TestWithParam<const char*> {};

TEST_P(ScenarioLint, RunsClean) {
  const std::string path =
      std::string(MCAN_SCENARIO_DIR) + "/" + GetParam();
  const ScenarioSpec spec = load_scenario_file(path);
  const DslRunResult run = run_scenario(spec);
  EXPECT_TRUE(run.expectation_met) << run.expectation_text;
  EXPECT_TRUE(run.invariants.clean()) << run.invariants.summary();
  EXPECT_GT(run.invariants.bits_checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllShipped, ScenarioLint,
                         ::testing::Values("fig1b_double_reception.scn",
                                           "fig3a_new_scenario.scn",
                                           "fig3b_minorcan.scn",
                                           "fig5_majorcan.scn",
                                           "desync_finding.scn"),
                         [](const auto& info) {
                           std::string n = info.param;
                           n = n.substr(0, n.find('.'));
                           return n;
                         });

// --- VCD replay path ---

TEST(InvariantVcd, RoundTrippedTraceLintsClean) {
  Network net(4, ProtocolParams::major_can(5));
  net.enable_trace();
  net.node(0).enqueue(Frame::make_blank(0x155, 2));
  ASSERT_TRUE(net.run_until_quiet());

  const VcdTrace replay =
      parse_vcd(trace_to_vcd(net.trace(), net.labels()));
  ASSERT_EQ(replay.labels.size(), 4u);
  ASSERT_EQ(replay.bits.size(), net.trace().bits().size());
  // Bit-exact reconstruction of the record-level signals.
  for (std::size_t i = 0; i < replay.bits.size(); ++i) {
    const BitRecord& a = net.trace().bits()[i];
    const BitRecord& b = replay.bits[i];
    ASSERT_EQ(a.t, b.t);
    ASSERT_EQ(a.bus, b.bus);
    ASSERT_EQ(a.driven, b.driven);
    ASSERT_EQ(a.view, b.view);
    ASSERT_EQ(a.disturbed, b.disturbed);
  }

  InvariantChecker checker({}, nullptr, {});
  for (const BitRecord& rec : replay.bits) checker.on_bit(rec);
  EXPECT_TRUE(checker.report().clean()) << checker.report().summary();
}

TEST(InvariantVcd, CorruptedDumpIsCaught) {
  const char* vcd =
      "$timescale 1us $end\n"
      "$scope module bus $end\n"
      "$var wire 1 ! BUS $end\n"
      "$var wire 1 \" n0.drive $end\n"
      "$var wire 1 # n0.view $end\n"
      "$var wire 1 $ n0.fault $end\n"
      "$upscope $end\n$enddefinitions $end\n"
      "#0\n"
      "1!\n"  // bus recessive...
      "0\"\n"  // ...while the only node drives dominant: impossible
      "1#\n"
      "0$\n"
      "#1\n";
  const VcdTrace trace = parse_vcd(vcd);
  ASSERT_EQ(trace.bits.size(), 1u);
  InvariantChecker checker;
  for (const BitRecord& rec : trace.bits) checker.on_bit(rec);
  EXPECT_EQ(checker.report().count(InvariantRule::WiredAnd), 1u);
}

TEST(InvariantVcd, MalformedVcdThrows) {
  EXPECT_THROW((void)parse_vcd("not a vcd at all"), std::invalid_argument);
  EXPECT_THROW((void)parse_vcd("$var wire 1 ! WEIRD.signal $end\n"
                               "$enddefinitions $end\n"),
               std::invalid_argument);
  EXPECT_THROW((void)read_vcd_file("/nonexistent/file.vcd"),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcan
