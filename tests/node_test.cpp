// Unit tests for the node substrate: the incremental receive parser, the
// transmit engine, and the fault confinement entity.
#include <gtest/gtest.h>

#include "frame/encoder.hpp"
#include "node/fault_confinement.hpp"
#include "node/rx_parser.hpp"
#include "node/tx_engine.hpp"
#include "util/rng.hpp"

namespace mcan {
namespace {

/// Push a transmitter's encoded body through a parser; returns final status.
RxParser::Status feed_body(RxParser& p, const Frame& f) {
  RxParser::Status st = RxParser::Status::InBody;
  for (const TxBit& b : encode_tx(f, kStandardEofBits)) {
    if (b.phase == TxPhase::CrcDelim) break;  // body ends before the tail
    st = p.push(b.level);
    if (st != RxParser::Status::InBody) return st;
  }
  return st;
}

TEST(RxParser, ParsesWhatEncoderProduces) {
  Rng rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    Frame f;
    f.id = rng.next_below(kMaxId + 1);
    f.remote = rng.chance(0.2);
    f.dlc = static_cast<std::uint8_t>(rng.next_below(9));
    if (!f.remote) {
      for (int i = 0; i < f.dlc; ++i) {
        f.data[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(rng.next_below(256));
      }
    }
    RxParser p;
    ASSERT_EQ(feed_body(p, f), RxParser::Status::BodyDone) << f.to_string();
    EXPECT_EQ(p.frame(), f);
    EXPECT_TRUE(p.crc_ok());
  }
}

TEST(RxParser, DetectsCrcErrorOnSingleFlip) {
  Rng rng(29);
  for (int trial = 0; trial < 100; ++trial) {
    Frame f = Frame::make_blank(rng.next_below(kMaxId + 1),
                                static_cast<std::uint8_t>(rng.next_below(9)));
    auto bits = encode_tx(f, kStandardEofBits);
    std::vector<Level> body;
    for (const TxBit& b : bits) {
      if (b.phase == TxPhase::CrcDelim) break;
      body.push_back(b.level);
    }
    const std::size_t at = rng.next_below(static_cast<std::uint32_t>(body.size()));
    body[at] = flip(body[at]);

    RxParser p;
    bool stuff_or_form = false;
    bool done = false;
    for (Level l : body) {
      auto st = p.push(l);
      if (st == RxParser::Status::StuffError ||
          st == RxParser::Status::FormError) {
        stuff_or_form = true;
        break;
      }
      if (st == RxParser::Status::BodyDone) {
        done = true;
        break;
      }
    }
    if (done) {
      EXPECT_FALSE(p.crc_ok()) << "undetected single-bit corruption";
    } else {
      // A flip may legitimately surface as a stuff error, a form error
      // (IDE), or change the frame length so the body is still open; all of
      // those are detected conditions, not silent corruption.
      SUCCEED();
      (void)stuff_or_form;
    }
  }
}

TEST(RxParser, SixEqualBitsIsStuffError) {
  RxParser p;
  p.push(Level::Dominant);  // SOF
  RxParser::Status st = RxParser::Status::InBody;
  for (int i = 0; i < 6; ++i) st = p.push(Level::Dominant);
  EXPECT_EQ(st, RxParser::Status::StuffError);
}

TEST(RxParser, DominantSrrWithExtendedIdeIsFormError) {
  // Bit 12 dominant (would-be SRR) followed by a recessive IDE violates the
  // 2.0B fixed form.
  Frame f = Frame::make_blank(0x2aa, 0);  // alternating: no stuff bits early
  auto bits = encode_tx(f, kStandardEofBits);
  RxParser p;
  // SOF + 11 id = 12 payload bits, no stuffing for the 0x2aa pattern.
  for (int i = 0; i < 12; ++i) p.push(bits[static_cast<std::size_t>(i)].level);
  p.push(Level::Dominant);  // SRR position, dominant
  EXPECT_EQ(p.push(Level::Recessive), RxParser::Status::FormError);
}

TEST(RxParser, ParsesExtendedFrames) {
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> bytes(rng.next_below(9));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
    Frame f = Frame::make_extended(rng.next_below(kMaxExtId + 1), bytes);
    RxParser p;
    ASSERT_EQ(feed_body(p, f), RxParser::Status::BodyDone) << f.to_string();
    EXPECT_EQ(p.frame(), f);
    EXPECT_TRUE(p.crc_ok());
  }
}

TEST(RxParser, ParsesExtendedRemoteFrames) {
  Frame f = Frame::make_extended_remote(0x1234567, 5);
  RxParser p;
  ASSERT_EQ(feed_body(p, f), RxParser::Status::BodyDone);
  EXPECT_TRUE(p.frame().extended);
  EXPECT_TRUE(p.frame().remote);
  EXPECT_EQ(p.frame().id, 0x1234567u);
  EXPECT_TRUE(p.crc_ok());
}

TEST(RxParser, RemoteFrameHasNoData) {
  Frame f = Frame::make_remote(0x155, 3);
  RxParser p;
  ASSERT_EQ(feed_body(p, f), RxParser::Status::BodyDone);
  EXPECT_TRUE(p.frame().remote);
  EXPECT_EQ(p.frame().dlc, 3);
  EXPECT_TRUE(p.crc_ok());
}

TEST(RxParser, ResetClearsState) {
  Frame f = Frame::make_blank(0x01, 1);
  RxParser p;
  ASSERT_EQ(feed_body(p, f), RxParser::Status::BodyDone);
  p.reset();
  EXPECT_FALSE(p.done());
  EXPECT_EQ(p.bits_consumed(), 0);
  ASSERT_EQ(feed_body(p, f), RxParser::Status::BodyDone);
  EXPECT_EQ(p.frame(), f);
}

// --- TxEngine ---

TEST(TxEngine, WalksWholeStream) {
  Frame f = Frame::make_blank(0x321, 2);
  TxEngine e;
  e.start(f, 7);
  int n = 0;
  while (e.in_progress()) {
    ++n;
    e.advance();
  }
  EXPECT_EQ(n, wire_length(f, 7));
}

TEST(TxEngine, EofIndexTracksTail) {
  Frame f = Frame::make_blank(0x321, 0);
  TxEngine e;
  e.start(f, 7);
  const int len = wire_length(f, 7);
  for (int i = 0; i < len; ++i) {
    const int expect = i >= len - 7 ? i - (len - 7) : -1;
    EXPECT_EQ(e.eof_index(), expect) << "at wire bit " << i;
    e.advance();
  }
}

TEST(TxEngine, AbortStopsStream) {
  Frame f = Frame::make_blank(0x321, 0);
  TxEngine e;
  e.start(f, 7);
  e.advance();
  e.abort();
  EXPECT_FALSE(e.in_progress());
}

// --- FaultConfinement ---

TEST(FaultConfinement, StartsErrorActive) {
  FaultConfinement fc{FaultConfinementConfig{}};
  EXPECT_EQ(fc.state(), FcState::ErrorActive);
  EXPECT_EQ(fc.tec(), 0);
  EXPECT_EQ(fc.rec(), 0);
}

TEST(FaultConfinement, TxErrorsDriveTowardsPassiveAndBusOff) {
  FaultConfinement fc{FaultConfinementConfig{}};
  for (int i = 0; i < 15; ++i) fc.on_tx_error();  // 120
  EXPECT_EQ(fc.state(), FcState::ErrorActive);
  fc.on_tx_error();  // 128
  EXPECT_EQ(fc.state(), FcState::ErrorPassive);
  for (int i = 0; i < 16; ++i) fc.on_tx_error();  // 256
  EXPECT_EQ(fc.state(), FcState::BusOff);
  EXPECT_TRUE(fc.off());
}

TEST(FaultConfinement, RxErrorsDrivePassiveButNotBusOff) {
  FaultConfinement fc{FaultConfinementConfig{}};
  for (int i = 0; i < 200; ++i) fc.on_rx_error();
  EXPECT_EQ(fc.state(), FcState::ErrorPassive);
}

TEST(FaultConfinement, SuccessDecrementsAndRecovers) {
  FaultConfinement fc{FaultConfinementConfig{}};
  for (int i = 0; i < 16; ++i) fc.on_tx_error();  // 128, passive
  EXPECT_TRUE(fc.error_passive());
  for (int i = 0; i < 2; ++i) fc.on_tx_success();
  EXPECT_EQ(fc.tec(), 126);
  EXPECT_EQ(fc.state(), FcState::ErrorActive);
  for (int i = 0; i < 200; ++i) fc.on_tx_success();
  EXPECT_EQ(fc.tec(), 0);
}

TEST(FaultConfinement, RecAbove127ResetsOnSuccess) {
  FaultConfinement fc{FaultConfinementConfig{}};
  fc.force_counters(0, 140);
  EXPECT_TRUE(fc.error_passive());
  fc.on_rx_success();
  EXPECT_EQ(fc.rec(), 119);
  EXPECT_EQ(fc.state(), FcState::ErrorActive);
}

TEST(FaultConfinement, PrimaryErrorAddsEight) {
  FaultConfinement fc{FaultConfinementConfig{}};
  fc.on_rx_primary_error();
  EXPECT_EQ(fc.rec(), 8);
}

TEST(FaultConfinement, WarningAt96) {
  FaultConfinement fc{FaultConfinementConfig{}};
  for (int i = 0; i < 12; ++i) fc.on_tx_error();  // 96
  EXPECT_TRUE(fc.warning());
}

TEST(FaultConfinement, WarningSwitchOffPolicy) {
  FaultConfinementConfig cfg;
  cfg.switch_off_at_warning = true;
  FaultConfinement fc{cfg};
  for (int i = 0; i < 12; ++i) fc.on_tx_error();
  EXPECT_EQ(fc.state(), FcState::SwitchedOff);
  EXPECT_TRUE(fc.off());
  // Once off, nothing moves the counters any more.
  fc.on_tx_success();
  EXPECT_EQ(fc.state(), FcState::SwitchedOff);
}

TEST(FaultConfinement, DisabledNeverLeavesActive) {
  FaultConfinementConfig cfg;
  cfg.enabled = false;
  FaultConfinement fc{cfg};
  for (int i = 0; i < 100; ++i) fc.on_tx_error();
  EXPECT_EQ(fc.state(), FcState::ErrorActive);
  EXPECT_EQ(fc.tec(), 0);
  EXPECT_FALSE(fc.warning());
}

}  // namespace
}  // namespace mcan
