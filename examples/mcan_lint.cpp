// mcan-lint: replay scenario files (or parse VCD waveform dumps) through
// the protocol invariant analyzer and report every violation with bit-time
// and node provenance.
//
//     mcan-lint scenarios/*.scn          # full FSM-aware conformance pass
//     mcan-lint trace.vcd                # record-level rules (wired-AND)
//
// Exit status: 0 = all files clean, 1 = violations found, 2 = usage or
// file error.
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/invariants.hpp"
#include "rsm/runner.hpp"
#include "scenario/dsl.hpp"
#include "sim/kernel.hpp"
#include "sim/vcd.hpp"

namespace {

using namespace mcan;

struct Options {
  InvariantConfig cfg;
  bool verbose = false;
  std::vector<std::string> files;
};

void usage(std::FILE* to) {
  std::fputs(
      "usage: mcan-lint [options] <file.scn|file.vcd> ...\n"
      "\n"
      "Replays each scenario file on a simulated bus (or reconstructs a\n"
      "recorded trace from a VCD dump) and checks the protocol invariants:\n"
      "wired-AND consistency, stuff-rule conformance, error-flag legality,\n"
      "end-game legality, fault-confinement counter transitions and\n"
      "cross-node reconvergence.  VCD input carries no FSM introspection,\n"
      "so only the record-level rules apply to it.\n"
      "\n"
      "options:\n"
      "  --no-wired-and      disable the wired-AND rule\n"
      "  --no-stuff          disable stuff-rule conformance\n"
      "  --no-flags          disable error-flag legality\n"
      "  --no-end-game       disable end-game legality\n"
      "  --no-counters       disable counter-transition checking\n"
      "  --no-reconvergence  disable frame-boundary agreement\n"
      "  --max <n>           record at most n violations verbatim (default "
      "64)\n"
      "  --kernel K          bit engine for the replays: ref or fast\n"
      "                      (certified bit-identical; default ref)\n"
      "  -v, --verbose       report clean files too\n"
      "  -h, --help          this text\n",
      to);
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-h" || a == "--help") {
      usage(stdout);
      // exit in the --help path: before any thread exists.
      std::exit(0);  // NOLINT(concurrency-mt-unsafe)
    } else if (a == "--no-wired-and") {
      opt.cfg.wired_and = false;
    } else if (a == "--no-stuff") {
      opt.cfg.stuff_conformance = false;
    } else if (a == "--no-flags") {
      opt.cfg.flag_legality = false;
    } else if (a == "--no-end-game") {
      opt.cfg.end_game = false;
    } else if (a == "--no-counters") {
      opt.cfg.counter_transitions = false;
    } else if (a == "--no-reconvergence") {
      opt.cfg.reconvergence = false;
    } else if (a == "--max") {
      if (++i >= argc) {
        std::fprintf(stderr, "mcan-lint: --max needs a count\n");
        return false;
      }
      try {
        opt.cfg.max_recorded = static_cast<std::size_t>(std::stoul(argv[i]));
      } catch (const std::exception&) {
        std::fprintf(stderr, "mcan-lint: --max: not a number: %s\n", argv[i]);
        return false;
      }
    } else if (a == "--kernel") {
      if (++i >= argc) {
        std::fprintf(stderr, "mcan-lint: --kernel needs a value\n");
        return false;
      }
      const std::optional<KernelKind> kind = parse_kernel_name(argv[i]);
      if (!kind) {
        std::fprintf(stderr, "mcan-lint: bad --kernel value (ref|fast)\n");
        return false;
      }
      set_default_kernel(*kind);
    } else if (a == "-v" || a == "--verbose") {
      opt.verbose = true;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "mcan-lint: unknown option %s\n", a.c_str());
      return false;
    } else {
      opt.files.push_back(a);
    }
  }
  if (opt.files.empty()) {
    std::fprintf(stderr, "mcan-lint: no input files\n");
    return false;
  }
  return true;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Replay one scenario file on a fresh bus; full rule set applies.  A
/// file with an `rsm` directive runs the full consensus workload — the
/// bus the invariants watch then carries the replicas' traffic.
InvariantReport lint_scenario(const std::string& path,
                              const InvariantConfig& cfg) {
  const ScenarioSpec spec = load_scenario_file(path);
  const DslRunResult run = run_any_scenario(spec, cfg);
  return run.invariants;
}

/// Reconstruct a dumped trace; only record-level rules can apply.
InvariantReport lint_vcd(const std::string& path, InvariantConfig cfg) {
  const VcdTrace trace = read_vcd_file(path);
  InvariantChecker checker({}, nullptr, cfg);
  for (const BitRecord& rec : trace.bits) checker.on_bit(rec);
  return checker.report();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage(stderr);
    return 2;
  }

  bool any_violation = false;
  bool any_error = false;
  for (const std::string& path : opt.files) {
    InvariantReport report;
    try {
      report = ends_with(path, ".vcd") ? lint_vcd(path, opt.cfg)
                                       : lint_scenario(path, opt.cfg);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "mcan-lint: %s: %s\n", path.c_str(), e.what());
      any_error = true;
      continue;
    }
    if (report.clean()) {
      if (opt.verbose) {
        std::printf("%s: clean (%llu bits checked)\n", path.c_str(),
                    static_cast<unsigned long long>(report.bits_checked));
      }
      continue;
    }
    any_violation = true;
    std::printf("%s: %s", path.c_str(), report.summary().c_str());
  }
  if (any_error) return 2;
  return any_violation ? 1 : 0;
}
