// Dump a scenario's bus activity as a VCD waveform for GTKWave or any
// IEEE-1364 viewer: one wire for the resolved bus plus drive/view/fault
// wires per node.
//
// usage: waveform_dump <out.vcd> [scenario.scn]
// With no scenario file, dumps the paper's Fig. 3a pattern.
#include <cstdio>
#include <string>

#include "core/network.hpp"
#include "fault/scripted.hpp"
#include "scenario/dsl.hpp"
#include "sim/vcd.hpp"

int main(int argc, char** argv) {
  using namespace mcan;

  if (argc < 2) {
    std::printf("usage: waveform_dump <out.vcd> [scenario.scn]\n");
    return 1;
  }
  const std::string out = argv[1];

  ScenarioSpec spec;
  if (argc > 2) {
    spec = load_scenario_file(argv[2]);
  } else {
    spec = parse_scenario(R"(
name Fig 3a on standard CAN
protocol can
nodes 5
flip node=1 eof=5
flip node=2 eof=5
flip node=0 eof=6
)");
  }

  Network net(spec.n_nodes, spec.protocol);
  net.enable_trace();
  ScriptedFaults inj(spec.flips);
  net.set_injector(inj);
  if (spec.crash) {
    net.sim().schedule_crash(spec.crash->first, spec.crash->second);
  }
  net.node(0).enqueue(Frame::make_blank(spec.frame_id, spec.frame_dlc));
  net.run_until_quiet(30000);

  if (!write_vcd_file(out, net.trace(), net.labels())) {
    std::printf("error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s: %llu bit times, %d nodes (%s)\n", out.c_str(),
              static_cast<unsigned long long>(net.sim().now()),
              net.size(), spec.name.empty() ? "scenario" : spec.name.c_str());
  std::printf("view with: gtkwave %s\n", out.c_str());
  return 0;
}
