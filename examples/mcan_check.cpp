// mcan-check: the bounded model checker as a command-line tool.
//
// Sweeps every k-combination of view-flips over the frame-tail window for
// each selected protocol, using the parallel exploration engine
// (scenario/model_check.hpp), and reports violation counts with concrete
// counterexamples.  Optionally delta-debugs each counterexample to a
// minimal flip set, exports it as a .scn scenario replayable by mcan-lint,
// and emits a machine-readable JSON report plus an FSM transition-coverage
// report (instrumented builds only).
//
//     mcan-check --protocol major:5 -k 3          # exhaustive sweep
//     mcan-check --protocol can -k 2 --minimize --export-dir scenarios
//     mcan-check --budget 100000 -k 5             # bounded prefix of k=5
//     mcan-check --expect-clean --protocol major:3 -k 2   # CI gate
//
// Exit status: 0 = sweeps ran and every --expect-* gate held,
// 1 = a gate failed (violations where clean was expected, or vice versa),
// 2 = usage error or unusable configuration.
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/coverage.hpp"
#include "core/fsm_coverage.hpp"
#include "scenario/minimize.hpp"
#include "scenario/model_check.hpp"
#include "scenario/sweep_cli.hpp"
#include "util/progress.hpp"
#include "util/text.hpp"

namespace {

using namespace mcan;

struct Options {
  SweepOptions sweep;
  int max_examples = 5;
  bool minimize = false;
  std::string export_dir;   ///< write minimized .scn files here
  std::string coverage_path;  ///< write the FSM coverage JSON here
  bool expect_clean = false;
  bool expect_violations = false;
};

void usage(std::FILE* to) {
  std::fputs(
      "usage: mcan-check [options]\n"
      "\n"
      "Bounded exhaustive model checking of the frame-tail window: every\n"
      "combination of k view-flips is simulated and classified.  A clean\n"
      "sweep is a verification result for that window; a violating one\n"
      "comes with concrete counterexamples.\n"
      "\n"
      "sweep options:\n",
      to);
  std::fputs(sweep_flags_help(), to);
  std::fputs(
      "\n"
      "tool options:\n"
      "  --max-examples N   keep at most N counterexamples per sweep"
      " (default 5)\n"
      "  --minimize         delta-debug each counterexample to a minimal"
      " flip set\n"
      "  --export-dir DIR   write minimized counterexamples as .scn files\n"
      "                     (implies --minimize; each is replay-verified)\n"
      "  --coverage FILE    write the FSM transition-coverage report\n"
      "                     (needs a -DMCAN_FSM_COVERAGE=ON build)\n"
      "  --expect-clean     exit 1 if any sweep finds a violation\n"
      "  --expect-violations exit 1 if no sweep finds a violation\n"
      "  -h, --help         this text\n",
      to);
}

bool parse_args(int argc, char** argv, Options& opt) {
  std::vector<std::string> rest;
  std::string error;
  if (!parse_sweep_args(argc, argv, opt.sweep, rest, error)) {
    std::fprintf(stderr, "mcan-check: %s\n", error.c_str());
    return false;
  }
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const std::string& a = rest[i];
    auto need_value = [&](const char* flag, std::string& out) -> bool {
      if (i + 1 >= rest.size()) {
        std::fprintf(stderr, "mcan-check: %s needs a value\n", flag);
        return false;
      }
      out = rest[++i];
      return true;
    };
    if (a == "-h" || a == "--help") {
      usage(stdout);
      // exit in the --help path: before any thread exists.
      std::exit(0);  // NOLINT(concurrency-mt-unsafe)
    } else if (a == "--max-examples") {
      std::string v;
      if (!need_value("--max-examples", v)) return false;
      opt.max_examples = std::atoi(v.c_str());
    } else if (a == "--minimize") {
      opt.minimize = true;
    } else if (a == "--export-dir") {
      if (!need_value("--export-dir", opt.export_dir)) return false;
      opt.minimize = true;
    } else if (a == "--coverage") {
      if (!need_value("--coverage", opt.coverage_path)) return false;
    } else if (a == "--expect-clean") {
      opt.expect_clean = true;
    } else if (a == "--expect-violations") {
      opt.expect_violations = true;
    } else {
      std::fprintf(stderr, "mcan-check: unknown option %s\n", a.c_str());
      return false;
    }
  }
  if (opt.expect_clean && opt.expect_violations) {
    std::fprintf(stderr,
                 "mcan-check: --expect-clean and --expect-violations are"
                 " mutually exclusive\n");
    return false;
  }
  return true;
}

std::string file_slug(const std::string& name) {
  std::string out;
  for (const char c : name) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      out += c;
    } else if (c >= 'A' && c <= 'Z') {
      out += static_cast<char>(c - 'A' + 'a');
    } else {
      out += '_';
    }
  }
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "mcan-check: cannot write %s\n", path.c_str());
    return false;
  }
  f << content;
  return static_cast<bool>(f);
}

struct SweepRecord {
  ModelCheckResult result;
  std::vector<MinimizedCounterexample> minimized;  ///< parallel to examples
  std::vector<std::string> exported;               ///< .scn paths written
};

std::string sweep_to_json(const SweepRecord& rec) {
  const ModelCheckResult& r = rec.result;
  std::string s = "{";
  s += "\"protocol\":\"" + json_escape(r.cfg.protocol.name()) + "\"";
  s += ",\"nodes\":" + std::to_string(r.cfg.n_nodes);
  s += ",\"k\":" + std::to_string(r.cfg.errors);
  s += ",\"window\":[" + std::to_string(r.cfg.win_lo_rel) + "," +
       std::to_string(r.cfg.window_hi()) + "]";
  s += ",\"complete\":" + std::string(r.complete ? "true" : "false");
  s += ",\"cases\":" + std::to_string(r.cases);
  s += ",\"imo\":" + std::to_string(r.imo);
  s += ",\"double_rx\":" + std::to_string(r.double_rx);
  s += ",\"total_loss\":" + std::to_string(r.total_loss);
  s += ",\"timeouts\":" + std::to_string(r.timeouts);
  s += ",\"stats\":{";
  s += "\"enumerated\":" + std::to_string(r.stats.enumerated);
  s += ",\"simulated\":" + std::to_string(r.stats.simulated);
  s += ",\"tail_memo_hits\":" + std::to_string(r.stats.tail_memo_hits);
  s += ",\"symmetry_skips\":" + std::to_string(r.stats.symmetry_skips);
  s += ",\"distinct_tails\":" + std::to_string(r.stats.distinct_tails);
  s += ",\"jobs\":" + std::to_string(r.stats.jobs);
  s += ",\"seconds\":" + std::to_string(r.stats.seconds);
  s += "}";
  s += ",\"examples\":[";
  for (std::size_t i = 0; i < r.examples.size(); ++i) {
    if (i) s += ",";
    s += "{\"pattern\":\"" + json_escape(r.examples[i].to_string()) + "\"";
    if (i < rec.minimized.size()) {
      const MinimizedCounterexample& ce = rec.minimized[i];
      s += ",\"minimized\":{\"class\":\"";
      s += violation_class_name(ce.cls);
      s += "\",\"flips\":[";
      for (std::size_t j = 0; j < ce.flips.size(); ++j) {
        if (j) s += ",";
        s += "{\"node\":" + std::to_string(ce.flips[j].first) +
             ",\"eof_rel\":" + std::to_string(ce.flips[j].second) + "}";
      }
      s += "],\"runs\":" + std::to_string(ce.runs) + "}";
    }
    if (i < rec.exported.size() && !rec.exported[i].empty()) {
      s += ",\"scn\":\"" + json_escape(rec.exported[i]) + "\"";
    }
    s += "}";
  }
  s += "]}";
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage(stderr);
    return 2;
  }

  fsm_coverage::reset();  // scope any coverage report to this run

  const std::vector<ProtocolParams> protos = opt.sweep.protocol_set();
  std::vector<SweepRecord> records;
  bool any_violation = false;
  bool export_failed = false;

  for (const ProtocolParams& proto : protos) {
    for (int k = 1; k <= opt.sweep.max_k; ++k) {
      ModelCheckConfig mc;
      mc.base.protocol = proto;
      mc.base.n_nodes = opt.sweep.n_nodes;
      mc.base.errors = k;
      if (opt.sweep.win_lo) mc.base.win_lo_rel = *opt.sweep.win_lo;
      if (opt.sweep.win_hi) mc.base.win_hi_rel = *opt.sweep.win_hi;
      mc.jobs = opt.sweep.jobs;
      mc.dedup = opt.sweep.dedup;
      mc.symmetry = opt.sweep.symmetry;
      mc.max_cases = opt.sweep.budget;
      mc.max_examples = opt.max_examples;

      SweepRecord rec;
      try {
        if (opt.sweep.progress) {
          ProgressMeter meter(proto.name() + " k=" + std::to_string(k));
          rec.result = run_model_check(
              mc, [&meter](long long done, long long total) {
                meter.set_total(total);
                meter.update(done);
              });
          meter.finish();
        } else {
          rec.result = run_model_check(mc);
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "mcan-check: %s\n", e.what());
        return 2;
      }

      const ModelCheckResult& r = rec.result;
      std::printf("%s\n", r.summary().c_str());
      if (r.violations() > 0) any_violation = true;

      for (std::size_t i = 0; i < r.examples.size(); ++i) {
        std::printf("  example: %s\n", r.examples[i].to_string().c_str());
        if (!opt.minimize) continue;
        MinimizedCounterexample ce = minimize_counterexample(
            proto, opt.sweep.n_nodes, r.examples[i].flips);
        std::printf("  minimized (%d runs): %s ->", ce.runs,
                    violation_class_name(ce.cls));
        for (const auto& [node, pos] : ce.flips) {
          std::printf(" (node %d, EOF%+d)", node, pos);
        }
        std::printf("\n");
        std::string scn_path;
        if (!opt.export_dir.empty()) {
          const std::string title =
              "modelcheck_" + file_slug(proto.name()) + "_k" +
              std::to_string(k) + "_" + std::to_string(i);
          const std::string text =
              to_scenario_text(proto, opt.sweep.n_nodes, ce, title);
          scn_path = opt.export_dir + "/" + title + ".scn";
          if (write_file(scn_path, text)) {
            const ReplayResult rr = replay_scenario_text(text);
            if (!rr.parsed || !rr.expectation_met) {
              std::fprintf(stderr,
                           "mcan-check: exported %s does NOT replay to the"
                           " same verdict: %s\n",
                           scn_path.c_str(), rr.detail.c_str());
              export_failed = true;
            } else {
              std::printf("  exported %s (replay verified)\n",
                          scn_path.c_str());
            }
          } else {
            export_failed = true;
            scn_path.clear();
          }
        }
        rec.minimized.push_back(std::move(ce));
        rec.exported.push_back(scn_path);
      }
      records.push_back(std::move(rec));
    }
  }

  if (!opt.sweep.json.empty()) {
    std::string s = "{\"sweeps\":[";
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (i) s += ",";
      s += sweep_to_json(records[i]);
    }
    s += "]}\n";
    if (!write_file(opt.sweep.json, s)) return 2;
    std::printf("report written to %s\n", opt.sweep.json.c_str());
  }

  if (!opt.coverage_path.empty()) {
    if (!fsm_coverage_compiled()) {
      std::fprintf(stderr,
                   "mcan-check: --coverage: this build is not instrumented"
                   " (configure with -DMCAN_FSM_COVERAGE=ON)\n");
    }
    std::string s = "[";
    bool first = true;
    // One report per distinct variant in the sweep set.
    std::vector<Variant> done;
    for (const ProtocolParams& proto : protos) {
      bool dup = false;
      for (const Variant v : done) dup = dup || v == proto.variant;
      if (dup) continue;
      done.push_back(proto.variant);
      const FsmCoverageReport rep = collect_fsm_coverage(proto.variant);
      std::printf("%s", rep.summary().c_str());
      if (!first) s += ",";
      first = false;
      s += rep.to_json();
    }
    s += "]\n";
    if (!write_file(opt.coverage_path, s)) return 2;
    std::printf("coverage written to %s\n", opt.coverage_path.c_str());
  }

  if (export_failed) return 1;
  if (opt.expect_clean && any_violation) {
    std::fprintf(stderr, "mcan-check: FAIL: violations found but"
                         " --expect-clean was given\n");
    return 1;
  }
  if (opt.expect_violations && !any_violation) {
    std::fprintf(stderr, "mcan-check: FAIL: no violations found but"
                         " --expect-violations was given\n");
    return 1;
  }
  return 0;
}
