// Exhaustive search + replay: find the first error pattern that breaks a
// protocol, then replay it with a full bit-level trace — watching a
// machine-discovered counterexample unfold is the best way to understand
// why the paper's scenarios matter.
//
// usage: replay_counterexample [can|minor|major] [k] [m]
#include <cstdio>
#include <string>

#include "analysis/tagged.hpp"
#include "core/network.hpp"
#include "fault/scripted.hpp"
#include "frame/encoder.hpp"
#include "scenario/exhaustive.hpp"

int main(int argc, char** argv) {
  using namespace mcan;

  const std::string variant = argc > 1 ? argv[1] : "can";
  const int k = argc > 2 ? std::atoi(argv[2]) : 2;
  const int m = argc > 3 ? std::atoi(argv[3]) : 5;

  ProtocolParams proto;
  if (variant == "can") {
    proto = ProtocolParams::standard_can();
  } else if (variant == "minor") {
    proto = ProtocolParams::minor_can();
  } else if (variant == "major") {
    proto = ProtocolParams::major_can(m);
  } else {
    std::printf("usage: replay_counterexample [can|minor|major] [k] [m]\n");
    return 1;
  }

  std::printf("searching all %d-error patterns against %s...\n", k,
              proto.name().c_str());
  ExhaustiveConfig cfg;
  cfg.protocol = proto;
  cfg.n_nodes = 3;
  cfg.errors = k;
  auto res = run_exhaustive(cfg, 1);
  std::printf("%s\n\n", res.summary().c_str());

  if (res.examples.empty()) {
    std::printf(
        "no counterexample exists in this window — for MajorCAN_m and\n"
        "k <= m that is the expected (verified) outcome.\n");
    return 0;
  }

  const Counterexample& ce = res.examples.front();
  std::printf("replaying the first counterexample:\n  %s\n\n",
              ce.to_string().c_str());

  // Re-run that exact pattern with tracing on.
  Network net(cfg.n_nodes, proto);
  net.enable_trace();
  const Frame frame = make_tagged_frame(0x100, MsgKind::Data, MessageKey{0, 1});
  const int eof_start =
      wire_length(frame, proto.eof_bits()) - proto.eof_bits();
  ScriptedFaults inj;
  for (const auto& [node, pos] : ce.flips) {
    inj.add(FaultTarget::at_time(node, static_cast<BitTime>(eof_start + pos)));
  }
  net.set_injector(inj);
  net.node(0).enqueue(frame);
  net.run_until_quiet(30000);

  const BitTime from = static_cast<BitTime>(eof_start > 8 ? eof_start - 8 : 0);
  std::printf("%s\n", net.trace()
                          .render(net.labels(), from,
                                  std::min<BitTime>(net.sim().now(), from + 70))
                          .c_str());
  std::printf("node 0 = transmitter; deliveries:");
  for (int i = 1; i < net.size(); ++i) {
    std::printf(" node%d=%zu", i, net.deliveries(i).size());
  }
  std::printf("; tx attempts=%zu successes=%zu\n",
              net.log().count(EventKind::SofSent, 0),
              net.log().count(EventKind::TxSuccess, 0));
  return 0;
}
