// mcan-analyze — determinism & concurrency static-analysis gate.
//
// Token-level rule checking over every file the build compiles (the
// compile_commands.json file list, plus headers): the determinism
// discipline that makes served results byte-identical to local runs is
// machine-checked here, not trusted to review.  See
// docs/STATIC_ANALYSIS.md for the rule catalog and suppression syntax.
//
//     mcan-analyze --expect-clean                 # the CI gate
//     mcan-analyze --rule wallclock               # one rule only
//     mcan-analyze --json report.json file.cpp    # specific files
//
// Exit status: 0 = clean (or findings without --expect-clean),
// 1 = findings under --expect-clean, 2 = usage/setup error.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/static/analyze.hpp"
#include "util/text.hpp"

namespace {

using namespace mcan;

void usage(std::FILE* to) {
  std::fputs(
      "usage: mcan-analyze [options] [files...]\n"
      "\n"
      "Determinism & signal-safety lint over the project sources.  With\n"
      "no positional files, scans everything in compile_commands.json\n"
      "plus headers under src/, examples/, bench/, tests/.\n"
      "\n"
      "options:\n"
      "  --compdb PATH      compilation database (default\n"
      "                     build/compile_commands.json)\n"
      "  --root PATH        repo root findings are reported relative to\n"
      "                     (default: parent of the compdb directory)\n"
      "  --rule ID          run only this rule (repeatable)\n"
      "  --wallclock-allow P  extra wallclock whitelist path prefix\n"
      "                     (repeatable; see docs/STATIC_ANALYSIS.md)\n"
      "  --exclude P        extra excluded path prefix (repeatable)\n"
      "  --json FILE        write the JSON report to FILE ('-' = stdout)\n"
      "  --expect-clean     exit 1 unless there are zero findings\n"
      "  --list-rules       print the rule catalog and exit\n"
      "  -h, --help         this text\n",
      to);
}

}  // namespace

int main(int argc, char** argv) {
  std::string compdb = "build/compile_commands.json";
  std::string root;
  std::string json_path;
  bool expect_clean = false;
  sa::AnalyzeConfig cfg;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](std::string& out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mcan-analyze: %s needs a value\n", arg.c_str());
        return false;
      }
      out = argv[++i];
      return true;
    };
    std::string v;
    if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    } else if (arg == "--list-rules") {
      for (const sa::RuleInfo& r : sa::rule_catalog()) {
        std::printf("%-22s %s\n", r.id, r.summary);
      }
      return 0;
    } else if (arg == "--compdb") {
      if (!value(compdb)) return 2;
    } else if (arg == "--root") {
      if (!value(root)) return 2;
    } else if (arg == "--json") {
      if (!value(json_path)) return 2;
    } else if (arg == "--rule") {
      if (!value(v)) return 2;
      bool known = false;
      for (const sa::RuleInfo& r : sa::rule_catalog()) known |= v == r.id;
      if (!known) {
        std::fprintf(stderr, "mcan-analyze: unknown rule '%s' (--list-rules)\n",
                     v.c_str());
        return 2;
      }
      cfg.only_rules.push_back(v);
    } else if (arg == "--wallclock-allow") {
      if (!value(v)) return 2;
      cfg.wallclock_allow.push_back(v);
    } else if (arg == "--exclude") {
      if (!value(v)) return 2;
      cfg.exclude.push_back(v);
    } else if (arg == "--expect-clean") {
      expect_clean = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "mcan-analyze: unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  if (root.empty()) {
    const std::filesystem::path db(compdb);
    root = db.has_parent_path() && db.parent_path().has_parent_path()
               ? db.parent_path().parent_path().string()
               : ".";
  }

  if (files.empty()) {
    std::string error;
    if (!sa::collect_files(compdb, root, cfg, files, error)) {
      std::fprintf(stderr, "mcan-analyze: %s\n", error.c_str());
      return 2;
    }
  }

  const sa::AnalyzeReport report = sa::analyze_paths(root, files, cfg);
  std::fputs(sa::format_text(report).c_str(), stdout);

  if (!json_path.empty()) {
    const std::string json = sa::format_json(report);
    if (json_path == "-") {
      std::fputs(json.c_str(), stdout);
    } else if (!write_text_file(json_path, json)) {
      std::fprintf(stderr, "mcan-analyze: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
  }

  if (expect_clean && !report.clean()) {
    std::fprintf(stderr,
                 "mcan-analyze: %zu finding(s) — the tree must be clean "
                 "(fix, or suppress with a reasoned "
                 "\"// mcan-analyze: allow(<rule>) <reason>\")\n",
                 report.findings.size());
    return 1;
  }
  return 0;
}
