// mcan-served — the campaign orchestration daemon.
//
// Listens on a Unix-domain socket for job submissions (fuzz campaigns,
// rare-event campaigns, model-check sweeps), shards each campaign's
// rounds across a worker fleet, and journals merged state so a killed
// daemon resumes every in-flight job byte-identically.  mcan-client is
// the submit/status/result side; docs/SERVING.md specifies the protocol
// and the determinism and crash-recovery guarantees.
//
//     mcan-served --socket /tmp/mcan.sock --journal-dir serve-journal
//                 --workers 4
//
// SIGINT/SIGTERM shut down gracefully: in-flight shards finish, every
// live job gets a final journal snapshot, the socket is removed.
// Exit status: 0 = clean shutdown, 1 = startup failure, 2 = usage error.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "serve/server.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace mcan;

// The handler only stores to a lock-free atomic — the async-signal-safe
// subset ([support.signal]) that is also safe for the main thread to
// read concurrently.  run() polls this flag.
std::atomic<bool> g_interrupted{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "signal handler requires a lock-free stop flag");

void on_signal(int) { g_interrupted.store(true); }

void usage(std::FILE* to) {
  std::fputs(
      "usage: mcan-served [options]\n"
      "\n"
      "Campaign orchestration daemon: accepts fuzz / rare / check jobs\n"
      "over a Unix-domain socket, shards their rounds across a worker\n"
      "fleet, and journals progress for crash recovery.  Results are\n"
      "bit-identical to local single-process runs of the same specs.\n"
      "\n"
      "options:\n"
      "  --socket PATH        listening socket (default mcan-serve.sock)\n"
      "  --journal-dir DIR    job journals for crash recovery (default\n"
      "                       none: no persistence)\n"
      "  --workers N          worker threads (default 1; 0 = hardware)\n"
      "  --capacity N         max live jobs before submits are rejected\n"
      "                       (default 64)\n"
      "  --shard-size N       slots per shard (default 16)\n"
      "  --max-retries N      shard requeues before a job fails "
      "(default 3)\n"
      "  --checkpoint-every N units between journal snapshots "
      "(default 4096)\n"
      "  --heartbeat-timeout S  declare a silent worker dead after S\n"
      "                       seconds (default 60)\n"
      "  --kernel K           bit engine for all jobs: ref or fast\n"
      "                       (certified bit-identical; default ref)\n"
      "  -h, --help           this text\n",
      to);
}

bool need_value(int argc, char** argv, int& i, std::string& out) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "mcan-served: %s needs a value\n", argv[i]);
    return false;
  }
  out = argv[++i];
  return true;
}

bool parse_ll(const std::string& s, long long& out) {
  try {
    std::size_t pos = 0;
    out = std::stoll(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  ServerConfig cfg;
  cfg.pool.workers = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    std::string v;
    long long n = 0;
    if (a == "-h" || a == "--help") {
      usage(stdout);
      return 0;
    } else if (a == "--socket") {
      if (!need_value(argc, argv, i, cfg.socket_path)) return 2;
    } else if (a == "--journal-dir") {
      if (!need_value(argc, argv, i, cfg.serve.journal_dir)) return 2;
    } else if (a == "--workers") {
      if (!need_value(argc, argv, i, v) || !parse_ll(v, n) || n < 0) {
        std::fprintf(stderr, "mcan-served: bad --workers value\n");
        return 2;
      }
      cfg.pool.workers = static_cast<int>(n);
    } else if (a == "--capacity") {
      if (!need_value(argc, argv, i, v) || !parse_ll(v, n) || n < 1) {
        std::fprintf(stderr, "mcan-served: bad --capacity value\n");
        return 2;
      }
      cfg.serve.capacity = static_cast<std::size_t>(n);
    } else if (a == "--shard-size") {
      if (!need_value(argc, argv, i, v) || !parse_ll(v, n) || n < 1) {
        std::fprintf(stderr, "mcan-served: bad --shard-size value\n");
        return 2;
      }
      cfg.serve.shard_size = static_cast<std::size_t>(n);
    } else if (a == "--max-retries") {
      if (!need_value(argc, argv, i, v) || !parse_ll(v, n) || n < 0) {
        std::fprintf(stderr, "mcan-served: bad --max-retries value\n");
        return 2;
      }
      cfg.serve.max_retries = static_cast<int>(n);
    } else if (a == "--checkpoint-every") {
      if (!need_value(argc, argv, i, v) || !parse_ll(v, n) || n < 1) {
        std::fprintf(stderr, "mcan-served: bad --checkpoint-every value\n");
        return 2;
      }
      cfg.serve.checkpoint_every = static_cast<std::uint64_t>(n);
    } else if (a == "--heartbeat-timeout") {
      if (!need_value(argc, argv, i, v) || !parse_ll(v, n) || n < 1) {
        std::fprintf(stderr, "mcan-served: bad --heartbeat-timeout value\n");
        return 2;
      }
      cfg.pool.heartbeat_timeout_s = static_cast<double>(n);
    } else if (a == "--kernel") {
      if (!need_value(argc, argv, i, v)) return 2;
      const std::optional<KernelKind> kind = parse_kernel_name(v);
      if (!kind) {
        std::fprintf(stderr, "mcan-served: bad --kernel value (ref|fast)\n");
        return 2;
      }
      set_default_kernel(*kind);
    } else {
      std::fprintf(stderr, "mcan-served: unknown option %s\n", a.c_str());
      usage(stderr);
      return 2;
    }
  }

  CampaignServer server(cfg);
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  std::vector<std::string> notes;
  std::string error;
  if (!server.start(notes, error)) {
    std::fprintf(stderr, "mcan-served: %s\n", error.c_str());
    return 1;
  }
  for (const std::string& note : notes) {
    std::fprintf(stderr, "mcan-served: %s\n", note.c_str());
  }
  std::fprintf(stderr, "mcan-served: listening on %s (%d workers)\n",
               server.socket_path().c_str(), cfg.pool.workers);
  server.run(&g_interrupted);
  std::fprintf(stderr, "mcan-served: stopped\n");
  return 0;
}
