// Choosing MajorCAN's m for your bus (paper §5: "if ber is larger then
// larger values of m should be considered").
//
// usage: tune_m [ber] [nodes] [frame_bits] [target_per_hour]
// defaults: the paper's reference bus and the 1e-9/h aerospace target.
#include <cstdio>
#include <cstdlib>

#include "analysis/tuning.hpp"
#include "util/text.hpp"

int main(int argc, char** argv) {
  using namespace mcan;

  ModelParams p;
  p.ber = argc > 1 ? std::atof(argv[1]) : 1e-5;
  p.n_nodes = argc > 2 ? std::atoi(argv[2]) : 32;
  p.frame_bits = argc > 3 ? std::atoi(argv[3]) : 110;
  const double target = argc > 4 ? std::atof(argv[4]) : 1e-9;

  std::printf("=== MajorCAN m selection ===\n");
  std::printf("bus: N=%d, tau=%d bits, ber=%s (ber*=%s), %.0f frames/hour\n",
              p.n_nodes, p.frame_bits, sci(p.ber, 2).c_str(),
              sci(p.ber_star(), 2).c_str(), p.frames_per_hour());
  std::printf("target residual exposure: %s per hour\n\n",
              sci(target, 2).c_str());

  std::printf("%s\n", render_tuning_table(tuning_table(p, 10)).c_str());

  const int m = recommend_m(p, target);
  std::printf("recommended: MajorCAN_%d (first m meeting the target)\n", m);
  std::printf(
      "\nthe paper's m = 5 matches the CRC's 5-error detection guarantee;\n"
      "run this tool with your environment's ber to see whether that also\n"
      "meets your dependability target, or how little the extra bits of a\n"
      "larger m cost.\n");
  return 0;
}
