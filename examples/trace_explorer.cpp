// Interactive-ish tool: run any paper scenario under any protocol variant
// and dump the full bit-level timeline plus the event log — the fastest way
// to *see* the protocols work.
//
// usage: trace_explorer [scenario] [variant] [m]
//   scenario: fig1a | fig1b | fig1c | fig3 | fig5 | order   (default fig3)
//   variant : can | minor | major                           (default can)
//   m       : MajorCAN tolerance parameter                  (default 5)
// or:    trace_explorer run <file.scn>
//   runs a scenario written in the DSL (see scenarios/*.scn).
#include <cstdio>
#include <cstring>
#include <string>

#include "scenario/dsl.hpp"
#include "scenario/figures.hpp"

namespace {

using namespace mcan;

void usage() {
  std::printf(
      "usage: trace_explorer [fig1a|fig1b|fig1c|fig3|fig5|order] "
      "[can|minor|major] [m]\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string scenario = argc > 1 ? argv[1] : "fig3";
  const std::string variant = argc > 2 ? argv[2] : "can";
  const int m = argc > 3 ? std::atoi(argv[3]) : 5;

  if (scenario == "run") {
    if (argc < 3) {
      usage();
      return 1;
    }
    try {
      const ScenarioSpec spec = load_scenario_file(argv[2]);
      const DslRunResult res = run_scenario(spec);
      std::printf("%s\n", res.outcome.summary().c_str());
      std::printf("%s: %s\n\n", res.expectation_text.c_str(),
                  res.expectation_met ? "MET" : "NOT MET");
      std::printf("%s\n", res.outcome.trace.c_str());
      return res.expectation_met ? 0 : 2;
    } catch (const std::invalid_argument& e) {
      std::printf("error: %s\n", e.what());
      return 1;
    }
  }

  ProtocolParams p;
  if (variant == "can") {
    p = ProtocolParams::standard_can();
  } else if (variant == "minor") {
    p = ProtocolParams::minor_can();
  } else if (variant == "major") {
    p = ProtocolParams::major_can(m);
  } else {
    usage();
    return 1;
  }

  if (scenario == "order") {
    auto r = run_order_scenario(p);
    std::printf("%s\n", r.summary().c_str());
    return 0;
  }

  ScenarioOutcome r;
  if (scenario == "fig1a") {
    r = run_fig1a(p);
  } else if (scenario == "fig1b") {
    r = run_fig1b(p);
  } else if (scenario == "fig1c") {
    r = run_fig1c(p);
  } else if (scenario == "fig3") {
    r = run_fig3(p);
  } else if (scenario == "fig5") {
    r = run_fig5(m);
  } else {
    usage();
    return 1;
  }

  std::printf("%s\n\n", r.summary().c_str());
  std::printf("legend: r/d = node's view, UPPERCASE = node drives dominant,\n");
  std::printf("        '*' band = disturbed view bit, '.' = node off\n\n");
  std::printf("%s\n", r.trace.c_str());
  std::printf("events:\n");
  for (const std::string& n : r.notes) std::printf("%s", n.c_str());
  return 0;
}
