// mcan-rare: rare-event Monte-Carlo campaigns over the bit-level bus.
//
// Estimates the paper's Table-1 inconsistency probabilities (expression
// (4): IMO per frame) *empirically*, by simulating the probe broadcast on
// a full N-node bus and counting inconsistent outcomes — with importance
// sampling and multilevel splitting so that probabilities of 1e-12 and
// below are measurable in seconds instead of CPU-centuries.
//
//     mcan-rare estimate --ber 1e-5 --trials 20000       # importance mode
//     mcan-rare estimate --mode splitting --ber 1e-6
//     mcan-rare estimate --journal t1.jnl --trials 100000  # checkpointed
//     mcan-rare resume   --journal t1.jnl --trials 200000  # keep going
//     mcan-rare compare  --ber 1e-2 --trials 50000       # all three modes
//     mcan-rare json     --journal t1.jnl               # reprint as JSON
//
// Exit status: 0 = ran and every --expect-* gate held, 1 = a gate failed,
// 2 = usage error or unusable configuration, 130 = interrupted
// (SIGINT/SIGTERM; the --journal checkpoint is still flushed, so a rerun
// with the same journal resumes).
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "rare/campaign.hpp"
#include "scenario/sweep_cli.hpp"
#include "util/text.hpp"

namespace {

using namespace mcan;

// SIGINT/SIGTERM raise the campaign's cooperative stop flag: the round in
// flight finishes, the journal gets a final snapshot, and the partial
// estimate is printed before exiting 130.
// A lock-free atomic is the one flag type that is both async-signal-safe
// to store ([support.signal]) and safe for the campaign's worker threads
// to poll (volatile sig_atomic_t would be a cross-thread data race).
std::atomic<bool> g_interrupted{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "signal handler requires a lock-free stop flag");

void on_signal(int) { g_interrupted.store(true); }

struct Options {
  SweepOptions sweep;
  std::string command;
  RareConfig cfg;
  double expect_within = 0;  ///< gate: p_hat within this factor of expr(4)
  double expect_rel_ci = 0;  ///< gate: relative CI half-width at most this
};

void usage(std::FILE* to) {
  std::fputs(
      "usage: mcan-rare <command> [options]\n"
      "\n"
      "Rare-event Monte-Carlo estimation of the paper's Table-1\n"
      "inconsistency probabilities, measured on the executable bus.\n"
      "\n"
      "commands:\n"
      "  estimate   run a campaign and print the estimate (resumes the\n"
      "             --journal if it already has snapshots)\n"
      "  resume     like estimate, but requires an existing journal\n"
      "  compare    run naive, importance and splitting campaigns on the\n"
      "             same configuration and cross-tabulate with expr. (4)\n"
      "  json       reprint a journaled campaign as JSON (no simulation)\n"
      "\n"
      "shared options (subset of the sweep vocabulary):\n",
      to);
  std::fputs(sweep_flags_help(), to);
  std::fputs(
      "\n"
      "campaign options:\n"
      "  --ber X            network bit error rate (default 1e-5)\n"
      "  --trials N         Monte-Carlo trials (default 20000)\n"
      "  --mode M           naive|importance|splitting (default importance)\n"
      "  --seed S           campaign seed (default 1)\n"
      "  --batch N          trials per merge round (default 256)\n"
      "  --quiet N          per-trial quiescence budget in bits\n"
      "  --journal FILE     checkpoint journal (resume-able)\n"
      "  --checkpoint-every N   trials between snapshots (default 8192)\n"
      "  --window-q X       proposal flip rate inside the window\n"
      "  --tx-hot-q X       proposal rate at the transmitter hotspot bits\n"
      "  --rx-hot-q X       proposal rate at the receiver hotspot bits\n"
      "  --factor N         splitting factor per level (default 4)\n"
      "  --max-particles N  per-trial particle cap (default 256)\n"
      "  --expect-within X  exit 1 unless the estimate is within a factor\n"
      "                     X of expression (4) (CI-aware)\n"
      "  --expect-rel-ci X  exit 1 unless rel. CI half-width <= X\n"
      "  -h, --help         this text\n"
      "\n"
      "The sweep --nodes default is overridden to 32 (the Table-1 bus);\n"
      "--window LO:HI repositions the biased flip window (EOF-relative).\n",
      to);
}

bool parse_double(const std::string& s, double& out) {
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end && *end == '\0' && !s.empty();
}

bool parse_args(int argc, char** argv, Options& opt) {
  opt.sweep.n_nodes = 0;  // sentinel: distinguish "unset" from "--nodes 3"
  std::vector<std::string> rest;
  std::string error;
  if (!parse_sweep_args(argc, argv, opt.sweep, rest, error)) {
    std::fprintf(stderr, "mcan-rare: %s\n", error.c_str());
    return false;
  }
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const std::string& a = rest[i];
    auto need_value = [&](const char* flag, std::string& out) -> bool {
      if (i + 1 >= rest.size()) {
        std::fprintf(stderr, "mcan-rare: %s needs a value\n", flag);
        return false;
      }
      out = rest[++i];
      return true;
    };
    auto need_double = [&](const char* flag, double& out) -> bool {
      std::string v;
      if (!need_value(flag, v)) return false;
      if (!parse_double(v, out)) {
        std::fprintf(stderr, "mcan-rare: %s: '%s' is not a number\n", flag,
                     v.c_str());
        return false;
      }
      return true;
    };
    auto need_ll = [&](const char* flag, long long& out) -> bool {
      double d = 0;
      if (!need_double(flag, d)) return false;
      out = static_cast<long long>(d);
      return true;
    };
    long long v = 0;
    if (a == "-h" || a == "--help") {
      usage(stdout);
      // exit in the --help path: before any thread exists.
      std::exit(0);  // NOLINT(concurrency-mt-unsafe)
    } else if (opt.command.empty() && !a.empty() && a[0] != '-') {
      opt.command = a;
    } else if (a == "--ber") {
      if (!need_double("--ber", opt.cfg.ber)) return false;
    } else if (a == "--trials") {
      if (!need_ll("--trials", opt.cfg.trials)) return false;
    } else if (a == "--seed") {
      if (!need_ll("--seed", v)) return false;
      opt.cfg.seed = static_cast<std::uint64_t>(v);
    } else if (a == "--batch") {
      if (!need_ll("--batch", v)) return false;
      opt.cfg.batch = static_cast<int>(v);
    } else if (a == "--quiet") {
      if (!need_ll("--quiet", v)) return false;
      opt.cfg.quiet_budget = v;
    } else if (a == "--journal") {
      if (!need_value("--journal", opt.cfg.journal)) return false;
    } else if (a == "--checkpoint-every") {
      if (!need_ll("--checkpoint-every", opt.cfg.checkpoint_every)) {
        return false;
      }
    } else if (a == "--mode") {
      std::string m;
      if (!need_value("--mode", m)) return false;
      if (m == "naive") {
        opt.cfg.mode = RareMode::kNaive;
      } else if (m == "importance") {
        opt.cfg.mode = RareMode::kImportance;
      } else if (m == "splitting") {
        opt.cfg.mode = RareMode::kSplitting;
      } else {
        std::fprintf(stderr,
                     "mcan-rare: --mode: want naive|importance|splitting\n");
        return false;
      }
    } else if (a == "--window-q") {
      if (!need_double("--window-q", opt.cfg.bias.window_q)) return false;
    } else if (a == "--tx-hot-q") {
      if (!need_double("--tx-hot-q", opt.cfg.bias.tx_hot_q)) return false;
    } else if (a == "--rx-hot-q") {
      if (!need_double("--rx-hot-q", opt.cfg.bias.rx_hot_q)) return false;
    } else if (a == "--factor") {
      if (!need_ll("--factor", v)) return false;
      opt.cfg.split.factor = static_cast<int>(v);
    } else if (a == "--max-particles") {
      if (!need_ll("--max-particles", v)) return false;
      opt.cfg.split.max_particles = static_cast<int>(v);
    } else if (a == "--expect-within") {
      if (!need_double("--expect-within", opt.expect_within)) return false;
    } else if (a == "--expect-rel-ci") {
      if (!need_double("--expect-rel-ci", opt.expect_rel_ci)) return false;
    } else {
      std::fprintf(stderr, "mcan-rare: unknown option %s\n", a.c_str());
      return false;
    }
  }
  if (opt.command.empty()) {
    std::fprintf(stderr, "mcan-rare: no command (see --help)\n");
    return false;
  }
  // Fold the shared sweep vocabulary into the campaign config.
  if (!opt.sweep.protocols.empty()) {
    opt.cfg.protocol = opt.sweep.protocols.front();
  }
  opt.cfg.n_nodes = opt.sweep.n_nodes > 0 ? opt.sweep.n_nodes : 32;
  opt.cfg.jobs = opt.sweep.jobs;
  if (opt.sweep.win_lo) opt.cfg.bias.win_lo_rel = *opt.sweep.win_lo;
  if (opt.sweep.win_hi) opt.cfg.bias.win_hi_rel = *opt.sweep.win_hi;
  return true;
}

void attach_progress(Options& opt) {
  if (!opt.sweep.progress) return;
  opt.cfg.on_progress = [](long long done, long long total) {
    std::fprintf(stderr, "\r  %lld / %lld trials", done, total);
    if (done >= total) std::fputc('\n', stderr);
    std::fflush(stderr);
  };
}

/// Check the --expect-* gates against a finished campaign; returns the
/// process exit code.
int check_gates(const Options& opt, const RareResult& res) {
  int rc = 0;
  const RareEstimate est = res.imo_estimate();
  if (opt.expect_rel_ci > 0) {
    if (est.hits == 0 || est.rel_halfwidth > opt.expect_rel_ci) {
      std::fprintf(stderr,
                   "mcan-rare: FAIL relative CI half-width %.2f > %.2f "
                   "(hits=%lld)\n",
                   est.rel_halfwidth, opt.expect_rel_ci, est.hits);
      rc = 1;
    }
  }
  if (opt.expect_within > 0) {
    const double p4 = res.closed_form_p4();
    // CI-aware: the gate holds if any point of [ci_lo, ci_hi] lies within
    // a factor `expect_within` of the closed form.
    const bool ok = p4 > 0 && est.ci_hi >= p4 / opt.expect_within &&
                    est.ci_lo <= p4 * opt.expect_within;
    if (!ok) {
      std::fprintf(stderr,
                   "mcan-rare: FAIL estimate [%.3e, %.3e] not within %.1fx "
                   "of expression (4) = %.3e\n",
                   est.ci_lo, est.ci_hi, opt.expect_within, p4);
      rc = 1;
    }
  }
  return rc;
}

int write_json(const Options& opt, const RareResult& res) {
  if (opt.sweep.json.empty()) return 0;
  if (!write_text_file(opt.sweep.json, res.to_json())) {
    std::fprintf(stderr, "mcan-rare: cannot write %s\n",
                 opt.sweep.json.c_str());
    return 2;
  }
  std::printf("json written to %s\n", opt.sweep.json.c_str());
  return 0;
}

int cmd_estimate(Options& opt, bool require_journal) {
  if (require_journal && opt.cfg.journal.empty()) {
    std::fprintf(stderr, "mcan-rare: resume needs --journal\n");
    return 2;
  }
  attach_progress(opt);
  opt.cfg.stop = &g_interrupted;
  const RareResult res = run_campaign(opt.cfg);
  std::printf("%s\n", res.summary().c_str());
  const int rc = write_json(opt, res);
  if (rc) return rc;
  if (g_interrupted.load()) {
    std::fprintf(stderr, "mcan-rare: interrupted after %lld trials%s\n",
                 res.imo.trials(),
                 opt.cfg.journal.empty() ? "" : "; journal flushed");
    return 130;
  }
  return check_gates(opt, res);
}

int cmd_compare(Options& opt) {
  attach_progress(opt);
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"mode", "p_hat", "ci95", "rel_ci", "hits", "ess", "vrf"});
  std::string json = "{\"modes\":[";
  double p4 = 0;
  const RareMode modes[] = {RareMode::kNaive, RareMode::kImportance,
                            RareMode::kSplitting};
  bool first = true;
  for (const RareMode m : modes) {
    RareConfig cfg = opt.cfg;
    cfg.mode = m;
    cfg.journal.clear();  // compare never journals: three distinct streams
    std::fprintf(stderr, "%s:\n", rare_mode_name(m));
    const RareResult res = run_campaign(cfg);
    p4 = res.closed_form_p4();
    const RareEstimate est = res.imo_estimate();
    rows.push_back({rare_mode_name(m), sci(est.p_hat),
                    "[" + sci(est.ci_lo) + ", " + sci(est.ci_hi) + "]",
                    sci(est.rel_halfwidth, 2), std::to_string(est.hits),
                    sci(est.ess, 2), sci(res.variance_reduction(), 2)});
    if (!first) json += ",";
    first = false;
    json += res.to_json();
  }
  json += "],\"closed_form_p4\":" + sci(p4, 12) + "}\n";
  rows.push_back({"expr(4)", sci(p4), "-", "-", "-", "-", "-"});
  std::printf("%s", render_table(rows).c_str());
  if (!opt.sweep.json.empty()) {
    if (!write_text_file(opt.sweep.json, json)) {
      std::fprintf(stderr, "mcan-rare: cannot write %s\n",
                   opt.sweep.json.c_str());
      return 2;
    }
    std::printf("json written to %s\n", opt.sweep.json.c_str());
  }
  return 0;
}

int cmd_json(const Options& opt) {
  if (opt.cfg.journal.empty()) {
    std::fprintf(stderr, "mcan-rare: json needs --journal\n");
    return 2;
  }
  const RareResult res = load_campaign(opt.cfg);
  std::printf("%s", res.to_json().c_str());
  return write_json(opt, res);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    return 2;
  }
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  try {
    if (opt.command == "estimate") return cmd_estimate(opt, false);
    if (opt.command == "resume") return cmd_estimate(opt, true);
    if (opt.command == "compare") return cmd_compare(opt);
    if (opt.command == "json") return cmd_json(opt);
    std::fprintf(stderr, "mcan-rare: unknown command '%s' (see --help)\n",
                 opt.command.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mcan-rare: %s\n", e.what());
    return 2;
  }
}
