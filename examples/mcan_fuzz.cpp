// mcan-fuzz: coverage-guided scenario fuzzing as a command-line tool.
//
// Where mcan-check enumerates every flip pattern inside a window, mcan-fuzz
// searches the much larger space the enumerator cannot reach — traffic
// mixes, crashes, body bits, bus sizes — guided by FSM-transition and
// property-outcome coverage (src/fuzz/).  Campaigns are deterministic in
// (--seed, --max-execs) for any --jobs value; findings are auto-minimized,
// deduped and exported as replay-verified .scn reproducers that mcan-lint
// accepts.
//
//     mcan-fuzz run --protocol can --seed 7 --max-execs 5000
//     mcan-fuzz run --protocol major:5 --envelope --expect-classes none
//     mcan-fuzz triage fuzz-findings/*.scn
//     mcan-fuzz replay scenarios/modelcheck_can_k2_imo.scn
//     mcan-fuzz merge --corpus merged fuzz-corpus-a fuzz-corpus-b
//     mcan-fuzz stats --corpus fuzz-corpus
//
// Exit status: 0 = ran and every --expect-classes gate held, 1 = a gate
// failed (or an exported reproducer failed replay), 2 = usage error,
// 130 = interrupted (SIGINT/SIGTERM; corpus and findings still flushed).
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "fuzz/engine.hpp"
#include "fuzz/triage.hpp"
#include "scenario/sweep_cli.hpp"

namespace {

using namespace mcan;

// SIGINT/SIGTERM raise the engine's cooperative stop flag: the campaign
// finishes the round in flight, then cmd_run flushes the corpus and the
// findings exactly as on a normal exit.
// A lock-free atomic is the one flag type that is both async-signal-safe
// to store ([support.signal]) and safe for the engine's worker threads to
// poll (volatile sig_atomic_t would be a cross-thread data race).
std::atomic<bool> g_interrupted{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "signal handler requires a lock-free stop flag");

void on_signal(int) { g_interrupted.store(true); }

struct Options {
  SweepOptions sweep;
  std::string command;
  std::vector<std::string> inputs;  ///< positional files/dirs
  std::uint64_t seed = 1;
  std::uint64_t max_execs = 5000;
  double max_time_s = 0;
  int batch = 64;
  int max_flips = 0;      ///< 0 = FuzzBounds default
  bool envelope = false;  ///< cap disturbances at the protocol's tolerance
  bool mutate_protocol = false;
  std::string corpus_dir;
  std::string findings_dir = "fuzz-findings";
  std::string stats_json;
  std::optional<std::uint32_t> expect_classes;
};

void usage(std::FILE* to) {
  std::fputs(
      "usage: mcan-fuzz <run|triage|replay|merge|stats> [options] [files]\n"
      "\n"
      "Coverage-guided fuzzing of the scenario space: mutate flip patterns,\n"
      "fault timing, traffic mixes, crashes and bus sizes; keep inputs that\n"
      "reach new FSM transitions or property outcomes; minimize and export\n"
      "violations as replayable .scn files.\n"
      "\n"
      "commands:\n"
      "  run      fuzz a protocol (deterministic in --seed/--max-execs)\n"
      "  triage   minimize + dedupe + export .scn findings given as files\n"
      "  replay   run .scn files through the oracle and report classes\n"
      "  merge    fold corpus directories into --corpus, keeping novelty\n"
      "  stats    describe a corpus directory\n"
      "\n"
      "sweep options (protocol/nodes/jobs apply):\n",
      to);
  std::fputs(sweep_flags_help(), to);
  std::fputs(
      "\n"
      "tool options:\n"
      "  --seed N            campaign seed (default 1)\n"
      "  --max-execs N       execution budget (default 5000)\n"
      "  --max-time S        wall-clock budget in seconds (0 = none)\n"
      "  --batch N           executions per round (default 64)\n"
      "  --max-flips N       cap flips per input (default 8)\n"
      "  --envelope          cap disturbances at the protocol tolerance\n"
      "                      (m for MajorCAN_m) — the paper's <= m claim\n"
      "  --mutate-protocol   let mutations drift the protocol variant/m\n"
      "  --corpus DIR        seed from + save the corpus here\n"
      "  --findings DIR      write minimized reproducers here\n"
      "                      (default fuzz-findings)\n"
      "  --expect-classes L  comma list of violation classes that must all\n"
      "                      be found (none = require a clean campaign);\n"
      "                      exit 1 otherwise\n"
      "  --stats-json FILE   write campaign stats as JSON\n"
      "  -h, --help          this text\n",
      to);
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  out = std::strtoull(s.c_str(), nullptr, 10);
  return true;
}

bool parse_args(int argc, char** argv, Options& opt) {
  std::vector<std::string> rest;
  std::string error;
  if (!parse_sweep_args(argc, argv, opt.sweep, rest, error)) {
    std::fprintf(stderr, "mcan-fuzz: %s\n", error.c_str());
    return false;
  }
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const std::string& a = rest[i];
    auto need_value = [&](const char* flag, std::string& out) -> bool {
      if (i + 1 >= rest.size()) {
        std::fprintf(stderr, "mcan-fuzz: %s needs a value\n", flag);
        return false;
      }
      out = rest[++i];
      return true;
    };
    auto need_u64 = [&](const char* flag, std::uint64_t& out) -> bool {
      std::string raw;
      if (!need_value(flag, raw)) return false;
      if (!parse_u64(raw, out)) {
        std::fprintf(stderr, "mcan-fuzz: %s wants a number, got '%s'\n", flag,
                     raw.c_str());
        return false;
      }
      return true;
    };
    auto need_int = [&](const char* flag, int& out) -> bool {
      std::uint64_t u = 0;
      if (!need_u64(flag, u)) return false;
      if (u > 1000000) {
        std::fprintf(stderr, "mcan-fuzz: %s out of range\n", flag);
        return false;
      }
      out = static_cast<int>(u);
      return true;
    };
    std::string v;
    if (a == "-h" || a == "--help") {
      usage(stdout);
      // exit in the --help path: before any thread exists.
      std::exit(0);  // NOLINT(concurrency-mt-unsafe)
    } else if (a == "--seed") {
      if (!need_u64("--seed", opt.seed)) return false;
    } else if (a == "--max-execs") {
      if (!need_u64("--max-execs", opt.max_execs)) return false;
    } else if (a == "--max-time") {
      if (!need_value("--max-time", v)) return false;
      char* end = nullptr;
      opt.max_time_s = std::strtod(v.c_str(), &end);
      if (end == v.c_str() || *end != '\0' || opt.max_time_s < 0) {
        std::fprintf(stderr, "mcan-fuzz: --max-time wants seconds, got '%s'\n",
                     v.c_str());
        return false;
      }
    } else if (a == "--batch") {
      if (!need_int("--batch", opt.batch)) return false;
    } else if (a == "--max-flips") {
      if (!need_int("--max-flips", opt.max_flips)) return false;
    } else if (a == "--envelope") {
      opt.envelope = true;
    } else if (a == "--mutate-protocol") {
      opt.mutate_protocol = true;
    } else if (a == "--corpus") {
      if (!need_value("--corpus", opt.corpus_dir)) return false;
    } else if (a == "--findings") {
      if (!need_value("--findings", opt.findings_dir)) return false;
    } else if (a == "--expect-classes") {
      if (!need_value("--expect-classes", v)) return false;
      std::uint32_t mask = 0;
      if (!parse_fuzz_classes(v, mask, error)) {
        std::fprintf(stderr, "mcan-fuzz: %s\n", error.c_str());
        return false;
      }
      opt.expect_classes = mask;
    } else if (a == "--stats-json") {
      if (!need_value("--stats-json", opt.stats_json)) return false;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "mcan-fuzz: unknown option %s\n", a.c_str());
      return false;
    } else if (opt.command.empty()) {
      opt.command = a;
    } else {
      opt.inputs.push_back(a);
    }
  }
  if (opt.command.empty()) {
    std::fprintf(stderr, "mcan-fuzz: no command given\n");
    return false;
  }
  return true;
}

/// The single protocol a fuzz campaign targets.
ProtocolParams target_protocol(const Options& opt) {
  const std::vector<ProtocolParams> set = opt.sweep.protocols;
  if (set.size() > 1) {
    throw std::invalid_argument(
        "mcan-fuzz targets one protocol per campaign; give --protocol once");
  }
  return set.empty() ? ProtocolParams::standard_can() : set.front();
}

FuzzConfig make_config(const Options& opt, const ProtocolParams& proto) {
  FuzzConfig cfg;
  cfg.protocol = proto;
  cfg.n_nodes = opt.sweep.n_nodes;
  cfg.seed = opt.seed;
  cfg.max_execs = opt.max_execs;
  cfg.max_time_s = opt.max_time_s;
  cfg.jobs = opt.sweep.jobs;
  cfg.batch = opt.batch;
  cfg.bounds.mutate_protocol = opt.mutate_protocol;
  if (opt.max_flips > 0) cfg.bounds.max_flips = opt.max_flips;
  if (opt.envelope) {
    // The paper's <= m claim is about frame-tail disturbances with a
    // fixed set of live nodes: cap the flip count at the protocol's
    // tolerance (m for MajorCAN_m; the classic variants tolerate none,
    // but a cap below 2 would leave nothing to search), restrict flips to
    // the EOF-relative end-game window the model checker sweeps, and keep
    // crashes out — fail-silence is a separate fault hypothesis.  Without
    // --envelope the fuzzer happily shows that a single mid-frame body
    // flip defeats even MajorCAN (the corrupted receiver accepts by
    // majority but has no intact frame to deliver); see docs/FUZZING.md.
    cfg.bounds.max_flips =
        proto.variant == Variant::MajorCan ? proto.m : 2;
    cfg.bounds.allow_body = false;
    cfg.bounds.allow_crash = false;
    cfg.bounds.mutate_protocol = false;
  }
  return cfg;
}

std::string classes_found_string(std::uint32_t mask) {
  return fuzz_classes_to_string(mask);
}

int check_expect_gate(const Options& opt, std::uint32_t found) {
  if (!opt.expect_classes) return 0;
  const std::uint32_t want = *opt.expect_classes;
  if (want == 0 && found != 0) {
    std::fprintf(stderr,
                 "mcan-fuzz: FAIL: expected a clean campaign but found %s\n",
                 classes_found_string(found).c_str());
    return 1;
  }
  if ((want & found) != want) {
    std::fprintf(stderr,
                 "mcan-fuzz: FAIL: expected classes %s but found %s\n",
                 classes_found_string(want).c_str(),
                 classes_found_string(found).c_str());
    return 1;
  }
  return 0;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "mcan-fuzz: cannot write %s\n", path.c_str());
    return false;
  }
  f << content;
  return static_cast<bool>(f);
}

/// Expand positional args: directories contribute their *.scn files.
std::vector<std::string> expand_inputs(const std::vector<std::string>& in) {
  std::vector<std::string> files;
  for (const std::string& path : in) {
    if (std::filesystem::is_directory(path)) {
      std::vector<std::filesystem::path> found;
      for (const auto& e : std::filesystem::directory_iterator(path)) {
        if (e.path().extension() == ".scn") found.push_back(e.path());
      }
      std::sort(found.begin(), found.end());
      for (const auto& p : found) files.push_back(p.string());
    } else {
      files.push_back(path);
    }
  }
  return files;
}

int cmd_run(const Options& opt) {
  const ProtocolParams proto = target_protocol(opt);
  FuzzConfig cfg = make_config(opt, proto);
  cfg.stop = &g_interrupted;
  if (opt.sweep.progress) {
    cfg.on_round = [](const FuzzStats& st) {
      std::fprintf(stderr,
                   "\r%llu execs, corpus %d (%d sig bits, %d fsm), "
                   "%llu findings [%s]   ",
                   static_cast<unsigned long long>(st.execs), st.corpus_size,
                   st.signature_bits, st.fsm_transitions,
                   static_cast<unsigned long long>(st.findings),
                   classes_found_string(st.classes_seen).c_str());
    };
  }

  std::vector<ScenarioSpec> seeds;
  if (!opt.corpus_dir.empty() &&
      std::filesystem::is_directory(opt.corpus_dir)) {
    for (const std::string& f : expand_inputs({opt.corpus_dir})) {
      seeds.push_back(load_scenario_file(f));
    }
    std::printf("seeded %zu corpus entries from %s\n", seeds.size(),
                opt.corpus_dir.c_str());
  }

  const FuzzResult res = run_fuzz(cfg, seeds);
  if (opt.sweep.progress) std::fprintf(stderr, "\n");

  std::printf(
      "%s nodes=%d seed=%llu: %llu execs, %llu admitted (corpus %d after"
      " %llu evictions), %d signature bits (%d FSM transitions),"
      " %llu findings [%s]\n",
      proto.name().c_str(), cfg.n_nodes,
      static_cast<unsigned long long>(cfg.seed),
      static_cast<unsigned long long>(res.stats.execs),
      static_cast<unsigned long long>(res.stats.admitted),
      res.stats.corpus_size,
      static_cast<unsigned long long>(res.stats.evicted),
      res.stats.signature_bits, res.stats.fsm_transitions,
      static_cast<unsigned long long>(res.stats.findings),
      classes_found_string(res.stats.classes_seen).c_str());

  bool replay_failed = false;
  if (!res.findings.empty()) {
    const std::string campaign =
        proto.name() + ", seed " + std::to_string(opt.seed) + ", " +
        std::to_string(res.stats.execs) + " execs";
    const std::vector<TriagedFinding> triaged =
        export_findings(res.findings, opt.findings_dir, campaign);
    for (const TriagedFinding& t : triaged) {
      std::printf("  %s: %s (%d raw, exec %llu)%s\n",
                  fuzz_class_name(t.cls),
                  (opt.findings_dir + "/" + finding_file_name(t)).c_str(),
                  t.raw_count,
                  static_cast<unsigned long long>(t.exec_index),
                  t.replay_ok ? " replay verified" : " REPLAY FAILED");
      replay_failed = replay_failed || !t.replay_ok;
    }
  }

  if (!opt.corpus_dir.empty()) {
    const int n = save_corpus(res.corpus, opt.corpus_dir);
    std::printf("corpus: %d entries written to %s\n", n,
                opt.corpus_dir.c_str());
  }
  if (!opt.stats_json.empty() &&
      !write_file(opt.stats_json, fuzz_stats_json(res.stats, proto,
                                                  cfg.n_nodes, cfg.seed))) {
    return 2;
  }
  if (g_interrupted.load()) {
    std::fprintf(stderr, "mcan-fuzz: interrupted after %llu execs; corpus "
                         "and findings flushed\n",
                 static_cast<unsigned long long>(res.stats.execs));
    return 130;
  }
  if (replay_failed) return 1;
  return check_expect_gate(opt, res.stats.classes_seen);
}

int cmd_triage(const Options& opt) {
  std::vector<FuzzFinding> raw;
  std::uint32_t found = 0;
  for (const std::string& path : expand_inputs(opt.inputs)) {
    const ScenarioSpec spec = load_scenario_file(path);
    const FuzzVerdict v = run_fuzz_case(spec);
    if (!v.violation()) {
      std::printf("%s: none\n", path.c_str());
      continue;
    }
    found |= v.classes;
    raw.push_back({spec, v, raw.size()});
  }
  const std::vector<TriagedFinding> triaged =
      export_findings(raw, opt.findings_dir, "triage of " +
                          std::to_string(raw.size()) + " file(s)");
  bool replay_failed = false;
  for (const TriagedFinding& t : triaged) {
    std::printf("%s: %s/%s (%d raw)%s\n", fuzz_class_name(t.cls),
                opt.findings_dir.c_str(), finding_file_name(t).c_str(),
                t.raw_count, t.replay_ok ? " replay verified"
                                         : " REPLAY FAILED");
    replay_failed = replay_failed || !t.replay_ok;
  }
  if (replay_failed) return 1;
  return check_expect_gate(opt, found);
}

int cmd_replay(const Options& opt) {
  std::uint32_t found = 0;
  for (const std::string& path : expand_inputs(opt.inputs)) {
    const ScenarioSpec spec = load_scenario_file(path);
    const FuzzVerdict v = run_fuzz_case(spec);
    found |= v.classes;
    std::printf("%s: %s (%d signature bits)\n", path.c_str(),
                classes_found_string(v.classes).c_str(), v.sig.popcount());
    if (v.violation()) std::printf("  %s\n", v.detail.c_str());
  }
  return check_expect_gate(opt, found);
}

int cmd_merge(const Options& opt) {
  if (opt.corpus_dir.empty()) {
    std::fprintf(stderr, "mcan-fuzz: merge needs --corpus OUT-DIR\n");
    return 2;
  }
  Corpus corpus;
  for (const std::string& dir : opt.inputs) {
    const int n = load_corpus_dir(corpus, dir);
    std::printf("%s: %d novel entries\n", dir.c_str(), n);
  }
  corpus.minimize();
  const int n = save_corpus(corpus, opt.corpus_dir);
  std::printf("merged corpus: %d entries (%d signature bits) -> %s\n", n,
              corpus.accumulated().popcount(), opt.corpus_dir.c_str());
  return 0;
}

int cmd_stats(const Options& opt) {
  if (opt.corpus_dir.empty()) {
    std::fprintf(stderr, "mcan-fuzz: stats needs --corpus DIR\n");
    return 2;
  }
  Corpus corpus;
  load_corpus_dir(corpus, opt.corpus_dir);
  std::printf("%s: %zu entries, %d signature bits, %d FSM transitions\n",
              opt.corpus_dir.c_str(), corpus.size(),
              corpus.accumulated().popcount(),
              corpus.accumulated().fsm_popcount());
  for (const CorpusEntry& e : corpus.entries()) {
    std::printf("  energy %3d  flips %zu  traffic %zu  %s\n", e.energy,
                e.spec.flips.size(), e.spec.traffic.size(),
                e.spec.protocol.name().c_str());
  }
  if (!opt.stats_json.empty()) {
    FuzzStats st;
    st.corpus_size = static_cast<int>(corpus.size());
    st.signature_bits = corpus.accumulated().popcount();
    st.fsm_transitions = corpus.accumulated().fsm_popcount();
    if (!write_file(opt.stats_json,
                    fuzz_stats_json(st, target_protocol(opt),
                                    opt.sweep.n_nodes, opt.seed))) {
      return 2;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage(stderr);
    return 2;
  }
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  try {
    if (opt.command == "run") return cmd_run(opt);
    if (opt.command == "triage") return cmd_triage(opt);
    if (opt.command == "replay") return cmd_replay(opt);
    if (opt.command == "merge") return cmd_merge(opt);
    if (opt.command == "stats") return cmd_stats(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mcan-fuzz: %s\n", e.what());
    return 2;
  }
  std::fprintf(stderr, "mcan-fuzz: unknown command '%s'\n",
               opt.command.c_str());
  usage(stderr);
  return 2;
}
