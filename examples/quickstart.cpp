// Quickstart: build a 4-node MajorCAN_5 bus, broadcast a frame, watch every
// node deliver it, then repeat with an injected end-of-frame disturbance and
// see the protocol keep all-or-none semantics.
#include <cstdio>

#include "core/network.hpp"
#include "fault/scripted.hpp"

int main() {
  using namespace mcan;

  // A bus of 4 nodes speaking MajorCAN with the paper's proposed m = 5.
  Network net(4, ProtocolParams::major_can(5));

  // Node 0 broadcasts one 4-byte frame.
  const std::uint8_t payload[] = {0x12, 0x34, 0x56, 0x78};
  net.node(0).enqueue(Frame::make_data(0x123, payload));
  net.run_until_quiet();

  std::printf("clean channel:\n");
  for (int i = 1; i < net.size(); ++i) {
    std::printf("  node %d delivered %zu frame(s)\n", i,
                net.deliveries(i).size());
  }

  // Same broadcast, but node 1's view of EOF bit 3 is disturbed — the kind
  // of error that breaks agreement in standard CAN.  MajorCAN's end-game
  // (error flag + majority vote over 2m-1 sampled bits) keeps every node
  // consistent.
  Network net2(4, ProtocolParams::major_can(5));
  ScriptedFaults faults;
  faults.add(FaultTarget::eof_bit(/*node=*/1, /*eof_pos=*/2));
  net2.set_injector(faults);
  net2.node(0).enqueue(Frame::make_data(0x123, payload));
  net2.run_until_quiet();

  std::printf("disturbed EOF (node 1, bit 3):\n");
  for (int i = 1; i < net2.size(); ++i) {
    std::printf("  node %d delivered %zu frame(s)\n", i,
                net2.deliveries(i).size());
  }
  std::printf("transmitter attempts: %zu\n",
              net2.log().count(EventKind::SofSent, 0));
  return 0;
}
