// The paper's motivating domain: a distributed automotive control system
// where nodes must agree on safety-critical broadcasts with minimal memory
// and CPU overhead (no room for higher-level protocol stacks).
//
// We model a small vehicle bus — brake controller, four wheel ECUs and a
// dashboard — where the brake controller broadcasts brake-state *toggle*
// commands (exactly the kind of message Zeltwanger's recommendations forbid
// on raw CAN because a double reception toggles a receiver twice).  The
// same disturbed bus is run under standard CAN and MajorCAN_5 and each
// wheel's final brake state is compared.
#include <cstdio>
#include <vector>

#include "core/network.hpp"
#include "fault/scripted.hpp"

namespace {

using namespace mcan;

constexpr std::uint32_t kBrakeCmdId = 0x050;  // high priority
constexpr int kWheels = 4;

struct WheelState {
  bool braking = false;
  int commands_seen = 0;
};

/// Run `toggles` brake-toggle broadcasts over a bus where the i-th command
/// suffers the Fig. 1b / Fig. 3a disturbance patterns, and report each
/// wheel's resulting state.
std::vector<WheelState> drive(const ProtocolParams& proto) {
  // node 0 = brake controller, 1..4 = wheel ECUs, 5 = dashboard.
  Network net(2 + kWheels, proto);
  std::vector<WheelState> wheels(kWheels);

  for (int w = 0; w < kWheels; ++w) {
    net.node(1 + w).add_delivery_handler(
        [&wheels, w](const Frame& f, BitTime) {
          if (f.id != kBrakeCmdId) return;
          wheels[static_cast<std::size_t>(w)].braking =
              !wheels[static_cast<std::size_t>(w)].braking;
          ++wheels[static_cast<std::size_t>(w)].commands_seen;
        });
  }

  ScriptedFaults inj;
  net.set_injector(inj);
  const int last = proto.eof_bits() - 1;

  auto send_command = [&](int c) {
    Frame cmd = Frame::make_blank(kBrakeCmdId, 1);
    cmd.data[0] = static_cast<std::uint8_t>(c);
    net.node(0).enqueue(cmd);
    net.run_until_quiet();
  };

  // Command 0: double-reception pattern — wheels 3,4 see a phantom in the
  // last-but-one EOF bit of the *next* frame on the bus.  (Faults are armed
  // just in time because retransmissions advance the frame index.)
  const auto frame0 =
      static_cast<int>(net.log().count(EventKind::SofSent, 0));
  inj.add(FaultTarget::eof_bit(3, last - 1, frame0));
  inj.add(FaultTarget::eof_bit(4, last - 1, frame0));
  send_command(0);

  // Command 1: the paper's new scenario — phantom at wheels 2,3 plus the
  // brake controller missing the error flag in its last EOF bit.
  const auto frame1 =
      static_cast<int>(net.log().count(EventKind::SofSent, 0));
  inj.add(FaultTarget::eof_bit(2, last - 1, frame1));
  inj.add(FaultTarget::eof_bit(3, last - 1, frame1));
  inj.add(FaultTarget::eof_bit(0, last, frame1));
  send_command(1);

  return wheels;
}

void report(const char* title, const std::vector<WheelState>& wheels) {
  std::printf("%s\n", title);
  bool agree = true;
  for (int w = 0; w < kWheels; ++w) {
    const WheelState& s = wheels[static_cast<std::size_t>(w)];
    std::printf("  wheel %d: braking=%s (saw %d command frames)\n", w + 1,
                s.braking ? "YES" : "no ", s.commands_seen);
    agree = agree && s.braking == wheels[0].braking;
  }
  std::printf("  => wheels %s\n\n", agree ? "AGREE" : "DISAGREE: the car pulls to one side");
}

}  // namespace

int main() {
  std::printf("=== Automotive brake bus: 2 toggle commands, 5 disturbances ===\n\n");
  std::printf("command 0 hits the double-reception pattern (Fig 1b);\n");
  std::printf("command 1 hits the new-scenario pattern (Fig 3a).\n\n");

  report("standard CAN:", drive(ProtocolParams::standard_can()));
  report("MajorCAN_5:", drive(ProtocolParams::major_can(5)));

  std::printf(
      "reading: on raw CAN, wheels receive different numbers of copies of a\n"
      "toggle command (double reception + omission), leaving the vehicle\n"
      "with split brake state; MajorCAN delivers every command exactly once\n"
      "to every wheel at a cost of 3 extra bits per frame.\n");
  return 0;
}
