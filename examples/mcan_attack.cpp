// mcan-attack: the adversarial attacker toolkit as a command-line tool.
//
// Three entry points into src/attack/:
//
//   sweep   per protocol, find the minimum targeted-flip budget that
//           defeats atomic broadcast (attack/optimize.hpp: heuristic
//           candidates first, then the exhaustive model-check grid), and
//           certify the error-flooder's time-to-bus-off.  With
//           --expect-budget K the sweep is a CI gate: it fails unless the
//           minimum is exactly K and every budget below K was covered
//           exhaustively clean.  --expect-clean demands no defeating
//           pattern up to --budget.
//   fuzz    a coverage-guided campaign with the attack genome space open
//           (glitch / busoff / spoof directives mutate alongside flips);
//           findings are ddmin-minimized and exported as attack-prefixed
//           replay-verified .scn reproducers that mcan-lint accepts.
//   replay  run .scn files (attack directives included) through the fuzz
//           oracle and report violation classes.
//
//     mcan-attack sweep --protocol can --budget 3 --expect-budget 1
//     mcan-attack sweep --protocol major:5 --budget 2 --expect-clean
//     mcan-attack fuzz --protocol can --seed 7 --max-execs 3000
//         --attacks 2 --budget 2 --expect-classes attackspoof,attackbusoff
//     mcan-attack replay scenarios/attack_spoof_can.scn
//
// Exit status: 0 = every gate held, 1 = a gate failed (or a reproducer
// failed replay), 2 = usage error.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "attack/optimize.hpp"
#include "fuzz/engine.hpp"
#include "fuzz/triage.hpp"
#include "scenario/sweep_cli.hpp"

namespace {

using namespace mcan;

struct Options {
  SweepOptions sweep;
  std::string command;
  std::vector<std::string> inputs;
  std::uint64_t seed = 1;
  std::uint64_t max_execs = 3000;
  int batch = 64;
  int budget = 3;        ///< sweep: max budget probed; fuzz: glitch cap
  int max_attacks = 2;   ///< fuzz: attack directives per genome
  bool allow_spoof = true;
  bool allow_busoff = true;
  bool with_faults = false;  ///< fuzz: also mutate random flips/crashes
  long long max_cases = 0;  ///< sweep: exhaustive budget per k (0 = all)
  std::optional<int> expect_budget;
  bool expect_clean = false;
  std::optional<std::uint32_t> expect_classes;
  std::string findings_dir = "attack-findings";
  std::string stats_json;
  std::string emit_scn;  ///< sweep: witness .scn path prefix
};

void usage(std::FILE* to) {
  std::fputs(
      "usage: mcan-attack <sweep|fuzz|replay> [options] [files]\n"
      "\n"
      "Adversarial attacker models against the protocol set: a reactive\n"
      "bit-glitcher, an error-frame flooder driving victims to bus-off,\n"
      "and a spoofed-ID attacker — optimized, fuzzed and replayed.\n"
      "\n"
      "commands:\n"
      "  sweep    minimum defeating glitch budget + time-to-bus-off per\n"
      "           protocol (exhaustive certification below the minimum)\n"
      "  fuzz     coverage-guided campaign over the attack genome space\n"
      "  replay   run .scn files through the oracle and report classes\n"
      "\n"
      "sweep options (protocol/nodes/jobs apply):\n",
      to);
  std::fputs(sweep_flags_help(), to);
  std::fputs(
      "\n"
      "tool options:\n"
      "  --budget N          sweep: probe budgets 1..N (default 3);\n"
      "                      fuzz: total glitch-flip budget per genome\n"
      "  --max-cases N       sweep: exhaustive case cap per budget (0=all)\n"
      "  --expect-budget K   gate: minimum defeating budget must be K and\n"
      "                      budgets below K exhaustively clean\n"
      "  --expect-clean      gate: no violation up to --budget (sweep) /\n"
      "                      no violation class found (fuzz, replay)\n"
      "  --seed N            fuzz campaign seed (default 1)\n"
      "  --max-execs N       fuzz execution budget (default 3000)\n"
      "  --batch N           fuzz executions per round (default 64)\n"
      "  --attacks N         fuzz: attack directives per genome (default 2)\n"
      "  --no-spoof          fuzz: disable the spoofed-ID attacker\n"
      "  --no-busoff         fuzz: disable the bus-off attacker\n"
      "  --with-faults       fuzz: mutate random flips/crashes alongside\n"
      "                      the attackers (default: attacks only)\n"
      "  --findings DIR      write minimized reproducers here\n"
      "                      (default attack-findings)\n"
      "  --expect-classes L  comma list of classes that must all be found\n"
      "  --stats-json FILE   write sweep/fuzz results as JSON\n"
      "  --emit-scn PREFIX   sweep: write each protocol's minimum-budget\n"
      "                      witness as PREFIX<protocol>.scn\n"
      "  -h, --help          this text\n",
      to);
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  out = std::strtoull(s.c_str(), nullptr, 10);
  return true;
}

bool parse_args(int argc, char** argv, Options& opt) {
  // The sweep parser owns a --budget flag of its own (case cap per sweep);
  // here --budget means the attacker's flip budget, so pull it out before
  // the sweep parser can swallow it.  --max-cases covers the case cap.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (i + 1 < argc && std::string(argv[i]) == "--budget") {
      std::uint64_t u = 0;
      if (!parse_u64(argv[i + 1], u) || u < 1 || u > 64) {
        std::fprintf(stderr, "mcan-attack: --budget wants 1..64, got '%s'\n",
                     argv[i + 1]);
        return false;
      }
      opt.budget = static_cast<int>(u);
      ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  std::vector<std::string> rest;
  std::string error;
  if (!parse_sweep_args(static_cast<int>(args.size()), args.data(), opt.sweep,
                        rest, error)) {
    std::fprintf(stderr, "mcan-attack: %s\n", error.c_str());
    return false;
  }
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const std::string& a = rest[i];
    auto need_value = [&](const char* flag, std::string& out) -> bool {
      if (i + 1 >= rest.size()) {
        std::fprintf(stderr, "mcan-attack: %s needs a value\n", flag);
        return false;
      }
      out = rest[++i];
      return true;
    };
    auto need_int = [&](const char* flag, int& out) -> bool {
      std::string raw;
      std::uint64_t u = 0;
      if (!need_value(flag, raw)) return false;
      if (!parse_u64(raw, u) || u > 1000000) {
        std::fprintf(stderr, "mcan-attack: %s wants a number, got '%s'\n",
                     flag, raw.c_str());
        return false;
      }
      out = static_cast<int>(u);
      return true;
    };
    std::string v;
    if (a == "-h" || a == "--help") {
      usage(stdout);
      std::exit(0);  // NOLINT(concurrency-mt-unsafe)
    } else if (a == "--seed") {
      if (!need_value("--seed", v) || !parse_u64(v, opt.seed)) return false;
    } else if (a == "--max-execs") {
      if (!need_value("--max-execs", v) || !parse_u64(v, opt.max_execs)) {
        return false;
      }
    } else if (a == "--batch") {
      if (!need_int("--batch", opt.batch)) return false;
    } else if (a == "--attacks") {
      if (!need_int("--attacks", opt.max_attacks)) return false;
    } else if (a == "--max-cases") {
      int n = 0;
      if (!need_int("--max-cases", n)) return false;
      opt.max_cases = n;
    } else if (a == "--expect-budget") {
      int n = 0;
      if (!need_int("--expect-budget", n)) return false;
      opt.expect_budget = n;
    } else if (a == "--expect-clean") {
      opt.expect_clean = true;
    } else if (a == "--no-spoof") {
      opt.allow_spoof = false;
    } else if (a == "--no-busoff") {
      opt.allow_busoff = false;
    } else if (a == "--with-faults") {
      opt.with_faults = true;
    } else if (a == "--findings") {
      if (!need_value("--findings", opt.findings_dir)) return false;
    } else if (a == "--expect-classes") {
      if (!need_value("--expect-classes", v)) return false;
      std::uint32_t mask = 0;
      if (!parse_fuzz_classes(v, mask, error)) {
        std::fprintf(stderr, "mcan-attack: %s\n", error.c_str());
        return false;
      }
      opt.expect_classes = mask;
    } else if (a == "--stats-json") {
      if (!need_value("--stats-json", opt.stats_json)) return false;
    } else if (a == "--emit-scn") {
      if (!need_value("--emit-scn", opt.emit_scn)) return false;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "mcan-attack: unknown option %s\n", a.c_str());
      return false;
    } else if (opt.command.empty()) {
      opt.command = a;
    } else {
      opt.inputs.push_back(a);
    }
  }
  if (opt.command.empty()) {
    std::fprintf(stderr, "mcan-attack: no command given\n");
    return false;
  }
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "mcan-attack: cannot write %s\n", path.c_str());
    return false;
  }
  f << content;
  return static_cast<bool>(f);
}

std::vector<std::string> expand_inputs(const std::vector<std::string>& in) {
  std::vector<std::string> files;
  for (const std::string& path : in) {
    if (std::filesystem::is_directory(path)) {
      std::vector<std::filesystem::path> found;
      for (const auto& e : std::filesystem::directory_iterator(path)) {
        if (e.path().extension() == ".scn") found.push_back(e.path());
      }
      std::sort(found.begin(), found.end());
      for (const auto& p : found) files.push_back(p.string());
    } else {
      files.push_back(path);
    }
  }
  return files;
}

int check_expect_gate(const Options& opt, std::uint32_t found) {
  std::uint32_t want = 0;
  bool gated = false;
  if (opt.expect_clean) {
    gated = true;
  } else if (opt.expect_classes) {
    gated = true;
    want = *opt.expect_classes;
  }
  if (!gated) return 0;
  if (want == 0 && found != 0) {
    std::fprintf(stderr, "mcan-attack: FAIL: expected clean but found %s\n",
                 fuzz_classes_to_string(found).c_str());
    return 1;
  }
  if ((want & found) != want) {
    std::fprintf(stderr, "mcan-attack: FAIL: expected classes %s, found %s\n",
                 fuzz_classes_to_string(want).c_str(),
                 fuzz_classes_to_string(found).c_str());
    return 1;
  }
  return 0;
}

// --- sweep ----------------------------------------------------------------

int cmd_sweep(const Options& opt) {
  const std::vector<ProtocolParams> protocols =
      opt.sweep.protocols.empty() ? default_protocol_set()
                                  : opt.sweep.protocols;
  BudgetProbeOptions po;
  po.jobs = opt.sweep.jobs;
  po.max_cases = opt.max_cases;
  if (opt.sweep.win_lo) po.win_lo = *opt.sweep.win_lo;

  std::string json = "{\"nodes\": " + std::to_string(opt.sweep.n_nodes) +
                     ", \"max_budget\": " + std::to_string(opt.budget) +
                     ", \"protocols\": [\n";
  int rc = 0;
  bool first = true;
  for (const ProtocolParams& proto : protocols) {
    const MinBudgetResult res = find_min_defeating_budget(
        proto, opt.sweep.n_nodes, opt.budget, po);
    const AttackReport busoff =
        measure_time_to_busoff(proto, opt.sweep.n_nodes);
    std::printf("%s\n", res.summary().c_str());
    std::printf("  bus-off flooder: %s\n", busoff.summary().c_str());

    if (!first) json += ",\n";
    first = false;
    json += "  {\"protocol\": \"" + proto.name() +
            "\", \"min_defeating_budget\": " + std::to_string(res.budget) +
            ", \"clean_below_certified\": " +
            (res.clean_below_certified() ? "true" : "false") +
            ", \"busoff_t\": " + std::to_string(busoff.busoff_t) +
            ", \"busoff_attempts\": " +
            std::to_string(busoff.busoff_attempts) +
            ", \"victim_peak_tec\": " +
            std::to_string(busoff.victim_peak_tec) + ", \"probes\": [";
    for (std::size_t i = 0; i < res.probes.size(); ++i) {
      const BudgetProbe& p = res.probes[i];
      if (i) json += ", ";
      json += "{\"k\": " + std::to_string(p.k) +
              ", \"cases\": " + std::to_string(p.cases) +
              ", \"exhaustive\": " + (p.exhaustive ? "true" : "false") +
              ", \"violation\": " + (p.violation ? "true" : "false") + "}";
    }
    json += "]}";

    if (opt.expect_budget) {
      if (res.budget != *opt.expect_budget) {
        std::fprintf(stderr,
                     "mcan-attack: FAIL: %s expected min budget %d, got %d\n",
                     proto.name().c_str(), *opt.expect_budget, res.budget);
        rc = 1;
      } else if (opt.max_cases == 0 && !res.clean_below_certified()) {
        // Exhaustive certification is only demanded when the search was
        // unbounded; with --max-cases the gate checks the minimum alone.
        std::fprintf(stderr,
                     "mcan-attack: FAIL: %s budgets below %d not "
                     "exhaustively certified clean\n",
                     proto.name().c_str(), res.budget);
        rc = 1;
      }
    }
    if (!opt.emit_scn.empty() && res.budget > 0) {
      const BudgetProbe& hit = res.probes.back();
      ScenarioSpec wit = witness_scenario(proto, opt.sweep.n_nodes, hit);
      std::string stem = proto.name();
      std::transform(stem.begin(), stem.end(), stem.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      ScenarioWriteOptions wo;
      wo.header = {"Minimum-budget glitch witness for " + proto.name() +
                       " (N=" + std::to_string(opt.sweep.n_nodes) + "): " +
                       std::to_string(res.budget) +
                       " targeted view flips defeat atomic broadcast.",
                   hit.witness_desc,
                   "Generated by: mcan-attack sweep --emit-scn"};
      const std::string path = opt.emit_scn + stem + ".scn";
      if (!write_file(path, write_scenario(wit, wo))) return 2;
      std::printf("  witness written to %s\n", path.c_str());
    }
    if (opt.expect_clean && res.budget != -1) {
      std::fprintf(stderr,
                   "mcan-attack: FAIL: %s expected clean up to budget %d "
                   "but budget %d defeats it\n",
                   proto.name().c_str(), opt.budget, res.budget);
      rc = 1;
    }
  }
  json += "\n]}\n";
  if (!opt.stats_json.empty() && !write_file(opt.stats_json, json)) return 2;
  return rc;
}

// --- fuzz -----------------------------------------------------------------

ProtocolParams target_protocol(const Options& opt) {
  if (opt.sweep.protocols.size() > 1) {
    throw std::invalid_argument(
        "mcan-attack fuzz targets one protocol; give --protocol once");
  }
  return opt.sweep.protocols.empty() ? ProtocolParams::standard_can()
                                     : opt.sweep.protocols.front();
}

int cmd_fuzz(const Options& opt) {
  const ProtocolParams proto = target_protocol(opt);
  FuzzConfig cfg;
  cfg.protocol = proto;
  cfg.n_nodes = opt.sweep.n_nodes;
  cfg.seed = opt.seed;
  cfg.max_execs = opt.max_execs;
  cfg.jobs = opt.sweep.jobs;
  cfg.batch = opt.batch;
  cfg.bounds.max_attacks = std::max(1, opt.max_attacks);
  cfg.bounds.attack_budget = std::max(1, opt.budget);
  cfg.bounds.allow_spoof = opt.allow_spoof;
  cfg.bounds.allow_busoff = opt.allow_busoff;
  if (!opt.with_faults) {
    // Pure-attacker threat model (the one the sweep's budgets certify):
    // no random flips, body corruption or crashes alongside the attacks —
    // otherwise a mid-frame body flip defeats any protocol and the
    // --expect-clean gate would measure the fault envelope, not the
    // attacker.  --with-faults re-opens the combined space.
    cfg.bounds.max_flips = 0;
    cfg.bounds.allow_body = false;
    cfg.bounds.allow_crash = false;
  }

  const FuzzResult res = run_fuzz(cfg, {});
  std::printf(
      "%s nodes=%d seed=%llu attacks<=%d budget<=%d: %llu execs, "
      "%llu findings [%s]\n",
      proto.name().c_str(), cfg.n_nodes,
      static_cast<unsigned long long>(cfg.seed), cfg.bounds.max_attacks,
      cfg.bounds.attack_budget,
      static_cast<unsigned long long>(res.stats.execs),
      static_cast<unsigned long long>(res.stats.findings),
      fuzz_classes_to_string(res.stats.classes_seen).c_str());

  bool replay_failed = false;
  if (!res.findings.empty()) {
    std::vector<TriagedFinding> triaged = triage_findings(res.findings);
    std::filesystem::create_directories(opt.findings_dir);
    const std::string campaign =
        "attack campaign: " + proto.name() + ", seed " +
        std::to_string(opt.seed);
    for (TriagedFinding& t : triaged) {
      // Attack-prefixed reproducer names (the name is presentation; the
      // replay verdict was computed on the genome, which is unchanged).
      if (t.spec.name.rfind("fuzz-", 0) == 0) {
        t.spec.name = "attack-" + t.spec.name.substr(5);
      }
      const std::string path =
          opt.findings_dir + "/" + finding_file_name(t);
      if (!write_file(path, export_finding(t, campaign))) return 2;
      std::printf("  %s: %s (%d raw)%s\n", fuzz_class_name(t.cls),
                  path.c_str(), t.raw_count,
                  t.replay_ok ? " replay verified" : " REPLAY FAILED");
      replay_failed = replay_failed || !t.replay_ok;
    }
  }
  if (!opt.stats_json.empty() &&
      !write_file(opt.stats_json, fuzz_stats_json(res.stats, proto,
                                                  cfg.n_nodes, cfg.seed))) {
    return 2;
  }
  if (replay_failed) return 1;
  return check_expect_gate(opt, res.stats.classes_seen);
}

int cmd_replay(const Options& opt) {
  std::uint32_t found = 0;
  for (const std::string& path : expand_inputs(opt.inputs)) {
    const ScenarioSpec spec = load_scenario_file(path);
    const FuzzVerdict v = run_fuzz_case(spec);
    found |= v.classes;
    std::printf("%s: %s\n", path.c_str(),
                fuzz_classes_to_string(v.classes).c_str());
    if (v.violation()) std::printf("  %s\n", v.detail.c_str());
  }
  return check_expect_gate(opt, found);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage(stderr);
    return 2;
  }
  try {
    if (opt.command == "sweep") return cmd_sweep(opt);
    if (opt.command == "fuzz") return cmd_fuzz(opt);
    if (opt.command == "replay") return cmd_replay(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mcan-attack: %s\n", e.what());
    return 2;
  }
  std::fprintf(stderr, "mcan-attack: unknown command '%s'\n",
               opt.command.c_str());
  usage(stderr);
  return 2;
}
