// A realistic control-bus application on top of the broadcast layer: an
// engine ECU and a brake ECU periodically broadcast signal-packed frames
// (mini-DBC codec + periodic scheduler) while the channel suffers random
// disturbances; a dashboard node decodes everything it receives.
//
// Run once over standard CAN and once over MajorCAN_5 to see the broadcast
// layer's consistency reflected in application state: under CAN the two
// consumer nodes end up with different views of the same bus.
#include <cstdio>

#include "app/scheduler.hpp"
#include "app/signals.hpp"
#include "core/network.hpp"
#include "fault/random_faults.hpp"

namespace {

using namespace mcan;

MessageSpec engine_spec() {
  MessageSpec m;
  m.name = "engine";
  m.can_id = 0x0c8;
  m.dlc = 8;
  m.signals = {{"rpm", 0, 16, 0.25, 0.0, false},
               {"coolant_temp", 16, 8, 1.0, -40.0, false}};
  return m;
}

MessageSpec brake_spec() {
  MessageSpec m;
  m.name = "brake";
  m.can_id = 0x064;  // brakes outrank engine chatter
  m.dlc = 8;
  m.signals = {{"pressure", 0, 12, 0.1, 0.0, false},
               {"abs_active", 12, 1, 1.0, 0.0, false}};
  return m;
}

struct ConsumerState {
  int engine_frames = 0;
  int brake_frames = 0;
  double last_rpm = 0;
  double last_pressure = 0;
};

void run(const ProtocolParams& proto, double ber_star) {
  // 0 = engine ECU, 1 = brake ECU, 2 = instrument cluster, 3 = logger.
  Network net(4, proto);
  RandomFaults noise(ber_star, Rng(2024, 0x11));
  net.set_injector(noise);

  const MessageSpec engine = engine_spec();
  const MessageSpec brake = brake_spec();

  PeriodicScheduler engine_sched(net.node(0));
  engine_sched.add({engine, 600, 0, [](BitTime now) {
                      const double rpm = 900.0 + (now % 5000) / 2.0;
                      return SignalValues{{"rpm", rpm},
                                          {"coolant_temp", 88.0}};
                    }});
  PeriodicScheduler brake_sched(net.node(1));
  brake_sched.add({brake, 400, 150, [](BitTime now) {
                     const bool braking = (now / 2000) % 2 == 1;
                     return SignalValues{
                         {"pressure", braking ? 85.0 : 0.0},
                         {"abs_active", braking && (now % 3 == 0) ? 1.0 : 0.0}};
                   }});

  ConsumerState consumers[2];
  for (int c = 0; c < 2; ++c) {
    net.node(2 + c).add_delivery_handler(
        [&consumers, c, &engine, &brake](const Frame& f, BitTime) {
          ConsumerState& s = consumers[c];
          if (f.id == engine.can_id) {
            ++s.engine_frames;
            s.last_rpm = decode_signal(*engine.find("rpm"), f);
          } else if (f.id == brake.can_id) {
            ++s.brake_frames;
            s.last_pressure = decode_signal(*brake.find("pressure"), f);
          }
        });
  }

  const BitTime horizon = 60000;
  for (BitTime t = 0; t < horizon; ++t) {
    engine_sched.tick(net.sim().now());
    brake_sched.tick(net.sim().now());
    net.sim().step();
  }
  noise.set_rate(0.0);
  net.run_until_quiet();

  std::printf("-- %s, ber* = %g --\n", proto.name().c_str(), ber_star);
  std::printf("  releases: engine=%d (overruns %d), brake=%d (overruns %d)\n",
              engine_sched.releases(), engine_sched.overruns(),
              brake_sched.releases(), brake_sched.overruns());
  for (int c = 0; c < 2; ++c) {
    std::printf(
        "  consumer %d: engine frames=%d (last rpm %.1f), brake frames=%d "
        "(last pressure %.1f)\n",
        c, consumers[c].engine_frames, consumers[c].last_rpm,
        consumers[c].brake_frames, consumers[c].last_pressure);
  }
  const bool agree =
      consumers[0].engine_frames == consumers[1].engine_frames &&
      consumers[0].brake_frames == consumers[1].brake_frames;
  std::printf("  => consumer views %s\n\n",
              agree ? "IDENTICAL" : "DIVERGED (copies lost or duplicated)");
}

}  // namespace

int main() {
  std::printf("=== Vehicle signal bus: periodic ECU traffic under noise ===\n\n");
  const double noisy = 5e-4;
  run(ProtocolParams::standard_can(), 0.0);
  run(ProtocolParams::standard_can(), noisy);
  run(ProtocolParams::major_can(5), noisy);
  std::printf(
      "reading: with a clean channel both stacks behave identically; under\n"
      "noise, raw CAN's tail inconsistencies make the two consumers see\n"
      "different frame counts for the same traffic, while MajorCAN keeps\n"
      "their views identical for 3 extra bits per frame.\n");
  return 0;
}
