// mcan-client — submit and track campaigns on a running mcan-served.
//
//     mcan-client --socket /tmp/mcan.sock submit fuzz
//         --protocol major:5 --seed 7 --max-execs 4000 --wait
//     mcan-client submit rare --protocol can --trials 20000 --wait
//         --expect-within 3
//     mcan-client status 1
//     mcan-client result 1
//     mcan-client stats
//     mcan-client cancel 1
//     mcan-client shutdown
//
// Results are the daemon's deterministic job-result bytes (fuzz: the
// --stats-json line; rare: the estimate JSON; check: the sweep summary) —
// byte-identical to a local single-process run of the same spec, which is
// what the --expect-* gates (same semantics as mcan-fuzz / mcan-rare)
// check against.
//
// Exit status: 0 = ok and every gate held, 1 = request failed, job
// failed/cancelled or a gate did not hold, 2 = usage error.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fuzz/oracle.hpp"
#include "serve/proto.hpp"

namespace {

using namespace mcan;

void usage(std::FILE* to) {
  std::fputs(
      "usage: mcan-client [--socket PATH] <command> [options]\n"
      "\n"
      "commands:\n"
      "  submit <fuzz|rsm|rare|check> [spec options] [--priority N] "
      "[--wait]\n"
      "  status <id>      job progress as JSON\n"
      "  result <id>      finished job's result bytes\n"
      "  cancel <id>\n"
      "  stats            queue depth, shard counters, per-job throughput\n"
      "  ping\n"
      "  shutdown         graceful daemon stop\n"
      "\n"
      "spec options (defaults = the engines' defaults):\n"
      "  fuzz:  --protocol TOK --nodes N --seed N --max-execs N --batch N\n"
      "         --minimize-every N --max-flips N --envelope "
      "--mutate-protocol\n"
      "  rsm:   fuzz options plus the consensus workload: --commands N\n"
      "         --payload N --rsm-k N --spacing BITS --link "
      "direct|edcan|relcan|totcan\n"
      "         --crash-node N --crash-t BITS --recover-t BITS\n"
      "  rare:  --protocol TOK --nodes N --ber X --mode "
      "naive|importance|splitting\n"
      "         --seed N --trials N --batch N\n"
      "  check: --protocol TOK (repeatable) --errors N --nodes N "
      "--budget N\n"
      "         --no-dedup --no-symmetry\n"
      "\n"
      "submit options:\n"
      "  --priority N         higher claims workers first (default 0)\n"
      "  --wait               poll until the job finishes, print its "
      "result\n"
      "  --poll-ms N          --wait poll interval (default 200)\n"
      "  --expect-classes L   fuzz gate, as in mcan-fuzz\n"
      "  --expect-within X    rare gate, as in mcan-rare\n"
      "  --expect-rel-ci X    rare gate, as in mcan-rare\n"
      "\n"
      "  --socket PATH        daemon socket (default mcan-serve.sock)\n",
      to);
}

// --- tiny client transport -------------------------------------------------

class Connection {
 public:
  ~Connection() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connect(const std::string& path, std::string& error) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      error = "socket path too long: " + path;
      return false;
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      error = path + ": " + std::strerror(errno);
      return false;
    }
    return true;
  }

  /// One request/response exchange; false with a message on transport or
  /// protocol-level failure (the response itself may still carry ok=false).
  bool exchange(const Json& req, Json& res, std::string& error) {
    if (!write_frame(fd_, req.dump())) {
      error = "cannot write to daemon (is it running?)";
      return false;
    }
    std::string payload;
    if (read_frame(fd_, payload) != FrameRead::kOk) {
      error = "connection lost while waiting for a response";
      return false;
    }
    if (!Json::parse(payload, res, error)) {
      error = "daemon sent unparsable JSON: " + error;
      return false;
    }
    return true;
  }

 private:
  int fd_ = -1;
};

bool response_ok(const Json& res) {
  const Json* ok = res.find("ok");
  return ok != nullptr && ok->as_bool();
}

std::string response_error(const Json& res) {
  const Json* err = res.find("error");
  return err != nullptr && err->is_string() ? err->as_string()
                                            : "daemon error";
}

// --- argument plumbing -----------------------------------------------------

struct Options {
  std::string socket = "mcan-serve.sock";
  std::string command;
  std::string backend;
  long long id = 0;
  int priority = 0;
  bool wait = false;
  long long poll_ms = 200;
  std::optional<std::uint32_t> expect_classes;
  double expect_within = 0;
  double expect_rel_ci = 0;
  Json spec = Json::object();
};

bool parse_ll(const std::string& s, long long& out) {
  try {
    std::size_t pos = 0;
    out = std::stoll(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

bool parse_double(const std::string& s, double& out) {
  try {
    std::size_t pos = 0;
    out = std::stod(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

bool parse_args(int argc, char** argv, Options& opt) {
  std::vector<std::string> protocols;  // check: repeatable --protocol
  int i = 1;
  auto need = [&](std::string& out) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "mcan-client: %s needs a value\n", argv[i]);
      return false;
    }
    out = argv[++i];
    return true;
  };
  auto need_int = [&](const char* key, long long& out) {
    std::string v;
    if (!need(v) || !parse_ll(v, out)) {
      std::fprintf(stderr, "mcan-client: bad %s value\n", key);
      return false;
    }
    return true;
  };
  for (; i < argc; ++i) {
    const std::string a = argv[i];
    std::string v;
    long long n = 0;
    double d = 0;
    if (a == "-h" || a == "--help") {
      usage(stdout);
      // exit in the --help path: before any thread exists.
      std::exit(0);  // NOLINT(concurrency-mt-unsafe)
    } else if (a == "--socket") {
      if (!need(opt.socket)) return false;
    } else if (a == "--priority") {
      if (!need_int("--priority", n)) return false;
      opt.priority = static_cast<int>(n);
    } else if (a == "--wait") {
      opt.wait = true;
    } else if (a == "--poll-ms") {
      if (!need_int("--poll-ms", opt.poll_ms) || opt.poll_ms < 1) {
        return false;
      }
    } else if (a == "--expect-classes") {
      if (!need(v)) return false;
      std::uint32_t mask = 0;
      std::string error;
      if (!parse_fuzz_classes(v, mask, error)) {
        std::fprintf(stderr, "mcan-client: %s\n", error.c_str());
        return false;
      }
      opt.expect_classes = mask;
    } else if (a == "--expect-within") {
      if (!need(v) || !parse_double(v, opt.expect_within)) return false;
    } else if (a == "--expect-rel-ci") {
      if (!need(v) || !parse_double(v, opt.expect_rel_ci)) return false;
    } else if (a == "--protocol") {
      if (!need(v)) return false;
      protocols.push_back(v);
    } else if (a == "--nodes" || a == "--seed" || a == "--max-execs" ||
               a == "--batch" || a == "--minimize-every" ||
               a == "--max-flips" || a == "--trials" || a == "--errors" ||
               a == "--budget" || a == "--max-k" || a == "--commands" ||
               a == "--payload" || a == "--rsm-k" || a == "--spacing" ||
               a == "--crash-node" || a == "--crash-t" ||
               a == "--recover-t") {
      if (!need_int(a.c_str(), n)) return false;
      std::string key = a.substr(2);
      for (char& c : key) {
        if (c == '-') c = '_';
      }
      if (key == "errors") key = "max_k";
      // rsm workload flags map onto the .scn directive's key names.
      if (key == "rsm_k") key = "k";
      if (key == "crash_node") key = "crash";
      if (key == "crash_t") key = "crasht";
      if (key == "recover_t") key = "recovert";
      opt.spec.set(key, Json(n));
    } else if (a == "--ber") {
      if (!need(v) || !parse_double(v, d)) return false;
      opt.spec.set("ber", Json(d));
    } else if (a == "--mode") {
      if (!need(v)) return false;
      opt.spec.set("mode", Json(v));
    } else if (a == "--link") {
      if (!need(v)) return false;
      opt.spec.set("link", Json(v));
    } else if (a == "--envelope") {
      opt.spec.set("envelope", Json(true));
    } else if (a == "--mutate-protocol") {
      opt.spec.set("mutate_protocol", Json(true));
    } else if (a == "--no-dedup") {
      opt.spec.set("dedup", Json(false));
    } else if (a == "--no-symmetry") {
      opt.spec.set("symmetry", Json(false));
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "mcan-client: unknown option %s\n", a.c_str());
      return false;
    } else if (opt.command.empty()) {
      opt.command = a;
    } else if (opt.command == "submit" && opt.backend.empty()) {
      opt.backend = a;
    } else if (opt.id == 0 && parse_ll(a, opt.id) && opt.id > 0) {
      // status/result/cancel <id>
    } else {
      std::fprintf(stderr, "mcan-client: unexpected argument %s\n",
                   a.c_str());
      return false;
    }
  }
  if (opt.command.empty()) {
    std::fprintf(stderr, "mcan-client: no command (see --help)\n");
    return false;
  }
  if (opt.command == "submit") {
    if (opt.backend != "fuzz" && opt.backend != "rsm" &&
        opt.backend != "rare" && opt.backend != "check") {
      std::fprintf(
          stderr,
          "mcan-client: submit needs a backend: fuzz|rsm|rare|check\n");
      return false;
    }
    // "backend" leads the spec so journals and fingerprints read well.
    Json spec = Json::object();
    spec.set("backend", Json(opt.backend));
    if (!protocols.empty()) {
      if (opt.backend == "check") {
        Json list = Json::array();
        for (const std::string& p : protocols) list.push(Json(p));
        spec.set("protocols", std::move(list));
      } else {
        if (protocols.size() > 1) {
          std::fprintf(stderr,
                       "mcan-client: %s jobs take one --protocol\n",
                       opt.backend.c_str());
          return false;
        }
        spec.set("protocol", Json(protocols.front()));
      }
    }
    for (const auto& [k, vjson] : opt.spec.members()) spec.set(k, vjson);
    opt.spec = std::move(spec);
  } else if (opt.command == "status" || opt.command == "result" ||
             opt.command == "cancel") {
    if (opt.id <= 0) {
      std::fprintf(stderr, "mcan-client: %s needs a job id\n",
                   opt.command.c_str());
      return false;
    }
  } else if (opt.command != "stats" && opt.command != "ping" &&
             opt.command != "shutdown") {
    // Reject before connecting, so a typo is a usage error (2) even
    // when no daemon is up, not a connection failure (1).
    std::fprintf(stderr, "mcan-client: unknown command %s\n",
                 opt.command.c_str());
    return false;
  }
  return true;
}

// --- gates (same semantics as the mcan-fuzz / mcan-rare CLIs) --------------

int check_fuzz_gate(const Options& opt, const Json& result) {
  if (!opt.expect_classes) return 0;
  const Json* classes = result.find("classes");
  std::uint32_t found = 0;
  std::string error;
  if (!classes || !classes->is_string()) {
    std::fprintf(stderr, "mcan-client: result has no classes field\n");
    return 1;
  }
  // The result renders the mask as "a+b"; the parser takes a comma list.
  std::string list = classes->as_string();
  for (char& c : list) {
    if (c == '+') c = ',';
  }
  if (!parse_fuzz_classes(list, found, error)) {
    std::fprintf(stderr, "mcan-client: bad classes in result: %s\n",
                 error.c_str());
    return 1;
  }
  const std::uint32_t want = *opt.expect_classes;
  if (want == 0 && found != 0) {
    std::fprintf(stderr,
                 "mcan-client: FAIL: expected a clean campaign but found "
                 "%s\n",
                 fuzz_classes_to_string(found).c_str());
    return 1;
  }
  if ((want & found) != want) {
    std::fprintf(stderr, "mcan-client: FAIL: expected classes %s but found %s\n",
                 fuzz_classes_to_string(want).c_str(),
                 fuzz_classes_to_string(found).c_str());
    return 1;
  }
  return 0;
}

int check_rare_gates(const Options& opt, const Json& result) {
  int rc = 0;
  const Json* imo = result.find("imo");
  if (!imo || !imo->is_object()) {
    if (opt.expect_within > 0 || opt.expect_rel_ci > 0) {
      std::fprintf(stderr, "mcan-client: result has no imo estimate\n");
      return 1;
    }
    return 0;
  }
  const double ci_lo = imo->find("ci_lo") ? imo->find("ci_lo")->as_double() : 0;
  const double ci_hi = imo->find("ci_hi") ? imo->find("ci_hi")->as_double() : 0;
  const double relhw =
      imo->find("rel_halfwidth") ? imo->find("rel_halfwidth")->as_double() : 0;
  const long long hits = imo->find("hits") ? imo->find("hits")->as_int() : 0;
  if (opt.expect_rel_ci > 0 && (hits == 0 || relhw > opt.expect_rel_ci)) {
    std::fprintf(stderr,
                 "mcan-client: FAIL relative CI half-width %.2f > %.2f "
                 "(hits=%lld)\n",
                 relhw, opt.expect_rel_ci, hits);
    rc = 1;
  }
  if (opt.expect_within > 0) {
    const Json* p4j = result.find("closed_form_p4");
    const double p4 = p4j ? p4j->as_double() : 0;
    const bool ok = p4 > 0 && ci_hi >= p4 / opt.expect_within &&
                    ci_lo <= p4 * opt.expect_within;
    if (!ok) {
      std::fprintf(stderr,
                   "mcan-client: FAIL estimate [%.3e, %.3e] not within "
                   "%.1fx of expression (4) = %.3e\n",
                   ci_lo, ci_hi, opt.expect_within, p4);
      rc = 1;
    }
  }
  return rc;
}

int apply_gates(const Options& opt, const std::string& result_bytes) {
  if (!opt.expect_classes && opt.expect_within <= 0 &&
      opt.expect_rel_ci <= 0) {
    return 0;
  }
  Json result;
  std::string error;
  if (!Json::parse(result_bytes, result, error)) {
    std::fprintf(stderr, "mcan-client: result does not parse: %s\n",
                 error.c_str());
    return 1;
  }
  if (opt.backend == "fuzz" || opt.backend == "rsm") {
    return check_fuzz_gate(opt, result);
  }
  if (opt.backend == "rare") return check_rare_gates(opt, result);
  return 0;
}

// --- commands --------------------------------------------------------------

Json id_request(const std::string& type, long long id) {
  Json req = make_request(type);
  req.set("id", Json(id));
  return req;
}

int fetch_result(Connection& conn, const Options& opt, long long id) {
  Json res;
  std::string error;
  if (!conn.exchange(id_request("result", id), res, error)) {
    std::fprintf(stderr, "mcan-client: %s\n", error.c_str());
    return 1;
  }
  if (!response_ok(res)) {
    std::fprintf(stderr, "mcan-client: %s\n", response_error(res).c_str());
    return 1;
  }
  const Json* result = res.find("result");
  const std::string bytes =
      result && result->is_string() ? result->as_string() : std::string();
  std::fputs(bytes.c_str(), stdout);
  if (bytes.empty() || bytes.back() != '\n') std::fputc('\n', stdout);
  return apply_gates(opt, bytes);
}

int wait_for_job(Connection& conn, const Options& opt, long long id) {
  for (;;) {
    Json res;
    std::string error;
    if (!conn.exchange(id_request("status", id), res, error)) {
      std::fprintf(stderr, "mcan-client: %s\n", error.c_str());
      return 1;
    }
    if (!response_ok(res)) {
      std::fprintf(stderr, "mcan-client: %s\n", response_error(res).c_str());
      return 1;
    }
    const Json* job = res.find("job");
    const Json* state = job ? job->find("state") : nullptr;
    const std::string s = state && state->is_string() ? state->as_string()
                                                      : std::string("?");
    if (s == "done") return fetch_result(conn, opt, id);
    if (s == "failed" || s == "cancelled") {
      const Json* err = job->find("error");
      std::fprintf(stderr, "mcan-client: job %lld %s%s%s\n", id, s.c_str(),
                   err ? ": " : "",
                   err && err->is_string() ? err->as_string().c_str() : "");
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.poll_ms));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  Connection conn;
  std::string error;
  if (!conn.connect(opt.socket, error)) {
    std::fprintf(stderr, "mcan-client: %s\n", error.c_str());
    return 1;
  }

  Json res;
  if (opt.command == "submit") {
    Json req = make_request("submit");
    req.set("spec", opt.spec);
    req.set("priority", Json(static_cast<long long>(opt.priority)));
    if (!conn.exchange(req, res, error)) {
      std::fprintf(stderr, "mcan-client: %s\n", error.c_str());
      return 1;
    }
    if (!response_ok(res)) {
      const bool rejected =
          res.find("rejected") && res.find("rejected")->as_bool();
      std::fprintf(stderr, "mcan-client: %s%s\n",
                   rejected ? "rejected: " : "",
                   response_error(res).c_str());
      return 1;
    }
    const long long id = res.find("id") ? res.find("id")->as_int() : 0;
    if (!opt.wait) {
      std::printf("%lld\n", id);
      return 0;
    }
    std::fprintf(stderr, "mcan-client: job %lld submitted, waiting\n", id);
    return wait_for_job(conn, opt, id);
  }
  if (opt.command == "status") {
    if (!conn.exchange(id_request("status", opt.id), res, error)) {
      std::fprintf(stderr, "mcan-client: %s\n", error.c_str());
      return 1;
    }
    if (!response_ok(res)) {
      std::fprintf(stderr, "mcan-client: %s\n", response_error(res).c_str());
      return 1;
    }
    std::printf("%s\n", res.find("job")->dump().c_str());
    return 0;
  }
  if (opt.command == "result") return fetch_result(conn, opt, opt.id);
  if (opt.command == "cancel" || opt.command == "ping" ||
      opt.command == "shutdown") {
    const Json req = opt.command == "cancel"
                         ? id_request("cancel", opt.id)
                         : make_request(opt.command);
    if (!conn.exchange(req, res, error)) {
      std::fprintf(stderr, "mcan-client: %s\n", error.c_str());
      return 1;
    }
    if (!response_ok(res)) {
      std::fprintf(stderr, "mcan-client: %s\n", response_error(res).c_str());
      return 1;
    }
    std::printf("ok\n");
    return 0;
  }
  if (opt.command == "stats") {
    if (!conn.exchange(make_request("stats"), res, error)) {
      std::fprintf(stderr, "mcan-client: %s\n", error.c_str());
      return 1;
    }
    if (!response_ok(res)) {
      std::fprintf(stderr, "mcan-client: %s\n", response_error(res).c_str());
      return 1;
    }
    std::printf("%s\n", res.find("stats")->dump().c_str());
    return 0;
  }
  std::fprintf(stderr, "mcan-client: unknown command %s\n",
               opt.command.c_str());
  return 2;
}
