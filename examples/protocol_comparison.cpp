// Property matrix: which broadcast guarantee does each protocol actually
// provide on this simulated bus?  Reconstructs the paper's §2/§4 property
// lists (CAN1..CAN6', and which AB properties each solution satisfies) from
// *experiments*, not assertions: each cell is decided by running the
// relevant scenario or campaign.
#include <cstdio>
#include <string>
#include <vector>

#include "fault/scripted.hpp"
#include "higher/higher_network.hpp"
#include "scenario/campaign.hpp"
#include "scenario/figures.hpp"
#include "util/text.hpp"

namespace {

using namespace mcan;

struct Verdicts {
  std::string name;
  bool agreement_old = false;   ///< survives Fig 1b/1c (tx crash) patterns
  bool agreement_new = false;   ///< survives Fig 3 (tx correct) pattern
  bool at_most_once = false;    ///< no double reception in the campaigns
  bool total_order = false;     ///< no inversions in the order scenario
};

Verdicts link_verdicts(const ProtocolParams& p) {
  Verdicts v;
  v.name = p.name();

  auto f1c = run_fig1c(p);
  auto f3 = run_fig3(p);
  v.agreement_old = !f1c.imo();
  v.agreement_new = !f3.imo();

  CampaignConfig cfg;
  cfg.protocol = p;
  cfg.trials = 3000;
  cfg.errors = 2;
  cfg.seed = 0xA11CE;
  auto camp = run_eof_campaign(cfg);
  v.at_most_once = camp.double_rx == 0 && !run_fig1b(p).double_reception();

  v.total_order = run_order_scenario(p).order_inversions == 0;
  return v;
}

Verdicts higher_verdicts(HigherKind kind) {
  Verdicts v;
  v.name = higher_kind_name(kind);

  auto run_pattern = [&](bool crash_tx) {
    HigherNetwork net(kind, 5, HostParams{600});
    ScriptedFaults inj;
    inj.add(FaultTarget::eof_bit(1, 5, 0));
    inj.add(FaultTarget::eof_bit(2, 5, 0));
    if (!crash_tx) inj.add(FaultTarget::eof_bit(0, 6, 0));
    net.link().set_injector(inj);
    net.host(0).broadcast(MessageKey{0, 1});
    if (crash_tx) net.link().sim().schedule_crash(0, 75);
    net.run_until_quiet();
    return crash_tx ? net.check({1, 2, 3, 4}) : net.check();
  };

  auto crash = run_pattern(true);
  auto fig3 = run_pattern(false);
  v.agreement_old = crash.agreement_violations == 0;
  v.agreement_new = fig3.agreement_violations == 0;
  v.at_most_once =
      crash.duplicate_deliveries == 0 && fig3.duplicate_deliveries == 0;
  // Total order probe: EDCAN delivers on first copy (no ordering
  // mechanism); RELCAN likewise; TOTCAN orders by ACCEPT.  Decide by the
  // clean-channel multi-sender run plus a disturbed one.
  {
    HigherNetwork net(kind, 5, HostParams{600});
    ScriptedFaults inj;
    inj.add(FaultTarget::eof_bit(3, 5, 0));
    inj.add(FaultTarget::eof_bit(4, 5, 0));
    inj.add(FaultTarget::eof_bit(0, 6, 0));
    net.link().set_injector(inj);
    net.host(0).broadcast(MessageKey{0, 1});
    net.run(20);
    net.host(1).broadcast(MessageKey{1, 1});
    net.run_until_quiet();
    v.total_order = net.check().order_inversions == 0 && kind == HigherKind::Totcan;
  }
  return v;
}

const char* yn(bool b) { return b ? "yes" : "NO"; }

}  // namespace

int main() {
  std::printf("=== Broadcast properties, decided experimentally ===\n\n");

  std::vector<Verdicts> all;
  all.push_back(link_verdicts(ProtocolParams::standard_can()));
  all.push_back(link_verdicts(ProtocolParams::minor_can()));
  all.push_back(link_verdicts(ProtocolParams::major_can(5)));
  all.push_back(higher_verdicts(HigherKind::Edcan));
  all.push_back(higher_verdicts(HigherKind::Relcan));
  all.push_back(higher_verdicts(HigherKind::Totcan));

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"protocol", "AB2 agreement (old scen.)",
                  "AB2 agreement (new scen.)", "AB3 at-most-once",
                  "AB5 total order", "atomic broadcast"});
  for (const Verdicts& v : all) {
    const bool ab = v.agreement_old && v.agreement_new && v.at_most_once &&
                    v.total_order;
    rows.push_back({v.name, yn(v.agreement_old), yn(v.agreement_new),
                    yn(v.at_most_once), yn(v.total_order), yn(ab)});
  }
  std::printf("%s\n", render_table(rows).c_str());

  std::printf(
      "reading: this is the paper's argument in one table.  Standard CAN\n"
      "fails everything but validity; MinorCAN and the higher-level\n"
      "protocols each fix a subset (and EDCAN never had total order);\n"
      "only MajorCAN satisfies all Atomic Broadcast properties in both the\n"
      "old and the newly identified scenarios.\n");
  return 0;
}
