// mcan-rta: probabilistic worst-case response-time analysis as a
// command-line tool.
//
// Runs the convolution-based WCRT engine (src/analysis/rta/) over a
// periodic message set: classic Tindell/Davis deterministic bounds plus
// full response-time distributions and deadline-miss probabilities under
// the variant error model, with the per-bit error rate sourced from what
// the rare-event engine measured (BENCH_table1.json) rather than an
// assumed constant.
//
//     mcan-rta analyze --protocol major:5 --rates BENCH_table1.json
//     mcan-rta compare --ber 1e-4 --json rta.json     # whole protocol set
//     mcan-rta validate --protocol can --horizon 400000 --seed 1
//     mcan-rta analyze --expect-schedulable --expect-miss-below 1e-6
//
// Exit status: 0 = analysis ran and every --expect-* gate held,
// 1 = a gate failed, 2 = usage error or unusable configuration.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/rta/prob_rta.hpp"
#include "analysis/rta/rates.hpp"
#include "analysis/rta/rta.hpp"
#include "analysis/rta/validate.hpp"
#include "scenario/sweep_cli.hpp"
#include "util/text.hpp"

namespace {

using namespace mcan;

struct Options {
  SweepOptions sweep;
  std::string command = "analyze";
  std::string rates_path;
  double ber = 1e-5;
  bool ber_given = false;
  double period_scale = 1.0;
  int max_retx = 8;
  BitTime horizon = 400000;
  std::uint64_t seed = 1;
  BitTime slack = 0;
  bool expect_schedulable = false;
  double expect_miss_below = -1;  ///< < 0 = no gate
  bool expect_bounded = false;
};

void usage(std::FILE* to) {
  std::fputs(
      "usage: mcan-rta [analyze|compare|validate] [options]\n"
      "\n"
      "Probabilistic schedulability analysis of a periodic CAN message\n"
      "set: deterministic Tindell/Davis response-time bounds, plus\n"
      "response-time distributions and deadline-miss probabilities under\n"
      "the per-variant error model (docs/RTA.md).\n"
      "\n"
      "commands:\n"
      "  analyze    one protocol (the first --protocol; default: can)\n"
      "  compare    every protocol of the sweep set side by side\n"
      "  validate   analysis vs. bit-level simulation with injected faults\n"
      "\n"
      "sweep options (shared vocabulary; --nodes/-k are ignored here):\n",
      to);
  std::fputs(sweep_flags_help(), to);
  std::fputs(
      "\n"
      "tool options:\n"
      "  --rates FILE       load measured error rates from a rare-engine\n"
      "                     result (BENCH_table1.json); the row nearest\n"
      "                     --ber calibrates the model\n"
      "  --ber X            per-bit error rate (default 1e-5)\n"
      "  --period-scale F   multiply every period by F (F < 1 saturates)\n"
      "  --max-retx N       retransmission depth modelled exactly"
      " (default 8)\n"
      "  --horizon N        validate: simulated bit times (default 400000)\n"
      "  --seed S           validate: fault-injection seed (default 1)\n"
      "  --slack B          validate: one-sided quantile slack in bits\n"
      "  --expect-schedulable   exit 1 unless deterministically schedulable\n"
      "  --expect-miss-below P  exit 1 unless every stream's deadline-miss\n"
      "                         probability is below P\n"
      "  --expect-bounded       validate: exit 1 if any simulated quantile\n"
      "                         exceeds its analytic bound\n"
      "  -h, --help         this text\n",
      to);
}

bool parse_args(int argc, char** argv, Options& opt) {
  std::vector<std::string> rest;
  std::string error;
  if (!parse_sweep_args(argc, argv, opt.sweep, rest, error)) {
    std::fprintf(stderr, "mcan-rta: %s\n", error.c_str());
    return false;
  }
  bool command_set = false;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const std::string& a = rest[i];
    auto value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= rest.size()) {
        std::fprintf(stderr, "mcan-rta: %s needs a value\n", flag);
        return nullptr;
      }
      return &rest[++i];
    };
    if (a == "analyze" || a == "compare" || a == "validate") {
      if (command_set) {
        std::fprintf(stderr, "mcan-rta: more than one command\n");
        return false;
      }
      opt.command = a;
      command_set = true;
    } else if (a == "--rates") {
      const std::string* v = value("--rates");
      if (v == nullptr) return false;
      opt.rates_path = *v;
    } else if (a == "--ber") {
      const std::string* v = value("--ber");
      if (v == nullptr) return false;
      opt.ber = std::atof(v->c_str());
      opt.ber_given = true;
    } else if (a == "--period-scale") {
      const std::string* v = value("--period-scale");
      if (v == nullptr) return false;
      opt.period_scale = std::atof(v->c_str());
    } else if (a == "--max-retx") {
      const std::string* v = value("--max-retx");
      if (v == nullptr) return false;
      opt.max_retx = std::atoi(v->c_str());
    } else if (a == "--horizon") {
      const std::string* v = value("--horizon");
      if (v == nullptr) return false;
      opt.horizon = static_cast<BitTime>(std::atoll(v->c_str()));
    } else if (a == "--seed") {
      const std::string* v = value("--seed");
      if (v == nullptr) return false;
      opt.seed = static_cast<std::uint64_t>(std::atoll(v->c_str()));
    } else if (a == "--slack") {
      const std::string* v = value("--slack");
      if (v == nullptr) return false;
      opt.slack = static_cast<BitTime>(std::atoll(v->c_str()));
    } else if (a == "--expect-schedulable") {
      opt.expect_schedulable = true;
    } else if (a == "--expect-miss-below") {
      const std::string* v = value("--expect-miss-below");
      if (v == nullptr) return false;
      opt.expect_miss_below = std::atof(v->c_str());
    } else if (a == "--expect-bounded") {
      opt.expect_bounded = true;
    } else if (a == "-h" || a == "--help") {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "mcan-rta: unknown option %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

MeasuredRates resolve_rates(const Options& opt) {
  MeasuredRates rates;
  rates.ber = opt.ber;
  if (opt.rates_path.empty()) return rates;
  RateTable table;
  std::string error;
  if (!RateTable::load(opt.rates_path, table, error)) {
    throw std::runtime_error("mcan-rta: " + error);
  }
  rates = table.rates_for(opt.ber);
  if (opt.ber_given && rates.ber != opt.ber) {
    std::fprintf(stderr,
                 "mcan-rta: using measured row ber=%s (nearest to "
                 "requested %s)\n",
                 sci(rates.ber, 2).c_str(), sci(opt.ber, 2).c_str());
  }
  return rates;
}

void print_analysis(const ProbRtaResult& res) {
  std::printf("-- %s  (ber %s, calibration %.3f, rates: %s) --\n",
              res.proto.name().c_str(), sci(res.rates.ber, 2).c_str(),
              res.rates.calibration, res.rates.source.c_str());
  std::vector<std::vector<std::string>> cells;
  cells.push_back({"stream", "T", "C", "B", "R det", "p50", "p99", "p99.99",
                   "P{miss}", "sched"});
  for (const ProbRtaRow& r : res.rows) {
    auto qcell = [&](double q) {
      const BitTime v = r.quantile(q);
      return v == kNoTime ? std::string("-") : std::to_string(v);
    };
    cells.push_back({r.det.msg.name, std::to_string(r.det.msg.period),
                     std::to_string(r.det.c_bits),
                     std::to_string(r.det.blocking),
                     std::to_string(r.det.response), qcell(0.5), qcell(0.99),
                     qcell(0.9999), sci(r.miss_prob, 2),
                     r.det.schedulable ? "yes" : "NO"});
  }
  std::printf("%s", render_table(cells).c_str());
  std::printf("utilisation %.1f%%, worst stream P{miss} = %s\n\n",
              100 * res.utilisation, sci(res.max_miss_prob, 3).c_str());
}

/// Apply the --expect-* gates; returns the process exit code.
int apply_gates(const Options& opt, const std::vector<ProbRtaResult>& results,
                bool bounded_ok) {
  int rc = 0;
  for (const ProbRtaResult& res : results) {
    if (opt.expect_schedulable && !res.deterministic_schedulable) {
      std::fprintf(stderr,
                   "mcan-rta: GATE FAILED: %s is not deterministically "
                   "schedulable\n",
                   res.proto.name().c_str());
      rc = 1;
    }
    if (opt.expect_miss_below >= 0 &&
        !(res.max_miss_prob < opt.expect_miss_below)) {
      std::fprintf(stderr,
                   "mcan-rta: GATE FAILED: %s worst P{miss} %s is not "
                   "below %s\n",
                   res.proto.name().c_str(), sci(res.max_miss_prob).c_str(),
                   sci(opt.expect_miss_below).c_str());
      rc = 1;
    }
  }
  if (opt.expect_bounded && !bounded_ok) {
    std::fprintf(stderr,
                 "mcan-rta: GATE FAILED: a simulated quantile exceeded its "
                 "analytic bound\n");
    rc = 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage(stderr);
    return 2;
  }
  try {
    const MeasuredRates rates = resolve_rates(opt);
    const std::vector<RtaMessage> set =
        scale_periods(sae_benchmark_set(), opt.period_scale);
    ProbRtaOptions popt;
    popt.max_retx = opt.max_retx;

    std::vector<ProtocolParams> protocols;
    if (opt.command == "analyze") {
      protocols = {opt.sweep.protocols.empty() ? ProtocolParams::standard_can()
                                               : opt.sweep.protocols.front()};
    } else {
      protocols = opt.sweep.protocol_set();
    }

    std::vector<ProbRtaResult> results;
    bool bounded_ok = true;
    std::string json = "{\"results\": [";
    for (std::size_t pi = 0; pi < protocols.size(); ++pi) {
      const ProtocolParams& proto = protocols[pi];
      ProbRtaResult res = probabilistic_rta(set, proto, rates, popt);
      print_analysis(res);
      if (pi) json += ",";
      json += "\n" + res.to_json();
      if (opt.command == "validate") {
        const SimValidation sim = simulate_response_times(
            set, proto, rates.effective_ber(), opt.horizon, opt.seed);
        const auto verdicts = compare_quantiles(res, sim, opt.slack);
        std::vector<std::vector<std::string>> cells;
        cells.push_back({"stream", "q", "analytic", "simulated", "ok"});
        for (const ValidationVerdict& v : verdicts) {
          char qbuf[32];
          std::snprintf(qbuf, sizeof(qbuf), "%g", v.q);
          cells.push_back({v.stream, qbuf, std::to_string(v.analytic),
                           std::to_string(v.simulated),
                           v.ok ? "yes" : "NO"});
          bounded_ok &= v.ok;
        }
        std::printf("validation (horizon %llu bits, seed %llu):\n%s\n",
                    static_cast<unsigned long long>(opt.horizon),
                    static_cast<unsigned long long>(opt.seed),
                    render_table(cells).c_str());
      }
      results.push_back(std::move(res));
    }
    json += "\n]}\n";

    if (!opt.sweep.json.empty()) {
      if (!write_text_file(opt.sweep.json, json)) {
        std::fprintf(stderr, "mcan-rta: cannot write %s\n",
                     opt.sweep.json.c_str());
        return 2;
      }
      std::printf("json written to %s\n", opt.sweep.json.c_str());
    }
    return apply_gates(opt, results, bounded_ok);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mcan-rta: %s\n", e.what());
    return 2;
  }
}
