// mcan-rsm: the consensus layer as a command-line tool.
//
// Drives a replicated state machine (src/rsm/) over the simulated bus and
// judges the application-level properties — election safety, log matching,
// state-machine safety, liveness — that the paper's atomic-broadcast claim
// is ultimately for.  Three engines share one vocabulary:
//
//     mcan-rsm run scenarios/rsm_can_k2_diverge.scn
//     mcan-rsm run --protocol major:5 --crash-node 1 --recover-t 12000
//     mcan-rsm check --protocol major:3 -k 3 --nodes 3 --expect-clean
//     mcan-rsm check --protocol can -k 2 --window 4:6
//     mcan-rsm fuzz --protocol can --seed 1 --max-execs 5000
//     mcan-rsm fuzz --protocol major:5 --envelope --expect-classes none
//     mcan-rsm replay scenarios/rsm_*.scn
//
// Exit status: 0 = ran and every gate held, 1 = a gate failed (or an
// exported reproducer failed replay), 2 = usage error, 130 = interrupted
// (SIGINT/SIGTERM; partial results still reported).
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/engine.hpp"
#include "fuzz/triage.hpp"
#include "rsm/check.hpp"
#include "scenario/sweep_cli.hpp"

namespace {

using namespace mcan;

// SIGINT/SIGTERM raise the engines' cooperative stop flag: the sweep or
// campaign finishes the case in flight, then reports what it has.
// A lock-free atomic is the one flag type that is both async-signal-safe
// to store ([support.signal]) and safe for worker threads to poll
// (volatile sig_atomic_t would be a cross-thread data race).
std::atomic<bool> g_interrupted{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "signal handler requires a lock-free stop flag");

void on_signal(int) { g_interrupted.store(true); }

struct Options {
  SweepOptions sweep;
  std::string command;
  std::vector<std::string> inputs;  ///< positional .scn files/dirs
  RsmWorkload workload;
  bool workload_given = false;
  std::uint64_t seed = 1;
  std::uint64_t max_execs = 5000;
  int batch = 64;
  int max_flips = 0;      ///< 0 = FuzzBounds default
  int max_frames = 2;     ///< check: flip targets cover this many frames
  bool envelope = false;  ///< cap disturbances at the protocol's tolerance
  bool expect_clean = false;
  std::string findings_dir = "rsm-findings";
  std::string stats_json;
  std::optional<std::uint32_t> expect_classes;
};

void usage(std::FILE* to) {
  std::fputs(
      "usage: mcan-rsm <run|check|fuzz|replay> [options] [files.scn]\n"
      "\n"
      "Replicated-state-machine consensus over the simulated bus: commands\n"
      "fragment into tagged frames, replicas append in total order and\n"
      "commit on k votes; crashed hosts rejoin via snapshot transfer.  The\n"
      "checkers judge election safety, log matching, state-machine safety\n"
      "and liveness — standard CAN's inconsistent message omission breaks\n"
      "them, MajorCAN_m inside its <= m envelope does not.\n"
      "\n"
      "commands:\n"
      "  run      run .scn files (or one synthesized scenario) and report\n"
      "  check    bounded model check: every flip pattern in the window\n"
      "  fuzz     coverage-guided search with the consensus workload\n"
      "  replay   .scn files through the fuzz oracle; report classes\n"
      "\n"
      "sweep options (protocol/nodes/errors/jobs/window apply):\n",
      to);
  std::fputs(sweep_flags_help(), to);
  std::fputs(
      "\n"
      "workload options (all commands):\n"
      "  --commands N        commands proposed round-robin (default 3)\n"
      "  --payload N         command payload bytes, 1..16 (default 4)\n"
      "  --rsm-k N           votes needed to commit (default 2)\n"
      "  --spacing N         bits between proposals (default 2000)\n"
      "  --link L            direct|edcan|relcan|totcan (default direct)\n"
      "  --crash-node N      host to crash (default none)\n"
      "  --crash-t T         crash time in bits\n"
      "  --recover-t T       rejoin time in bits (0 = stays down)\n"
      "\n"
      "tool options:\n"
      "  --seed N            fuzz campaign seed (default 1)\n"
      "  --max-execs N       fuzz execution budget (default 5000)\n"
      "  --batch N           fuzz executions per round (default 64)\n"
      "  --max-flips N       fuzz: cap flips per input (default 8)\n"
      "  --max-frames N      check: flip targets per frame index < N\n"
      "                      (default 2)\n"
      "  --envelope          fuzz: cap disturbances at the protocol\n"
      "                      tolerance (m for MajorCAN_m)\n"
      "  --findings DIR      write .scn reproducers here\n"
      "                      (default rsm-findings)\n"
      "  --stats-json FILE   fuzz: campaign stats as JSON (same bytes as\n"
      "                      a served \"rsm\" job's result)\n"
      "  --expect-clean      exit 1 unless every property held everywhere\n"
      "  --expect-classes L  comma list of violation classes that must all\n"
      "                      be found (none = require a clean campaign);\n"
      "                      exit 1 otherwise\n"
      "  -h, --help          this text\n",
      to);
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  out = std::strtoull(s.c_str(), nullptr, 10);
  return true;
}

bool parse_args(int argc, char** argv, Options& opt) {
  std::vector<std::string> rest;
  std::string error;
  if (!parse_sweep_args(argc, argv, opt.sweep, rest, error)) {
    std::fprintf(stderr, "mcan-rsm: %s\n", error.c_str());
    return false;
  }
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const std::string& a = rest[i];
    auto need_value = [&](const char* flag, std::string& out) -> bool {
      if (i + 1 >= rest.size()) {
        std::fprintf(stderr, "mcan-rsm: %s needs a value\n", flag);
        return false;
      }
      out = rest[++i];
      return true;
    };
    auto need_u64 = [&](const char* flag, std::uint64_t& out) -> bool {
      std::string raw;
      if (!need_value(flag, raw)) return false;
      if (!parse_u64(raw, out)) {
        std::fprintf(stderr, "mcan-rsm: %s wants a number, got '%s'\n", flag,
                     raw.c_str());
        return false;
      }
      return true;
    };
    auto need_int = [&](const char* flag, int& out) -> bool {
      std::uint64_t u = 0;
      if (!need_u64(flag, u)) return false;
      if (u > 1000000) {
        std::fprintf(stderr, "mcan-rsm: %s out of range\n", flag);
        return false;
      }
      out = static_cast<int>(u);
      return true;
    };
    std::string v;
    if (a == "-h" || a == "--help") {
      usage(stdout);
      // exit in the --help path: before any thread exists.
      std::exit(0);  // NOLINT(concurrency-mt-unsafe)
    } else if (a == "--commands") {
      if (!need_int("--commands", opt.workload.commands)) return false;
      opt.workload_given = true;
    } else if (a == "--payload") {
      if (!need_int("--payload", opt.workload.payload)) return false;
      opt.workload_given = true;
    } else if (a == "--rsm-k") {
      if (!need_int("--rsm-k", opt.workload.k)) return false;
      opt.workload_given = true;
    } else if (a == "--spacing") {
      int t = 0;
      if (!need_int("--spacing", t)) return false;
      opt.workload.spacing = static_cast<BitTime>(t);
      opt.workload_given = true;
    } else if (a == "--link") {
      if (!need_value("--link", v)) return false;
      opt.workload.link = -1;
      for (int l = 0; l < 4; ++l) {
        if (v == rsm_link_name(static_cast<RsmLink>(l))) opt.workload.link = l;
      }
      if (opt.workload.link < 0) {
        std::fprintf(stderr,
                     "mcan-rsm: --link wants direct|edcan|relcan|totcan, "
                     "got '%s'\n",
                     v.c_str());
        return false;
      }
      opt.workload_given = true;
    } else if (a == "--crash-node") {
      if (!need_int("--crash-node", opt.workload.crash_node)) return false;
      opt.workload_given = true;
    } else if (a == "--crash-t") {
      int t = 0;
      if (!need_int("--crash-t", t)) return false;
      opt.workload.crash_t = static_cast<BitTime>(t);
      opt.workload_given = true;
    } else if (a == "--recover-t") {
      int t = 0;
      if (!need_int("--recover-t", t)) return false;
      opt.workload.recover_t = static_cast<BitTime>(t);
      opt.workload_given = true;
    } else if (a == "--seed") {
      if (!need_u64("--seed", opt.seed)) return false;
    } else if (a == "--max-execs") {
      if (!need_u64("--max-execs", opt.max_execs)) return false;
    } else if (a == "--batch") {
      if (!need_int("--batch", opt.batch)) return false;
    } else if (a == "--max-flips") {
      if (!need_int("--max-flips", opt.max_flips)) return false;
    } else if (a == "--max-frames") {
      if (!need_int("--max-frames", opt.max_frames)) return false;
    } else if (a == "--envelope") {
      opt.envelope = true;
    } else if (a == "--findings") {
      if (!need_value("--findings", opt.findings_dir)) return false;
    } else if (a == "--stats-json") {
      if (!need_value("--stats-json", opt.stats_json)) return false;
    } else if (a == "--expect-clean") {
      opt.expect_clean = true;
    } else if (a == "--expect-classes") {
      if (!need_value("--expect-classes", v)) return false;
      std::uint32_t mask = 0;
      if (!parse_fuzz_classes(v, mask, error)) {
        std::fprintf(stderr, "mcan-rsm: %s\n", error.c_str());
        return false;
      }
      opt.expect_classes = mask;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "mcan-rsm: unknown option %s\n", a.c_str());
      return false;
    } else if (opt.command.empty()) {
      opt.command = a;
    } else {
      opt.inputs.push_back(a);
    }
  }
  if (opt.command.empty()) {
    std::fprintf(stderr, "mcan-rsm: no command given\n");
    return false;
  }
  return true;
}

/// The single protocol a run/fuzz invocation targets.
ProtocolParams target_protocol(const Options& opt) {
  const std::vector<ProtocolParams>& set = opt.sweep.protocols;
  if (set.size() > 1) {
    throw std::invalid_argument(
        "mcan-rsm run/fuzz target one protocol; give --protocol once");
  }
  return set.empty() ? ProtocolParams::standard_can() : set.front();
}

std::string file_slug(const std::string& name) {
  std::string out;
  for (const char c : name) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      out += c;
    } else if (c >= 'A' && c <= 'Z') {
      out += static_cast<char>(c - 'A' + 'a');
    } else {
      out += '_';
    }
  }
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "mcan-rsm: cannot write %s\n", path.c_str());
    return false;
  }
  f << content;
  return static_cast<bool>(f);
}

/// Expand positional args: directories contribute their *.scn files.
std::vector<std::string> expand_inputs(const std::vector<std::string>& in) {
  std::vector<std::string> files;
  for (const std::string& path : in) {
    if (std::filesystem::is_directory(path)) {
      std::vector<std::filesystem::path> found;
      for (const auto& e : std::filesystem::directory_iterator(path)) {
        if (e.path().extension() == ".scn") found.push_back(e.path());
      }
      std::sort(found.begin(), found.end());
      for (const auto& p : found) files.push_back(p.string());
    } else {
      files.push_back(path);
    }
  }
  return files;
}

int check_expect_gate(const Options& opt, std::uint32_t found) {
  if (!opt.expect_classes) return 0;
  const std::uint32_t want = *opt.expect_classes;
  if (want == 0 && found != 0) {
    std::fprintf(stderr,
                 "mcan-rsm: FAIL: expected a clean campaign but found %s\n",
                 fuzz_classes_to_string(found).c_str());
    return 1;
  }
  if ((want & found) != want) {
    std::fprintf(stderr, "mcan-rsm: FAIL: expected classes %s but found %s\n",
                 fuzz_classes_to_string(want).c_str(),
                 fuzz_classes_to_string(found).c_str());
    return 1;
  }
  return 0;
}

int report_run(const std::string& label, const RsmRunResult& res,
               const Options& opt, bool& any_dirty, bool& any_unmet) {
  std::printf("%s: %s%s\n  %s\n", label.c_str(),
              res.rsm.clean() ? "clean" : "VIOLATION",
              res.base.quiesced ? "" : " (never quiesced)",
              res.rsm.summary().c_str());
  if (!res.rsm.clean() && !res.rsm.detail.empty()) {
    std::printf("  %s\n", res.rsm.detail.c_str());
  }
  if (!res.base.expectation_met) {
    std::printf("  EXPECTATION NOT MET: %s\n",
                res.base.expectation_text.c_str());
    any_unmet = true;
  }
  if (!res.rsm.clean() || !res.base.quiesced) any_dirty = true;
  (void)opt;
  return 0;
}

int cmd_run(const Options& opt) {
  bool any_dirty = false;
  bool any_unmet = false;
  if (opt.inputs.empty()) {
    // Synthesize one scenario from the flags.
    ScenarioSpec spec;
    spec.name = "mcan-rsm run";
    spec.protocol = target_protocol(opt);
    spec.n_nodes = opt.sweep.n_nodes;
    spec.rsm = sanitize_rsm_workload(opt.workload, spec.n_nodes);
    const RsmRunResult res = run_rsm_scenario(spec);
    report_run(spec.protocol.name(), res, opt, any_dirty, any_unmet);
  } else {
    for (const std::string& path : expand_inputs(opt.inputs)) {
      ScenarioSpec spec = load_scenario_file(path);
      if (!spec.rsm) {
        // A wire-level scenario: attach the flag workload so the judge
        // has an application to watch.
        spec.rsm = sanitize_rsm_workload(opt.workload, spec.n_nodes);
      }
      const RsmRunResult res = run_rsm_scenario(spec);
      report_run(path, res, opt, any_dirty, any_unmet);
    }
  }
  if (g_interrupted.load()) return 130;
  if (any_unmet) return 1;
  if (opt.expect_clean && any_dirty) {
    std::fprintf(stderr, "mcan-rsm: FAIL: --expect-clean\n");
    return 1;
  }
  return 0;
}

int cmd_check(const Options& opt) {
  bool any_violations = false;
  bool stopped = false;
  for (const ProtocolParams& proto : opt.sweep.protocol_set()) {
    RsmCheckConfig cfg;
    cfg.base.protocol = proto;
    cfg.base.n_nodes = opt.sweep.n_nodes;
    cfg.base.rsm = sanitize_rsm_workload(opt.workload, opt.sweep.n_nodes);
    cfg.max_k = opt.sweep.max_k;
    if (opt.sweep.win_lo) cfg.win_lo = *opt.sweep.win_lo;
    if (opt.sweep.win_hi) cfg.win_hi = *opt.sweep.win_hi;
    cfg.max_frames = opt.max_frames;
    cfg.jobs = opt.sweep.jobs;
    cfg.stop = &g_interrupted;
    const RsmCheckResult res = run_rsm_check(cfg);
    std::printf("%s nodes=%d k<=%d window %d..%d: %s\n", proto.name().c_str(),
                cfg.base.n_nodes, cfg.max_k, cfg.win_lo, cfg.window_hi(),
                res.summary().c_str());
    for (std::size_t i = 0; i < res.findings.size(); ++i) {
      ScenarioSpec spec = res.findings[i];
      spec.expect = Expectation::Imo;
      spec.name = "rsm-check-" + file_slug(proto.name()) + "-" +
                  std::to_string(i);
      const std::string path = opt.findings_dir + "/" + spec.name + ".scn";
      std::filesystem::create_directories(opt.findings_dir);
      if (!write_file(path, write_scenario(spec))) return 2;
      std::printf("  counterexample: %s\n", path.c_str());
    }
    any_violations = any_violations || res.violations() > 0;
    stopped = stopped || res.stopped;
  }
  if (stopped || g_interrupted.load()) return 130;
  if (opt.expect_clean && any_violations) {
    std::fprintf(stderr, "mcan-rsm: FAIL: --expect-clean\n");
    return 1;
  }
  return 0;
}

int cmd_fuzz(const Options& opt) {
  const ProtocolParams proto = target_protocol(opt);
  FuzzConfig cfg;
  cfg.protocol = proto;
  cfg.n_nodes = opt.sweep.n_nodes;
  cfg.seed = opt.seed;
  cfg.max_execs = opt.max_execs;
  cfg.jobs = opt.sweep.jobs;
  cfg.batch = opt.batch;
  cfg.workload = opt.workload;
  cfg.stop = &g_interrupted;
  if (opt.max_flips > 0) cfg.bounds.max_flips = opt.max_flips;
  if (opt.envelope) {
    // The paper's <= m claim, judged at the application: frame-tail
    // disturbances only, capped at the protocol's tolerance, no
    // fail-silence.  See mcan-fuzz --envelope for the rationale.
    cfg.bounds.max_flips = proto.variant == Variant::MajorCan ? proto.m : 2;
    cfg.bounds.allow_body = false;
    cfg.bounds.allow_crash = false;
    cfg.bounds.mutate_protocol = false;
  }
  if (opt.sweep.progress) {
    cfg.on_round = [](const FuzzStats& st) {
      std::fprintf(stderr, "\r%llu execs, corpus %d, %llu findings [%s]   ",
                   static_cast<unsigned long long>(st.execs), st.corpus_size,
                   static_cast<unsigned long long>(st.findings),
                   fuzz_classes_to_string(st.classes_seen).c_str());
    };
  }

  const FuzzResult res = run_fuzz(cfg);
  if (opt.sweep.progress) std::fprintf(stderr, "\n");
  std::printf("%s nodes=%d seed=%llu: %llu execs, %llu findings [%s]\n",
              proto.name().c_str(), cfg.n_nodes,
              static_cast<unsigned long long>(cfg.seed),
              static_cast<unsigned long long>(res.stats.execs),
              static_cast<unsigned long long>(res.stats.findings),
              fuzz_classes_to_string(res.stats.classes_seen).c_str());

  bool replay_failed = false;
  if (!res.findings.empty()) {
    const std::string campaign = proto.name() + " + rsm, seed " +
                                 std::to_string(opt.seed) + ", " +
                                 std::to_string(res.stats.execs) + " execs";
    const std::vector<TriagedFinding> triaged =
        export_findings(res.findings, opt.findings_dir, campaign);
    for (const TriagedFinding& t : triaged) {
      std::printf("  %s: %s (%d raw, exec %llu)%s\n", fuzz_class_name(t.cls),
                  (opt.findings_dir + "/" + finding_file_name(t)).c_str(),
                  t.raw_count, static_cast<unsigned long long>(t.exec_index),
                  t.replay_ok ? " replay verified" : " REPLAY FAILED");
      replay_failed = replay_failed || !t.replay_ok;
    }
  }
  if (!opt.stats_json.empty() &&
      !write_file(opt.stats_json,
                  fuzz_stats_json(res.stats, proto, cfg.n_nodes, cfg.seed))) {
    return 2;
  }
  if (g_interrupted.load()) {
    std::fprintf(stderr, "mcan-rsm: interrupted after %llu execs; findings "
                         "flushed\n",
                 static_cast<unsigned long long>(res.stats.execs));
    return 130;
  }
  if (replay_failed) return 1;
  return check_expect_gate(opt, res.stats.classes_seen);
}

int cmd_replay(const Options& opt) {
  std::uint32_t found = 0;
  for (const std::string& path : expand_inputs(opt.inputs)) {
    const ScenarioSpec spec = load_scenario_file(path);
    const FuzzVerdict v = run_fuzz_case(spec);
    found |= v.classes;
    std::printf("%s: %s\n", path.c_str(),
                fuzz_classes_to_string(v.classes).c_str());
    if (v.violation()) std::printf("  %s\n", v.detail.c_str());
  }
  if (g_interrupted.load()) return 130;
  return check_expect_gate(opt, found);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage(stderr);
    return 2;
  }
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  try {
    if (opt.command == "run") return cmd_run(opt);
    if (opt.command == "check") return cmd_check(opt);
    if (opt.command == "fuzz") return cmd_fuzz(opt);
    if (opt.command == "replay") return cmd_replay(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mcan-rsm: %s\n", e.what());
    return 2;
  }
  std::fprintf(stderr, "mcan-rsm: unknown command '%s'\n",
               opt.command.c_str());
  usage(stderr);
  return 2;
}
