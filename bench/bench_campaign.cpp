// The paper's §4/§5 claims as a randomized fault-injection experiment.
//
// Part 1 — link-level protocols: for k = 0..m+2 uniformly placed view-flips
// in the frame-tail window, measure the rate of inconsistent message
// omissions (AB2), double receptions (AB3) and total losses per protocol.
// The paper's claim: MajorCAN_m is clean through k = m; CAN and MinorCAN
// break from k = 1 (duplicates) and k = 2 (omissions).
//
// Part 2 — higher-level baselines under the scripted Fig. 1c and Fig. 3
// patterns: EDCAN survives both; RELCAN/TOTCAN only the first (§4: "the
// rest do not work because they only perform recovery actions in case the
// transmitter fails").
#include <cstdio>

#include "fault/scripted.hpp"
#include "higher/higher_network.hpp"
#include "scenario/campaign.hpp"
#include "util/text.hpp"

namespace {

using namespace mcan;

AbReport run_higher_pattern(HigherKind kind, bool crash_tx) {
  HigherNetwork net(kind, 5, HostParams{600});
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(1, 5, 0));
  inj.add(FaultTarget::eof_bit(2, 5, 0));
  if (!crash_tx) inj.add(FaultTarget::eof_bit(0, 6, 0));  // Fig. 3 pattern
  net.link().set_injector(inj);
  net.host(0).broadcast(MessageKey{0, 1});
  if (crash_tx) net.link().sim().schedule_crash(0, 75);  // Fig. 1c pattern
  net.run_until_quiet();
  if (crash_tx) return net.check({1, 2, 3, 4});
  return net.check();
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 20000;

  std::printf("=== Fault-injection campaign: k random view-flips in the "
              "frame tail ===\n");
  std::printf("5 nodes, %d trials per cell; entries: IMO / double-rx / "
              "total-loss counts\n\n", trials);

  std::vector<ProtocolParams> protos = {
      ProtocolParams::standard_can(), ProtocolParams::minor_can(),
      ProtocolParams::major_can(3), ProtocolParams::major_can(5)};

  std::vector<std::vector<std::string>> rows;
  {
    std::vector<std::string> head = {"protocol"};
    for (int k = 0; k <= 7; ++k) head.push_back("k=" + std::to_string(k));
    rows.push_back(head);
  }
  for (const auto& proto : protos) {
    std::vector<std::string> row = {proto.name()};
    for (int k = 0; k <= 7; ++k) {
      CampaignConfig cfg;
      cfg.protocol = proto;
      cfg.n_nodes = 5;
      cfg.trials = trials;
      cfg.errors = k;
      cfg.window = FaultWindow::FrameTail;
      cfg.seed = 0x5EED0000u + static_cast<std::uint64_t>(k);
      auto res = run_eof_campaign_parallel(cfg);
      row.push_back(std::to_string(res.imo) + "/" +
                    std::to_string(res.double_rx) + "/" +
                    std::to_string(res.total_loss));
    }
    rows.push_back(row);
  }
  std::printf("%s\n", render_table(rows).c_str());
  std::printf(
      "reading: MajorCAN_m rows stay 0/0/0 through k = m (its design\n"
      "tolerance); standard CAN shows duplicates from k = 1 and omissions\n"
      "from k = 2 (the Fig. 3a pattern); MinorCAN kills the duplicates but\n"
      "not the k >= 2 omissions.\n\n");

  std::printf("=== Higher-level baselines: randomized campaign ===\n");
  std::printf("(k flips in the DATA frame tail; optional random tx crash)\n\n");
  {
    std::vector<std::vector<std::string>> h;
    h.push_back({"protocol", "k=1", "k=2", "k=2 + crashes"});
    for (HigherKind kind :
         {HigherKind::Edcan, HigherKind::Relcan, HigherKind::Totcan}) {
      std::vector<std::string> row = {higher_kind_name(kind)};
      for (int variant = 0; variant < 3; ++variant) {
        HigherCampaignConfig hc;
        hc.kind = kind;
        hc.trials = std::min(trials, 1500);
        hc.errors = variant == 0 ? 1 : 2;
        hc.crash_tx_randomly = variant == 2;
        hc.seed = 0x9A5E + static_cast<std::uint64_t>(variant);
        auto r = run_higher_campaign(hc);
        row.push_back("AB2:" + std::to_string(r.agreement_violations) +
                      " AB3:" + std::to_string(r.duplicate_trials) +
                      " AB5:" + std::to_string(r.order_trials));
      }
      h.push_back(row);
    }
    std::printf("%s\n", render_table(h).c_str());
  }

  std::printf("=== Higher-level baselines against the scripted patterns ===\n");
  std::vector<std::vector<std::string>> h;
  h.push_back({"protocol", "Fig 1c (tx crash)", "Fig 3 (tx correct)"});
  for (HigherKind kind :
       {HigherKind::Edcan, HigherKind::Relcan, HigherKind::Totcan}) {
    auto crash = run_higher_pattern(kind, true);
    auto fig3 = run_higher_pattern(kind, false);
    auto verdict = [](const AbReport& r) {
      return r.agreement_violations == 0 ? std::string("agreement holds")
                                         : std::string("AGREEMENT VIOLATED");
    };
    h.push_back({higher_kind_name(kind), verdict(crash), verdict(fig3)});
  }
  std::printf("%s\n", render_table(h).c_str());
  std::printf(
      "reading: all three baselines repair the transmitter-crash scenario\n"
      "they were designed for, but only EDCAN (eager diffusion) survives\n"
      "the new scenario in which the transmitter stays correct — and EDCAN\n"
      "does not provide total order, so none of them achieve Atomic\n"
      "Broadcast.  MajorCAN does (see the campaign above).\n");
  return 0;
}
