// Reproduces Table 1 of the paper: hourly rates of inconsistent message
// omissions for the new scenarios (Fig. 3a, expression (4)) versus the old
// scenarios (Fig. 1c, expression (5), ber* model) on the reference bus
// (1 Mbit/s, 90% load, 110-bit frames, 32 nodes).
#include <cstdio>

#include "analysis/prob_model.hpp"
#include "util/text.hpp"

int main() {
  using namespace mcan;

  std::printf("=== Table 1: probabilities of the inconsistency scenarios ===\n");
  std::printf("reference bus: 1 Mbit/s, 90%% load, tau=110 bits, N=32 nodes,\n");
  std::printf("lambda=1e-3/h, dt=5 ms (expression (5))\n\n");

  const auto computed = compute_table1();
  std::printf("-- computed with this library --\n%s\n",
              render_table1(computed).c_str());

  const auto published = published_table1();
  std::printf("-- published in the paper --\n%s\n",
              render_table1(published).c_str());

  std::printf("relative error vs published values:\n");
  for (std::size_t i = 0; i < computed.size(); ++i) {
    const double e_new = computed[i].imo_new_per_hour /
                             published[i].imo_new_per_hour - 1.0;
    const double e_old = computed[i].imo_old_star_per_hour /
                             published[i].imo_old_star_per_hour - 1.0;
    std::printf("  ber=%s: IMOnew %+.2f%%  IMO* %+.2f%%\n",
                sci(computed[i].ber, 1).c_str(), 100 * e_new, 100 * e_old);
  }

  std::printf(
      "\nreading: the new scenarios are ~3 orders of magnitude more likely\n"
      "than the previously reported ones and far above the 1e-9/h aerospace\n"
      "reference — the motivation for MajorCAN.\n");
  return 0;
}
