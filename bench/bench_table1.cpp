// Reproduces Table 1 of the paper: hourly rates of inconsistent message
// omissions for the new scenarios (Fig. 3a, expression (4)) versus the old
// scenarios (Fig. 1c, expression (5), ber* model) on the reference bus
// (1 Mbit/s, 90% load, 110-bit frames, 32 nodes) — and then measures the
// same probabilities *empirically* with a rare-event campaign on the
// executable bus (src/rare/): importance sampling makes the 1e-12..1e-14
// per-frame probabilities directly observable, and the paired columns are
// the reproduction's end-to-end validation of the closed form.
//
//   bench_table1 [--trials N] [--jobs N] [--json BENCH_table1.json]
//
// --trials 0 skips the empirical campaigns (closed forms only).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/prob_model.hpp"
#include "frame/encoder.hpp"
#include "rare/campaign.hpp"
#include "scenario/sweep_cli.hpp"
#include "util/text.hpp"

int main(int argc, char** argv) {
  using namespace mcan;

  SweepOptions sweep;
  std::vector<std::string> rest;
  std::string error;
  if (!parse_sweep_args(argc, argv, sweep, rest, error)) {
    std::fprintf(stderr, "bench_table1: %s\n", error.c_str());
    return 2;
  }
  long long trials = 20000;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == "--trials" && i + 1 < rest.size()) {
      trials = std::atoll(rest[++i].c_str());
    } else {
      std::fprintf(stderr, "bench_table1: unknown option %s\n",
                   rest[i].c_str());
      return 2;
    }
  }

  std::printf("=== Table 1: probabilities of the inconsistency scenarios ===\n");
  std::printf("reference bus: 1 Mbit/s, 90%% load, tau=110 bits, N=32 nodes,\n");
  std::printf("lambda=1e-3/h, dt=5 ms (expression (5))\n\n");

  const auto computed = compute_table1();
  std::printf("-- computed with this library --\n%s\n",
              render_table1(computed).c_str());

  const auto published = published_table1();
  std::printf("-- published in the paper --\n%s\n",
              render_table1(published).c_str());

  std::printf("relative error vs published values:\n");
  for (std::size_t i = 0; i < computed.size(); ++i) {
    const double e_new = computed[i].imo_new_per_hour /
                             published[i].imo_new_per_hour - 1.0;
    const double e_old = computed[i].imo_old_star_per_hour /
                             published[i].imo_old_star_per_hour - 1.0;
    std::printf("  ber=%s: IMOnew %+.2f%%  IMO* %+.2f%%\n",
                sci(computed[i].ber, 1).c_str(), 100 * e_new, 100 * e_old);
  }

  // --- Empirical column: the same probabilities measured on the bus ---
  // The campaign simulates the probe broadcast (a tagged 4-byte frame,
  // shorter than the paper's 110-bit reference), so its numbers pair with
  // expression (4) evaluated at the *simulated* wire length; the ratio
  // column is the model-vs-machine comparison.
  std::vector<RareResult> empirical;
  if (trials > 0) {
    std::printf(
        "\n-- empirical (importance-sampled campaign on the executable bus,"
        "\n   %lld trials per row; see docs/RARE_EVENTS.md) --\n",
        trials);
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"ber", "expr(4)/frame", "measured/frame", "ratio",
                    "rel ci95", "vrf vs naive"});
    for (const Table1Row& row : computed) {
      RareConfig cfg;
      cfg.ber = row.ber;
      cfg.trials = trials;
      cfg.jobs = sweep.jobs;
      if (sweep.progress) {
        cfg.on_progress = [](long long done, long long total) {
          std::fprintf(stderr, "\r  %lld / %lld trials", done, total);
          if (done >= total) std::fputc('\n', stderr);
          std::fflush(stderr);
        };
      }
      const RareResult res = run_campaign(cfg);
      const RareEstimate est = res.imo_estimate();
      const double p4 = res.closed_form_p4();
      rows.push_back({sci(row.ber, 1), sci(p4), sci(est.p_hat),
                      p4 > 0 ? sci(est.p_hat / p4, 2) : "-",
                      "+/-" + sci(est.rel_halfwidth, 2),
                      sci(res.variance_reduction(), 2)});
      empirical.push_back(res);
    }
    std::printf("%s\n", render_table(rows).c_str());
  }

  if (!sweep.json.empty()) {
    std::string s = "{\n  \"rows\": [";
    for (std::size_t i = 0; i < computed.size(); ++i) {
      const Table1Row& r = computed[i];
      if (i) s += ",";
      s += "\n    {\"ber\": " + sci(r.ber, 12) +
           ", \"imo_new_per_hour\": " + sci(r.imo_new_per_hour, 12) +
           ", \"imo_rufino_per_hour\": " + sci(r.imo_rufino_per_hour, 12) +
           ", \"imo_old_star_per_hour\": " + sci(r.imo_old_star_per_hour, 12);
      if (i < empirical.size()) {
        const RareResult& res = empirical[i];
        const RareEstimate est = res.imo_estimate();
        s += ",\n     \"empirical\": {\"p_hat\": " + sci(est.p_hat, 12) +
             ", \"ci_lo\": " + sci(est.ci_lo, 12) +
             ", \"ci_hi\": " + sci(est.ci_hi, 12) +
             ", \"rel_halfwidth\": " + sci(est.rel_halfwidth, 6) +
             ", \"hits\": " + std::to_string(est.hits) +
             ", \"trials\": " + std::to_string(est.trials) +
             ", \"ess\": " + sci(est.ess, 6) +
             ", \"frame_bits\": " +
             std::to_string(wire_length(res.plan.frame,
                                        res.cfg.protocol.eof_bits())) +
             ", \"closed_form_p4\": " + sci(res.closed_form_p4(), 12) +
             ", \"imo_per_hour\": " +
             sci(est.p_hat * res.frames_per_hour(), 12) +
             ", \"variance_reduction\": " +
             sci(res.variance_reduction(), 6) +
             ", \"seed\": " + std::to_string(res.cfg.seed) + "}";
      }
      s += "}";
    }
    s += "\n  ]\n}\n";
    if (!write_text_file(sweep.json, s)) {
      std::fprintf(stderr, "bench_table1: cannot write %s\n",
                   sweep.json.c_str());
      return 2;
    }
    std::printf("json written to %s\n", sweep.json.c_str());
  }

  std::printf(
      "\nreading: the new scenarios are ~3 orders of magnitude more likely\n"
      "than the previously reported ones and far above the 1e-9/h aerospace\n"
      "reference — the motivation for MajorCAN.  The measured column shows\n"
      "the executable bus agreeing with expression (4) within the CI at\n"
      "every ber, closing the loop between model and machine.\n");
  return 0;
}
