// Simulator performance baseline: how many bus bits (one sim step = one
// bit time) and whole frames per second each bit engine simulates, across
// the workloads the campaign engines actually run.  Useful for sizing
// fault-injection campaigns — and committed as BENCH_simperf.json so the
// repo's bench trajectory has a datapoint.
//
//     bench_simperf                      # table, the selected kernel
//     bench_simperf --kernel fast        # table, fast kernel only
//     bench_simperf --compare            # both kernels + speedup ratios,
//                                        # certifying identical frame counts
//     bench_simperf --json BENCH_simperf.json
//     bench_simperf --steps 2000000      # longer measurement window
//
// Workloads: an idle bus (pure kernel overhead; driven through run() so
// the fast kernel's idle jump is exercised), a saturated bus (node 0
// always has a frame in flight; per-bit stepping, the campaign engines'
// access pattern) for CAN and MajorCAN_5, a pre-loaded burst bus driven
// through run() (the word-batch regime), and a saturated MajorCAN_5 bus
// under iid channel noise — the rare-event campaign's regime.  Throughput
// varies with the host; the workloads themselves are deterministic, and
// --compare exits 1 if the two kernels disagree on delivered frames.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "fault/random_faults.hpp"
#include "scenario/sweep_cli.hpp"
#include "sim/kernel.hpp"
#include "util/text.hpp"

namespace {

using namespace mcan;

enum class Load { Idle, Saturated, Burst };

struct Workload {
  std::string name;
  ProtocolParams proto;
  int nodes = 0;
  Load load = Load::Idle;
  double ber = 0;
};

struct Measurement {
  std::string name;
  KernelKind kernel = KernelKind::Ref;
  int nodes = 0;
  long long steps = 0;   ///< simulated bit times
  long long frames = 0;  ///< frames delivered at node 1 (0 for idle)
  double seconds = 0;
};

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Simulate `steps` bit times of one workload under one kernel.
Measurement run_bus(const Workload& w, long long steps, KernelKind kind) {
  set_default_kernel(kind);  // Network's constructor reads the global
  Network net(w.nodes, w.proto);
  RandomFaults inj(w.ber, Rng(1));
  if (w.ber > 0) net.set_injector(inj);
  Measurement m;
  m.name = w.name;
  m.kernel = kind;
  m.nodes = w.nodes;
  m.steps = steps;
  int next = 0;
  const double t0 = now_s();
  switch (w.load) {
    case Load::Idle:
      // One run() call: lets kernels fast-forward the all-idle stretch.
      net.sim().run(static_cast<BitTime>(steps));
      break;
    case Load::Saturated:
      // Keep node 0 loaded, checking between every bit — the access
      // pattern of the campaign engines (step, inspect, step, ...).
      for (long long i = 0; i < steps; ++i) {
        if (net.node(0).pending_tx() < 2) {
          net.node(0).enqueue(Frame::make_blank(
              0x100 + static_cast<std::uint32_t>(next++ % 8), 8));
        }
        net.sim().step();
      }
      break;
    case Load::Burst:
      // Pre-load a deep queue and hand the whole window to run(): no
      // per-bit host interaction, the word-batch regime.
      for (long long i = 0; i < steps / 100 + 1; ++i) {
        net.node(0).enqueue(Frame::make_blank(
            0x100 + static_cast<std::uint32_t>(i % 8), 8));
      }
      net.sim().run(static_cast<BitTime>(steps));
      break;
  }
  m.seconds = now_s() - t0;
  m.frames = static_cast<long long>(net.deliveries(1).size());
  return m;
}

double bits_per_s(const Measurement& m) {
  return m.seconds > 0 ? static_cast<double>(m.steps) / m.seconds : 0;
}

double frames_per_s(const Measurement& m) {
  return m.seconds > 0 ? static_cast<double>(m.frames) / m.seconds : 0;
}

std::string json_row(const Measurement& m, double speedup) {
  std::string j = "{\"workload\": \"" + m.name + "\", \"kernel\": \"" +
                  kernel_name(m.kernel) +
                  "\", \"nodes\": " + std::to_string(m.nodes) +
                  ", \"steps\": " + std::to_string(m.steps) +
                  ", \"seconds\": " + json_number(m.seconds) +
                  ", \"bits_per_s\": " + json_number(bits_per_s(m)) +
                  ", \"frames\": " + std::to_string(m.frames) +
                  ", \"frames_per_s\": " + json_number(frames_per_s(m));
  if (speedup > 0) j += ", \"speedup_vs_ref\": " + json_number(speedup);
  return j + "}";
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions sweep;
  std::vector<std::string> rest;
  std::string error;
  if (!parse_sweep_args(argc, argv, sweep, rest, error)) {
    std::fprintf(stderr, "bench_simperf: %s\n", error.c_str());
    return 2;
  }
  long long steps = 500000;
  bool compare = false;
  // --expect-speedup workload:nodes:X — CI gate: with --compare, the fast
  // kernel must run workload (at the given bus size) at least X times the
  // reference throughput, else exit 1.  Repeatable.
  struct SpeedupGate {
    std::string workload;
    int nodes = 0;
    double min_speedup = 0;
    bool seen = false;
  };
  std::vector<SpeedupGate> gates;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == "--steps" && i + 1 < rest.size()) {
      steps = std::atoll(rest[++i].c_str());
      if (steps < 1) {
        std::fprintf(stderr, "bench_simperf: bad --steps value\n");
        return 2;
      }
    } else if (rest[i] == "--compare") {
      compare = true;
    } else if (rest[i] == "--expect-speedup" && i + 1 < rest.size()) {
      const std::string v = rest[++i];
      const std::size_t c1 = v.find(':');
      const std::size_t c2 = c1 == std::string::npos ? c1 : v.find(':', c1 + 1);
      SpeedupGate g;
      if (c2 != std::string::npos) {
        g.workload = v.substr(0, c1);
        g.nodes = std::atoi(v.substr(c1 + 1, c2 - c1 - 1).c_str());
        g.min_speedup = std::atof(v.substr(c2 + 1).c_str());
      }
      if (g.workload.empty() || g.nodes < 1 || g.min_speedup <= 0) {
        std::fprintf(stderr,
                     "bench_simperf: bad --expect-speedup value '%s'"
                     " (want workload:nodes:X)\n",
                     v.c_str());
        return 2;
      }
      gates.push_back(g);
      compare = true;  // the gate only means anything against a ref run
    } else {
      std::fprintf(
          stderr,
          "bench_simperf: unknown option %s\n"
          "usage: bench_simperf [--steps N] [--compare] [--kernel K]"
          " [--expect-speedup workload:nodes:X] [--json FILE]\n",
          rest[i].c_str());
      return 2;
    }
  }

  const std::vector<Workload> workloads = {
      {"idle_can", ProtocolParams::standard_can(), 4, Load::Idle, 0},
      {"idle_can", ProtocolParams::standard_can(), 32, Load::Idle, 0},
      {"saturated_can", ProtocolParams::standard_can(), 4, Load::Saturated, 0},
      {"saturated_can", ProtocolParams::standard_can(), 32, Load::Saturated,
       0},
      {"saturated_major5", ProtocolParams::major_can(5), 4, Load::Saturated,
       0},
      {"saturated_major5", ProtocolParams::major_can(5), 32, Load::Saturated,
       0},
      {"burst_can", ProtocolParams::standard_can(), 32, Load::Burst, 0},
      {"noisy_major5", ProtocolParams::major_can(5), 8, Load::Saturated,
       1e-4},
  };

  std::printf("=== Simulator throughput (%lld bit times per workload) ===\n\n",
              steps);

  std::vector<std::vector<std::string>> rows;
  rows.push_back(compare
                     ? std::vector<std::string>{"workload", "nodes", "kernel",
                                                "bits/s", "frames", "speedup"}
                     : std::vector<std::string>{"workload", "nodes", "kernel",
                                                "bits/s", "frames",
                                                "frames/s"});
  std::string json = "{\"steps_per_workload\": " + std::to_string(steps) +
                     ", \"compare\": " + (compare ? "true" : "false") +
                     ", \"workloads\": [";
  bool first = true;
  bool mismatch = false;
  for (const Workload& w : workloads) {
    if (compare) {
      const Measurement ref = run_bus(w, steps, KernelKind::Ref);
      const Measurement fast = run_bus(w, steps, KernelKind::Fast);
      const double speedup =
          bits_per_s(ref) > 0 ? bits_per_s(fast) / bits_per_s(ref) : 0;
      if (ref.frames != fast.frames) {
        mismatch = true;
        std::fprintf(stderr,
                     "bench_simperf: KERNEL MISMATCH on %s n=%d: "
                     "ref delivered %lld frames, fast %lld\n",
                     w.name.c_str(), w.nodes, ref.frames, fast.frames);
      }
      rows.push_back({ref.name, std::to_string(ref.nodes), "ref",
                      sci(bits_per_s(ref), 3), std::to_string(ref.frames),
                      ""});
      rows.push_back({fast.name, std::to_string(fast.nodes), "fast",
                      sci(bits_per_s(fast), 3), std::to_string(fast.frames),
                      sci(speedup, 3) + "x"});
      for (SpeedupGate& g : gates) {
        if (g.workload != w.name || g.nodes != w.nodes) continue;
        g.seen = true;
        if (speedup < g.min_speedup) {
          mismatch = true;
          std::fprintf(stderr,
                       "bench_simperf: SPEEDUP GATE FAILED on %s n=%d: "
                       "%.2fx < required %.2fx\n",
                       w.name.c_str(), w.nodes, speedup, g.min_speedup);
        }
      }
      json += (first ? "\n  " : ",\n  ") + json_row(ref, 0) + ",\n  " +
              json_row(fast, speedup);
      first = false;
    } else {
      const Measurement m = run_bus(w, steps, sweep.kernel);
      rows.push_back({m.name, std::to_string(m.nodes),
                      kernel_name(m.kernel), sci(bits_per_s(m), 3),
                      std::to_string(m.frames), sci(frames_per_s(m), 3)});
      json += (first ? "\n  " : ",\n  ") + json_row(m, 0);
      first = false;
    }
  }
  json += "\n]}\n";
  for (const SpeedupGate& g : gates) {
    if (!g.seen) {
      mismatch = true;
      std::fprintf(stderr,
                   "bench_simperf: --expect-speedup names unknown workload "
                   "%s n=%d\n",
                   g.workload.c_str(), g.nodes);
    }
  }
  std::printf("%s", render_table(rows).c_str());
  if (compare) {
    std::printf("\n%s\n",
                mismatch
                    ? "FRAME-COUNT CERTIFICATION FAILED (see stderr)"
                    : "frame-count certification: ref and fast agree on "
                      "every workload");
  }

  if (!sweep.json.empty()) {
    if (!write_text_file(sweep.json, json)) {
      std::fprintf(stderr, "bench_simperf: cannot write %s\n",
                   sweep.json.c_str());
      return 2;
    }
    std::printf("json written to %s\n", sweep.json.c_str());
  }
  return mismatch ? 1 : 0;
}
