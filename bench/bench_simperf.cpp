// Simulator performance baseline: how many bus bits (one sim step = one
// bit time) and whole frames per second the bit-synchronous kernel
// simulates, across the workloads the campaign engines actually run.
// Useful for sizing fault-injection campaigns — and committed as
// BENCH_simperf.json so the repo's bench trajectory has a datapoint.
//
//     bench_simperf                      # table on stdout
//     bench_simperf --json BENCH_simperf.json
//     bench_simperf --steps 2000000      # longer measurement window
//
// Workloads: an idle bus (pure kernel overhead), a saturated bus (node 0
// always has a frame in flight) for CAN and MajorCAN_5, and a saturated
// MajorCAN_5 bus under iid channel noise — the rare-event campaign's
// regime.  Throughput varies with the host; the workloads themselves are
// deterministic.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "fault/random_faults.hpp"
#include "scenario/sweep_cli.hpp"
#include "util/text.hpp"

namespace {

using namespace mcan;

struct Measurement {
  std::string name;
  int nodes = 0;
  long long steps = 0;   ///< simulated bit times
  long long frames = 0;  ///< frames delivered at node 1 (0 for idle)
  double seconds = 0;
};

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Step `net` for `steps` bit times, keeping node 0 loaded when
/// `saturate` so a frame is always in flight.
Measurement run_bus(const std::string& name, const ProtocolParams& proto,
                    int nodes, long long steps, bool saturate, double ber) {
  Network net(nodes, proto);
  RandomFaults inj(ber, Rng(1));
  if (ber > 0) net.set_injector(inj);
  Measurement m;
  m.name = name;
  m.nodes = nodes;
  m.steps = steps;
  int next = 0;
  const double t0 = now_s();
  for (long long i = 0; i < steps; ++i) {
    if (saturate && net.node(0).pending_tx() < 2) {
      net.node(0).enqueue(Frame::make_blank(
          0x100 + static_cast<std::uint32_t>(next++ % 8), 8));
    }
    net.sim().step();
  }
  m.seconds = now_s() - t0;
  m.frames = static_cast<long long>(net.deliveries(1).size());
  return m;
}

double bits_per_s(const Measurement& m) {
  return m.seconds > 0 ? static_cast<double>(m.steps) / m.seconds : 0;
}

double frames_per_s(const Measurement& m) {
  return m.seconds > 0 ? static_cast<double>(m.frames) / m.seconds : 0;
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions sweep;
  std::vector<std::string> rest;
  std::string error;
  if (!parse_sweep_args(argc, argv, sweep, rest, error)) {
    std::fprintf(stderr, "bench_simperf: %s\n", error.c_str());
    return 2;
  }
  long long steps = 500000;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == "--steps" && i + 1 < rest.size()) {
      steps = std::atoll(rest[++i].c_str());
      if (steps < 1) {
        std::fprintf(stderr, "bench_simperf: bad --steps value\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "bench_simperf: unknown option %s\n"
                   "usage: bench_simperf [--steps N] [--json FILE]\n",
                   rest[i].c_str());
      return 2;
    }
  }

  std::printf("=== Simulator throughput (%lld bit times per workload) ===\n\n",
              steps);

  std::vector<Measurement> all;
  all.push_back(run_bus("idle_can", ProtocolParams::standard_can(), 4, steps,
                        false, 0));
  all.push_back(run_bus("idle_can", ProtocolParams::standard_can(), 32, steps,
                        false, 0));
  all.push_back(run_bus("saturated_can", ProtocolParams::standard_can(), 4,
                        steps, true, 0));
  all.push_back(run_bus("saturated_can", ProtocolParams::standard_can(), 32,
                        steps, true, 0));
  all.push_back(run_bus("saturated_major5", ProtocolParams::major_can(5), 4,
                        steps, true, 0));
  all.push_back(run_bus("saturated_major5", ProtocolParams::major_can(5), 32,
                        steps, true, 0));
  all.push_back(run_bus("noisy_major5", ProtocolParams::major_can(5), 8,
                        steps, true, 1e-4));

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"workload", "nodes", "bits/s", "frames", "frames/s"});
  std::string json = "{\"steps_per_workload\": " + std::to_string(steps) +
                     ", \"workloads\": [";
  bool first = true;
  for (const Measurement& m : all) {
    rows.push_back({m.name, std::to_string(m.nodes), sci(bits_per_s(m), 3),
                    std::to_string(m.frames), sci(frames_per_s(m), 3)});
    if (!first) json += ",";
    first = false;
    json += "\n  {\"workload\": \"" + m.name +
            "\", \"nodes\": " + std::to_string(m.nodes) +
            ", \"steps\": " + std::to_string(m.steps) +
            ", \"seconds\": " + json_number(m.seconds) +
            ", \"bits_per_s\": " + json_number(bits_per_s(m)) +
            ", \"frames\": " + std::to_string(m.frames) +
            ", \"frames_per_s\": " + json_number(frames_per_s(m)) + "}";
  }
  json += "\n]}\n";
  std::printf("%s", render_table(rows).c_str());

  if (!sweep.json.empty()) {
    if (!write_text_file(sweep.json, json)) {
      std::fprintf(stderr, "bench_simperf: cannot write %s\n",
                   sweep.json.c_str());
      return 2;
    }
    std::printf("json written to %s\n", sweep.json.c_str());
  }
  return 0;
}
