// Simulator performance microbenchmarks (google-benchmark): how many bus
// bits per second the bit-synchronous kernel simulates, plus the frame
// encode/CRC primitives.  Useful for sizing fault-injection campaigns.
#include <benchmark/benchmark.h>

#include "core/network.hpp"
#include "fault/random_faults.hpp"
#include "frame/crc15.hpp"
#include "frame/encoder.hpp"

namespace {

using namespace mcan;

void BM_IdleBus(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Network net(n, ProtocolParams::standard_can());
  for (auto _ : state) {
    net.sim().step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IdleBus)->Arg(4)->Arg(16)->Arg(32);

void BM_SaturatedBus(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Network net(n, ProtocolParams::standard_can());
  int next = 0;
  for (auto _ : state) {
    // Keep node 0 permanently loaded so a frame is always in flight.
    if (net.node(0).pending_tx() < 2) {
      net.node(0).enqueue(Frame::make_blank(
          0x100 + static_cast<std::uint32_t>(next++ % 8), 8));
    }
    net.sim().step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SaturatedBus)->Arg(4)->Arg(16)->Arg(32);

void BM_SaturatedMajorCan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Network net(n, ProtocolParams::major_can(5));
  int next = 0;
  for (auto _ : state) {
    if (net.node(0).pending_tx() < 2) {
      net.node(0).enqueue(Frame::make_blank(
          0x100 + static_cast<std::uint32_t>(next++ % 8), 8));
    }
    net.sim().step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SaturatedMajorCan)->Arg(4)->Arg(32);

void BM_NoisyBus(benchmark::State& state) {
  Network net(8, ProtocolParams::major_can(5));
  RandomFaults inj(1e-4, Rng(1));
  net.set_injector(inj);
  int next = 0;
  for (auto _ : state) {
    if (net.node(0).pending_tx() < 2) {
      net.node(0).enqueue(Frame::make_blank(
          0x100 + static_cast<std::uint32_t>(next++ % 8), 8));
    }
    net.sim().step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NoisyBus);

void BM_EncodeFrame(benchmark::State& state) {
  Frame f = Frame::make_blank(0x2aa, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_tx(f, 7));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeFrame);

void BM_Crc15(benchmark::State& state) {
  BitVec v;
  for (int i = 0; i < 90; ++i) v.push_back(level_of((i * 7 % 3) != 0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc15(v));
  }
  state.SetItemsProcessed(state.iterations() * 90);
}
BENCHMARK(BM_Crc15);

}  // namespace

BENCHMARK_MAIN();
