// Ablation study of MajorCAN's design choices (DESIGN.md §5): each knob is
// reverted to a naive alternative and pushed through the frame-tail
// fault-injection campaign.  Entries are IMO / double-rx / total-loss per
// `trials` trials — the paper's design (first row) must stay 0/0/0 through
// k = m; each ablation shows where and why its naive variant breaks.
#include <cstdio>

#include "scenario/campaign.hpp"
#include "scenario/figures.hpp"
#include "util/text.hpp"

namespace {

using namespace mcan;

struct Config {
  std::string name;
  ProtocolParams proto;
};

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 6000;
  const int m = 5;

  std::vector<Config> configs;
  configs.push_back({"paper design (m=5)", ProtocolParams::major_can(m)});
  {
    auto p = ProtocolParams::major_can(m);
    p.suppress_second_errors = false;
    configs.push_back({"no second-error suppression", p});
  }
  {
    auto p = ProtocolParams::major_can(m);
    p.delimiter = DelimiterMode::ConvergentCount;
    configs.push_back({"convergent-count delimiter", p});
  }
  {
    auto p = ProtocolParams::major_can(m);
    p.delimiter = DelimiterMode::EagerCount;
    configs.push_back({"eager-count delimiter", p});
  }
  {
    auto p = ProtocolParams::major_can(m);
    p.first_subfield_override = m - 2;
    configs.push_back({"first sub-field m-2 bits", p});
  }
  {
    auto p = ProtocolParams::major_can(m);
    p.majority_override = 2;  // far below the strict majority m
    configs.push_back({"vote threshold 2 (too low)", p});
  }
  {
    auto p = ProtocolParams::major_can(m);
    p.majority_override = 2 * m - 2;  // near-unanimity
    configs.push_back({"vote threshold 2m-2 (too high)", p});
  }

  std::printf("=== MajorCAN design ablations: frame-tail campaign ===\n");
  std::printf("5 nodes, %d trials/cell; entries: IMO/double-rx/total-loss\n\n",
              trials);

  std::vector<std::vector<std::string>> rows;
  {
    std::vector<std::string> head = {"configuration"};
    for (int k = 1; k <= m; ++k) head.push_back("k=" + std::to_string(k));
    head.push_back("Fig5 ok");
    head.push_back("CRC-delay ok");
    rows.push_back(head);
  }

  for (const Config& c : configs) {
    std::vector<std::string> row = {c.name};
    for (int k = 1; k <= m; ++k) {
      CampaignConfig cfg;
      cfg.protocol = c.proto;
      cfg.n_nodes = 5;
      cfg.trials = trials;
      cfg.errors = k;
      // Include the delimiter/recovery region so delimiter ablations are
      // actually exercised (the paper's design must survive there too).
      cfg.window = FaultWindow::TailAndRecovery;
      cfg.seed = 0xAB1A7E00u + static_cast<std::uint64_t>(k);
      auto res = run_eof_campaign_parallel(cfg);
      row.push_back(std::to_string(res.imo) + "/" +
                    std::to_string(res.double_rx) + "/" +
                    std::to_string(res.total_loss) +
                    (res.timeouts ? "!" : ""));
    }
    // The scripted Fig. 5 scenario under this configuration.
    auto fig5 = run_eof_scenario(
        "fig5", c.proto, 4,
        {FaultTarget::eof_bit(1, 2), FaultTarget::eof_bit(0, 3),
         FaultTarget::eof_bit(0, 4),
         FaultTarget::eof_relative(1, c.proto.sample_begin() + 1),
         FaultTarget::eof_relative(1, c.proto.sample_begin() + 3)});
    row.push_back(fig5.consistent_single_delivery() ? "yes" : "NO");
    // The sizing worst case: a CRC-error flag delayed by m-1 view errors.
    auto crc = run_crc_delay_scenario(c.proto);
    row.push_back(!crc.imo() && !crc.double_reception() ? "yes" : "NO");
    rows.push_back(row);
  }
  std::printf("%s\n", render_table(rows).c_str());

  std::printf(
      "reading: every naive variant loses the guarantee somewhere inside\n"
      "the k <= m budget ('!' marks trials that failed to quiesce):\n"
      "  - without second-error suppression, stray dominant bits in the\n"
      "    end-game trigger fresh flags that wreck the agreement round;\n"
      "  - both weaker delimiters let a single well-placed disturbance\n"
      "    desynchronise a node from the retransmission;\n"
      "  - a narrow first sub-field lets delayed CRC-error flags be read\n"
      "    as acceptance notifications;\n"
      "  - a low vote threshold accepts on noise (splitting against\n"
      "    rejecting nodes), a near-unanimous one rejects on noise\n"
      "    (splitting against extenders).\n");
  return 0;
}
