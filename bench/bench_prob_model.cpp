// Monte-Carlo validation of the paper's probability model (§4).
//
// Expression (4) gives the per-frame probability of the exact Fig. 3a error
// pattern: at least one receiver (but not all) hit in the last-but-one
// frame bit and clean elsewhere, every other receiver completely clean, and
// the transmitter clean until a hit in the last bit.  We draw iid per-node
// per-bit errors at rate ber* = ber/N and count pattern occurrences, then
// compare against the closed form — at elevated ber so the Monte-Carlo
// estimate converges in seconds (the closed form is evaluated at the same
// ber, so the comparison is exact, not extrapolated).
//
// A second sweep validates the combinatorial receiver-split factor across
// node counts.
#include <cmath>
#include <cstdio>

#include "analysis/prob_model.hpp"
#include "scenario/sweep_cli.hpp"
#include "util/rng.hpp"
#include "util/text.hpp"

namespace {

using namespace mcan;

/// Draw one frame's error pattern; return true iff it matches Fig. 3a as
/// counted by expression (4).
bool draw_fig3a_pattern(Rng& rng, int n_nodes, int tau, double ber_star) {
  // Transmitter: clean for tau-1 bits, hit in the last bit.
  for (int b = 0; b < tau - 1; ++b) {
    if (rng.chance(ber_star)) return false;
  }
  if (!rng.chance(ber_star)) return false;

  // Receivers: each either hit exactly in the last-but-one bit (clean in
  // the preceding tau-2 bits) or clean in all tau-1 bits before the last;
  // at least one of each.  The expression leaves every receiver's *last*
  // bit unconstrained — (1-b)^(tau-2)*b and (1-b)^(tau-1) both cover only
  // tau-1 bit positions — so the draw must too.
  int hit = 0;
  int clean = 0;
  for (int r = 0; r < n_nodes - 1; ++r) {
    bool clean_elsewhere = true;
    bool hit_lastbutone = false;
    for (int b = 0; b < tau - 1; ++b) {
      const bool e = rng.chance(ber_star);
      if (!e) continue;
      if (b == tau - 2) {
        hit_lastbutone = true;
      } else {
        clean_elsewhere = false;
      }
    }
    if (!clean_elsewhere) return false;  // a receiver outside both classes
    if (hit_lastbutone) {
      ++hit;
    } else {
      ++clean;
    }
  }
  return hit >= 1 && clean >= 1;
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions sweep;
  std::vector<std::string> rest;
  std::string error;
  if (!parse_sweep_args(argc, argv, sweep, rest, error)) {
    std::fprintf(stderr, "bench_prob_model: %s\n", error.c_str());
    return 2;
  }
  long frames = 400000;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == "--frames" && i + 1 < rest.size()) {
      frames = std::atol(rest[++i].c_str());
    } else {
      std::fprintf(stderr, "bench_prob_model: unknown option %s\n",
                   rest[i].c_str());
      return 2;
    }
  }

  std::printf("=== Monte-Carlo check of expression (4) ===\n");
  std::printf("%ld frames per cell, iid per-node per-bit errors at ber*\n\n",
              frames);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"N", "tau", "ber*", "analytic P4", "monte-carlo",
                  "MC/analytic", "hits"});
  std::string json =
      "{\"frames_per_cell\": " + std::to_string(frames) + ", \"rows\": [";
  bool json_first = true;
  Rng rng(0xC0DE, 0x11);
  struct Cell {
    int n;
    int tau;
    double bs;
  };
  // Parameters chosen so each cell expects >= ~100 pattern hits: the
  // pattern needs two position-exact errors, so P ~ C * ber*^2 and small
  // frames with aggressive ber* give the best Monte-Carlo efficiency.
  for (const Cell& c : {Cell{3, 20, 0.08}, Cell{3, 40, 0.04},
                        Cell{4, 20, 0.08}, Cell{5, 20, 0.10},
                        Cell{8, 15, 0.10}}) {
    ModelParams p;
    p.n_nodes = c.n;
    p.frame_bits = c.tau;
    p.ber = c.bs * c.n;  // so ber_star() == c.bs
    const double analytic = p_new_scenario_per_frame(p);

    long hits = 0;
    for (long i = 0; i < frames; ++i) {
      if (draw_fig3a_pattern(rng, c.n, c.tau, c.bs)) ++hits;
    }
    const double mc = static_cast<double>(hits) / static_cast<double>(frames);
    rows.push_back({std::to_string(c.n), std::to_string(c.tau), sci(c.bs, 2),
                    sci(analytic), sci(mc),
                    analytic > 0 ? sci(mc / analytic) : "-",
                    std::to_string(hits)});
    if (!json_first) json += ",";
    json_first = false;
    json += "\n  {\"n\": " + std::to_string(c.n) +
            ", \"tau\": " + std::to_string(c.tau) +
            ", \"ber_star\": " + sci(c.bs, 12) +
            ", \"analytic_p4\": " + sci(analytic, 12) +
            ", \"monte_carlo\": " + sci(mc, 12) +
            ", \"hits\": " + std::to_string(hits) + "}";
  }
  json += "\n]}\n";
  std::printf("%s\n", render_table(rows).c_str());

  if (!sweep.json.empty()) {
    if (!write_text_file(sweep.json, json)) {
      std::fprintf(stderr, "bench_prob_model: cannot write %s\n",
                   sweep.json.c_str());
      return 2;
    }
    std::printf("json written to %s\n", sweep.json.c_str());
  }

  std::printf(
      "reading: the Monte-Carlo frequency matches expression (4) within\n"
      "sampling noise across node counts and error rates, validating the\n"
      "combinatorics behind Table 1 (which then evaluates the same closed\n"
      "form at the realistic ber of 1e-4..1e-6 where direct simulation is\n"
      "infeasible: ~1e-10 per frame).\n");
  return 0;
}
