// Reproduces the paper's §5/§6 overhead accounting and extends it with
// measured numbers:
//   * analytic: MajorCAN_m costs 2m-7 extra bits per frame error-free and
//     4m-9 worst case (m=5: 3 and 11 bits);
//   * measured on the simulator: wall-clock bits from SOF to bus-quiet for
//     one message, per protocol — including the higher-level baselines
//     (EDCAN/RELCAN/TOTCAN), which pay one or more *frames*, not bits.
#include <cstdio>

#include "core/network.hpp"
#include "fault/scripted.hpp"
#include "frame/encoder.hpp"
#include "higher/higher_network.hpp"
#include "util/text.hpp"

namespace {

using namespace mcan;

Frame payload_frame() { return Frame::make_blank(0x100, 4); }

/// Bits from t=0 (SOF) until the bus is quiet again, link-level protocols.
BitTime measure_link(const ProtocolParams& p, bool worst_case) {
  Network net(4, p);
  ScriptedFaults inj;
  if (worst_case) {
    // An error in the frame tail forces the full end-game: for MajorCAN the
    // extended flags/sampling run to position 3m+5 plus the delimiter; for
    // CAN/MinorCAN an error frame plus a retransmission.
    inj.add(FaultTarget::eof_bit(1, p.eof_bits() - 2));
    net.set_injector(inj);
  }
  net.node(0).enqueue(payload_frame());
  net.run_until_quiet();
  return net.sim().now() - 1 - kIntermissionBits;  // exclude trailing idle
}

BitTime measure_higher(HigherKind kind, bool worst_case) {
  HigherNetwork net(kind, 4, HostParams{600});
  ScriptedFaults inj;
  if (worst_case) {
    inj.add(FaultTarget::eof_bit(1, 5, 0));
    net.link().set_injector(inj);
  }
  net.host(0).broadcast(MessageKey{0, 1});
  net.run_until_quiet();
  return net.link().sim().now() - 1 - kIntermissionBits;
}

}  // namespace

int main() {
  const Frame f = payload_frame();
  const int base = wire_length(f, kStandardEofBits);

  std::printf("=== Overhead per message (paper section 5/6) ===\n");
  std::printf("message: %s, standard CAN frame = %d wire bits\n\n",
              f.to_string().c_str(), base);

  std::printf("-- analytic MajorCAN_m overhead (bits vs standard CAN) --\n");
  {
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"m", "error-free (2m-7)", "worst case (4m-9)"});
    for (int m : {3, 4, 5, 6, 7, 8}) {
      auto p = ProtocolParams::major_can(m);
      rows.push_back({std::to_string(m),
                      std::to_string(p.best_case_overhead_bits()),
                      std::to_string(p.worst_case_overhead_bits())});
    }
    std::printf("%s\n", render_table(rows).c_str());
  }

  std::printf("-- measured: bits on the bus until one message settles --\n");
  {
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"protocol", "error-free", "with one tail error",
                    "extra frames"});
    auto add_link = [&](const ProtocolParams& p) {
      rows.push_back({p.name(), std::to_string(measure_link(p, false)),
                      std::to_string(measure_link(p, true)), "0"});
    };
    add_link(ProtocolParams::standard_can());
    add_link(ProtocolParams::minor_can());
    for (int m : {3, 5, 7}) add_link(ProtocolParams::major_can(m));

    struct H { HigherKind k; const char* frames; };
    for (auto [kind, frames] : {H{HigherKind::Edcan, ">=N-1"},
                                H{HigherKind::Relcan, "1 (CONFIRM)"},
                                H{HigherKind::Totcan, "1 (ACCEPT)"}}) {
      rows.push_back({higher_kind_name(kind),
                      std::to_string(measure_higher(kind, false)),
                      std::to_string(measure_higher(kind, true)), frames});
    }
    std::printf("%s\n", render_table(rows).c_str());
  }

  std::printf(
      "reading: MajorCAN_5 pays 3 bits per error-free frame (11 worst\n"
      "case) while every higher-level protocol pays at least one whole\n"
      "extra frame (~60+ bits for this payload, x(N-1) for EDCAN) — the\n"
      "paper's 'negligible overhead' argument, measured.\n"
      "note: RELCAN/TOTCAN error-free costs include their CONFIRM/ACCEPT\n"
      "frame; the one-tail-error column additionally retransmits the frame.\n");
  return 0;
}
