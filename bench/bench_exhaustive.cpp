// Bounded exhaustive verification — executing the "model checking" the
// paper announced as future work (§6) against the executable protocol
// model: every combination of k view-flips over the frame-tail window is
// run and classified.  Within this window and bus size the result is
// complete: a 0 row is a proof, a non-0 row comes with concrete
// counterexamples (the Fig. 1b / Fig. 3a patterns are rediscovered
// automatically).
//
// This bench deliberately runs the *reference* configuration of the
// engine (single worker, no reductions — the exact semantics of
// run_exhaustive); bench_model_check benchmarks the optimised modes
// against it.
#include <cstdio>

#include "scenario/model_check.hpp"
#include "scenario/sweep_cli.hpp"
#include "util/progress.hpp"
#include "util/text.hpp"

int main(int argc, char** argv) {
  using namespace mcan;

  SweepOptions opt;
  std::vector<std::string> rest;
  std::string error;
  if (!parse_sweep_args(argc, argv, opt, rest, error)) {
    std::fprintf(stderr, "bench_exhaustive: %s\n", error.c_str());
    return 2;
  }
  for (const std::string& a : rest) {
    std::fprintf(stderr, "bench_exhaustive: unknown option %s\n%s", a.c_str(),
                 sweep_flags_help());
    return 2;
  }
  const int max_k = opt.max_k;

  std::printf("=== Exhaustive verification over the frame-tail window ===\n");
  std::printf("%d-node bus; every combination of k view-flips over\n",
              opt.n_nodes);
  std::printf("(node x EOF-relative position); entries IMO/double-rx/loss\n\n");

  std::vector<std::vector<std::string>> rows;
  {
    std::vector<std::string> head = {"protocol"};
    for (int k = 1; k <= max_k; ++k) {
      head.push_back("k=" + std::to_string(k) + " (cases)");
    }
    rows.push_back(head);
  }

  std::vector<std::string> example_lines;
  for (const auto& proto : opt.protocol_set()) {
    std::vector<std::string> row = {proto.name()};
    for (int k = 1; k <= max_k; ++k) {
      // Reference engine configuration: run_exhaustive semantics, plus a
      // progress meter for the long high-k sweeps.
      ModelCheckConfig mc;
      mc.base.protocol = proto;
      mc.base.n_nodes = opt.n_nodes;
      mc.base.errors = k;
      if (opt.win_lo) mc.base.win_lo_rel = *opt.win_lo;
      if (opt.win_hi) mc.base.win_hi_rel = *opt.win_hi;
      mc.jobs = 1;
      mc.dedup = false;
      mc.symmetry = false;
      mc.max_examples = 2;

      ModelCheckResult res;
      if (opt.progress) {
        ProgressMeter meter(proto.name() + " k=" + std::to_string(k));
        res = run_model_check(mc, [&meter](long long done, long long total) {
          meter.set_total(total);
          meter.update(done);
        });
        meter.finish();
      } else {
        res = run_model_check(mc);
      }
      row.push_back(std::to_string(res.imo) + "/" +
                    std::to_string(res.double_rx) + "/" +
                    std::to_string(res.total_loss) + " (" +
                    std::to_string(res.cases) + ")");
      if (!res.examples.empty() && k <= 2) {
        example_lines.push_back(proto.name() + ", k=" + std::to_string(k) +
                                ": " + res.examples.front().to_string());
      }
    }
    rows.push_back(row);
  }
  std::printf("%s\n", render_table(rows).c_str());

  if (!example_lines.empty()) {
    std::printf("first counterexamples found:\n");
    for (const auto& l : example_lines) std::printf("  %s\n", l.c_str());
  }

  std::printf(
      "\nreading: MajorCAN_m rows are complete verification results for\n"
      "this window — zero violating patterns up to the enumerated k.  The\n"
      "CAN counterexamples at k=1 are the double-reception pattern (Fig.\n"
      "1b); at k=2 the enumerator rediscovers the paper's new scenario\n"
      "(Fig. 3a) among others.  MinorCAN's k=2 counterexamples are the\n"
      "Fig. 3b pattern.\n");
  return 0;
}
