// Bounded exhaustive verification — executing the "model checking" the
// paper announced as future work (§6) against the executable protocol
// model: every combination of k view-flips over the frame-tail window is
// run and classified.  Within this window and bus size the result is
// complete: a 0 row is a proof, a non-0 row comes with concrete
// counterexamples (the Fig. 1b / Fig. 3a patterns are rediscovered
// automatically).
#include <cstdio>

#include "scenario/exhaustive.hpp"
#include "util/text.hpp"

int main(int argc, char** argv) {
  using namespace mcan;

  const int max_k = argc > 1 ? std::atoi(argv[1]) : 2;

  std::printf("=== Exhaustive verification over the frame-tail window ===\n");
  std::printf("3-node bus; every combination of k view-flips over\n");
  std::printf("(node x EOF-relative position); entries IMO/double-rx/loss\n\n");

  std::vector<ProtocolParams> protos = {
      ProtocolParams::standard_can(), ProtocolParams::minor_can(),
      ProtocolParams::major_can(3), ProtocolParams::major_can(5)};

  std::vector<std::vector<std::string>> rows;
  {
    std::vector<std::string> head = {"protocol"};
    for (int k = 1; k <= max_k; ++k) {
      head.push_back("k=" + std::to_string(k) + " (cases)");
    }
    rows.push_back(head);
  }

  std::vector<std::string> example_lines;
  for (const auto& proto : protos) {
    std::vector<std::string> row = {proto.name()};
    for (int k = 1; k <= max_k; ++k) {
      ExhaustiveConfig cfg;
      cfg.protocol = proto;
      cfg.n_nodes = 3;
      cfg.errors = k;
      auto res = run_exhaustive(cfg, 2);
      row.push_back(std::to_string(res.imo) + "/" +
                    std::to_string(res.double_rx) + "/" +
                    std::to_string(res.total_loss) + " (" +
                    std::to_string(res.cases) + ")");
      if (!res.examples.empty() && k <= 2) {
        example_lines.push_back(proto.name() + ", k=" + std::to_string(k) +
                                ": " + res.examples.front().to_string());
      }
    }
    rows.push_back(row);
  }
  std::printf("%s\n", render_table(rows).c_str());

  if (!example_lines.empty()) {
    std::printf("first counterexamples found:\n");
    for (const auto& l : example_lines) std::printf("  %s\n", l.c_str());
  }

  std::printf(
      "\nreading: MajorCAN_m rows are complete verification results for\n"
      "this window — zero violating patterns up to the enumerated k.  The\n"
      "CAN counterexamples at k=1 are the double-reception pattern (Fig.\n"
      "1b); at k=2 the enumerator rediscovers the paper's new scenario\n"
      "(Fig. 3a) among others.  MinorCAN's k=2 counterexamples are the\n"
      "Fig. 3b pattern.\n");
  return 0;
}
