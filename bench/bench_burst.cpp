// Beyond the paper's error model: bursty (Gilbert-Elliott) channels versus
// the randomly-distributed disturbances the m-budget is designed for.
//
// The paper chooses m = 5 for *randomly distributed* errors (matching the
// CRC's guarantee).  Common-mode EMI bursts concentrate many flips into a
// few bit times, so a single burst can exceed any fixed m.  This bench
// soaks each protocol under an iid channel and under a bursty channel with
// the SAME average flip rate, and reports AB violations — quantifying how
// much of MajorCAN's advantage survives burstiness and what m would have
// to become (cf. examples/tune_m) or when replication (bench_dualbus) is
// the right tool instead.
#include <cstdio>

#include "analysis/properties.hpp"
#include "analysis/tagged.hpp"
#include "core/network.hpp"
#include "fault/burst_faults.hpp"
#include "fault/random_faults.hpp"
#include "util/text.hpp"

namespace {

using namespace mcan;

struct SoakOutcome {
  AbReport report;
  long long injected = 0;
};

SoakOutcome soak(const ProtocolParams& proto, FaultInjector& inj,
                 const std::function<long long()>& injected, int frames,
                 std::uint64_t /*seed*/) {
  const int n_nodes = 6;
  const int senders = 3;
  Network net(n_nodes, proto);
  net.set_injector(inj);

  std::vector<BroadcastRecord> broadcasts;
  std::map<NodeId, DeliveryJournal> journals;
  for (int i = 0; i < n_nodes; ++i) {
    journals.emplace(static_cast<NodeId>(i), DeliveryJournal{});
    auto& journal = journals.at(static_cast<NodeId>(i));
    net.node(i).add_delivery_handler([&journal](const Frame& f, BitTime t) {
      if (auto tag = parse_tag(f)) journal.push_back({tag->key, t});
    });
  }
  for (int i = 0; i < senders; ++i) {
    auto& journal = journals.at(static_cast<NodeId>(i));
    net.node(i).add_tx_done_handler([&journal](const Frame& f, BitTime t) {
      if (auto tag = parse_tag(f)) journal.push_back({tag->key, t});
    });
  }

  std::vector<int> seq(senders, 0);
  const int per_sender = frames / senders;
  const BitTime horizon = static_cast<BitTime>(per_sender) * 600 + 50;
  for (BitTime t = 0; t < horizon; ++t) {
    for (int i = 0; i < senders; ++i) {
      if ((t + static_cast<BitTime>(i) * 113) % 600 == 0 &&
          seq[static_cast<std::size_t>(i)] < per_sender) {
        const auto s =
            static_cast<std::uint16_t>(++seq[static_cast<std::size_t>(i)]);
        const MessageKey key{static_cast<NodeId>(i), s};
        broadcasts.push_back({key, static_cast<NodeId>(i)});
        net.node(i).enqueue(make_tagged_frame(
            0x100 + static_cast<std::uint32_t>(i), MsgKind::Data, key));
      }
    }
    net.sim().step();
  }
  net.run_until_quiet(120000);

  std::set<NodeId> correct;
  for (int i = 0; i < n_nodes; ++i) {
    if (net.node(i).active()) correct.insert(static_cast<NodeId>(i));
  }
  SoakOutcome out;
  out.report = check_atomic_broadcast(broadcasts, journals, correct);
  out.injected = injected();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 600;

  BurstParams burst;
  burst.p_good_to_bad = 5e-5;
  burst.p_bad_to_good = 0.2;  // mean burst ~5 bits
  burst.flip_bad = 0.5;
  const double rate = burst.average_rate();

  std::printf("=== iid vs bursty disturbances at the same average rate ===\n");
  std::printf("average flip rate %.2e per node-bit; bursts: mean ~5 bits at "
              "flip 0.5\n%d frames per cell; entries: AB2 / AB3 / AB5 counts "
              "(flips injected)\n\n", rate, frames);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"protocol", "iid channel", "bursty channel"});
  for (auto proto : {ProtocolParams::standard_can(), ProtocolParams::minor_can(),
                     ProtocolParams::major_can(5), ProtocolParams::major_can(8)}) {
    std::vector<std::string> row = {proto.name()};
    {
      RandomFaults inj(rate, Rng(404, 1));
      auto out = soak(proto, inj, [&] { return inj.injected(); }, frames, 1);
      row.push_back(std::to_string(out.report.agreement_violations) + "/" +
                    std::to_string(out.report.duplicate_deliveries) + "/" +
                    std::to_string(out.report.order_inversions) + " (" +
                    std::to_string(out.injected) + ")");
    }
    {
      BurstFaults inj(burst, Rng(404, 2));
      auto out = soak(proto, inj, [&] { return inj.injected(); }, frames, 2);
      row.push_back(std::to_string(out.report.agreement_violations) + "/" +
                    std::to_string(out.report.duplicate_deliveries) + "/" +
                    std::to_string(out.report.order_inversions) + " (" +
                    std::to_string(out.injected) + ")");
    }
    rows.push_back(row);
  }
  std::printf("%s\n", render_table(rows).c_str());

  std::printf(
      "reading: most disturbances — iid or burst — are globalised by\n"
      "ordinary error frames (everyone rejects, the frame is\n"
      "retransmitted), so the violation counts stay small everywhere.  The\n"
      "residual iid violations land on MajorCAN_5 and they are the\n"
      "stuffing-desynchronisation finding (DESIGN.md section 7): a body\n"
      "flip delays a receiver's flag into the second sub-field, where\n"
      "MajorCAN — unlike plain CAN, which mostly just retransmits — reads\n"
      "it as an acceptance notification.  Note that MajorCAN_8 is clean:\n"
      "a wider first sub-field also absorbs deeper delayed flags, so\n"
      "raising m defends against this finding too.  For common-mode\n"
      "bursts longer than any affordable m, media replication\n"
      "(bench_dualbus) is the complementary defence.\n");
  return 0;
}
