// End-to-end validation of the paper's probability model: the hourly IMO
// rates of Table 1 come from expression (4) evaluated analytically; here
// the *executable bus* is run for many frames under iid ber* noise and the
// inconsistent-omission rate is measured directly, at elevated ber so the
// statistics converge.  bench_prob_model validates the combinatorics of
// expression (4) in isolation; this bench validates it through the whole
// simulator — and honestly shows where the simulated bus finds *more*
// inconsistencies than the model: the expression counts only the exact
// Fig. 3a pattern, while the real machine also exposes crash-free
// duplicates and the stuffing-desync channel (DESIGN.md §7).
#include <cstdio>

#include "analysis/prob_model.hpp"
#include "analysis/tagged.hpp"
#include "core/network.hpp"
#include "fault/random_faults.hpp"
#include "scenario/sweep_cli.hpp"
#include "util/text.hpp"

namespace {

using namespace mcan;

struct Measured {
  long frames = 0;
  long imo = 0;
  long dup = 0;
};

Measured measure(const ProtocolParams& proto, int n_nodes, double ber_star,
                 long frames, std::uint64_t seed) {
  Measured out;
  Rng master(seed, 0xF1E1D);
  for (long f = 0; f < frames; ++f) {
    Network net(n_nodes, proto);
    RandomFaults inj(ber_star, master.split(static_cast<std::uint64_t>(f)));
    net.set_injector(inj);
    net.node(0).enqueue(make_tagged_frame(0x100, MsgKind::Data, MessageKey{0, 1}));
    // Quiesce with the noise still on (the paper's model is a continuously
    // disturbed bus), bounded to avoid rare livelocks at high ber.
    if (!net.run_until_quiet(4000)) continue;
    ++out.frames;
    const bool tx_ok = net.log().count(EventKind::TxSuccess, 0) > 0;
    bool any = false, all = true, dup = false;
    for (int i = 1; i < n_nodes; ++i) {
      const auto c = net.deliveries(i).size();
      if (c > 0) any = true;
      if (c == 0) all = false;
      if (c > 1) dup = true;
    }
    if ((any || tx_ok) && !all) ++out.imo;
    if (dup) ++out.dup;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions sweep;
  std::vector<std::string> rest;
  std::string error;
  if (!parse_sweep_args(argc, argv, sweep, rest, error)) {
    std::fprintf(stderr, "bench_imo_rate: %s\n", error.c_str());
    return 2;
  }
  long frames = 30000;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == "--frames" && i + 1 < rest.size()) {
      frames = std::atol(rest[++i].c_str());
    } else {
      std::fprintf(stderr, "bench_imo_rate: unknown option %s\n",
                   rest[i].c_str());
      return 2;
    }
  }
  const int n = 5;

  std::printf("=== Measured IMO rate vs expression (4), through the bus ===\n");
  std::printf("%d nodes, %ld frames per cell, iid per-node noise\n\n", n,
              frames);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"ber*", "analytic P4/frame", "CAN IMO/frame",
                  "CAN dup/frame", "MajorCAN_5 IMO/frame",
                  "MajorCAN_8 IMO/frame"});
  std::string json = "{\"frames_per_cell\": " + std::to_string(frames) +
                     ", \"n_nodes\": " + std::to_string(n) + ", \"rows\": [";
  bool json_first = true;
  for (double bs : {2e-3, 1e-3, 5e-4}) {
    ModelParams p;
    p.n_nodes = n;
    // The tagged 4-byte frame is ~86 wire bits.
    p.frame_bits = 86;
    p.ber = bs * n;
    const double analytic = p_new_scenario_per_frame(p);

    const Measured can = measure(ProtocolParams::standard_can(), n, bs,
                                 frames, 0xCA11);
    const Measured m5 = measure(ProtocolParams::major_can(5), n, bs,
                                frames, 0xCA11);
    const Measured m8 = measure(ProtocolParams::major_can(8), n, bs,
                                frames, 0xCA11);
    auto rate = [](long k, long tot) {
      return tot ? static_cast<double>(k) / static_cast<double>(tot) : 0.0;
    };
    rows.push_back({sci(bs, 2), sci(analytic),
                    sci(rate(can.imo, can.frames)),
                    sci(rate(can.dup, can.frames)),
                    sci(rate(m5.imo, m5.frames)),
                    sci(rate(m8.imo, m8.frames))});
    if (!json_first) json += ",";
    json_first = false;
    json += "\n  {\"ber_star\": " + sci(bs, 12) +
            ", \"analytic_p4\": " + sci(analytic, 12) +
            ", \"can_imo\": " + sci(rate(can.imo, can.frames), 12) +
            ", \"can_dup\": " + sci(rate(can.dup, can.frames), 12) +
            ", \"major5_imo\": " + sci(rate(m5.imo, m5.frames), 12) +
            ", \"major8_imo\": " + sci(rate(m8.imo, m8.frames), 12) + "}";
  }
  json += "\n]}\n";
  std::printf("%s\n", render_table(rows).c_str());

  if (!sweep.json.empty()) {
    if (!write_text_file(sweep.json, json)) {
      std::fprintf(stderr, "bench_imo_rate: cannot write %s\n",
                   sweep.json.c_str());
      return 2;
    }
    std::printf("json written to %s\n", sweep.json.c_str());
  }

  std::printf(
      "reading (the sharpest finding of this reproduction, DESIGN.md §7):\n"
      "standard CAN's measured omission rate sits above the expression-(4)\n"
      "value, as it must — the expression counts only the exact Fig. 3a\n"
      "pattern.  But MajorCAN_5's omission rate is *higher than CAN's*\n"
      "here: a single body flip can desynchronise a receiver's destuffer,\n"
      "and its late stuff-error flag surfaces around EOF bits 5..6 — which\n"
      "m = 5 reads as an acceptance notification (omission at that node),\n"
      "whereas CAN reads it as an error and retransmits (a duplicate).\n"
      "Because one flip suffices, this channel scales linearly with ber\n"
      "and dominates the quadratic Fig.-3a pattern at every rate.  The\n"
      "MajorCAN_8 column shows the structural fix: desynchronised flags\n"
      "surface at most ~7 positions into the EOF, so a first sub-field of\n"
      ">= 8 bits keeps them on the rejecting side and the omission rate\n"
      "collapses to (near) zero.  On real receiver machinery the paper's\n"
      "m = 5 is therefore not sufficient; m must also exceed the maximum\n"
      "parser-resynchronisation delay (~8 for CAN framing).\n");
  return 0;
}
