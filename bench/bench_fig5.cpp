// Reproduces Figure 5 of the paper: MajorCAN_5 reaching consistency in the
// presence of five disturbances — one phantom error at X, two flips hiding
// the flag from the transmitter (delaying its detection into the second
// sub-field), and two flips corrupting X's sampling window.
#include <cstdio>

#include "scenario/figures.hpp"

int main() {
  using namespace mcan;

  std::printf("=== Figure 5: MajorCAN_m consistency under m errors ===\n\n");
  for (int m : {5, 4, 6}) {
    auto r = run_fig5(m);
    std::printf("--- m = %d ---\n%s\n", m, r.summary().c_str());
    if (m == 5) {
      std::printf(
          "timeline (node 0 = transmitter, node 1 = X, nodes 2,3 = Y):\n%s\n",
          r.trace.c_str());
      for (const std::string& n : r.notes) std::printf("%s", n.c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "reading: X's 6-bit flag, the transmitter's delayed detection in the\n"
      "second sub-field, the extended error flag and the majority vote over\n"
      "2m-1 sampled bits leave every node accepting the frame exactly once,\n"
      "with no retransmission — Atomic Broadcast despite m disturbances.\n");
  return 0;
}
