// Adversarial strength benchmark: how much targeted disturbance does each
// protocol variant withstand?
//
// For every variant in the sweep set and every bus size, two numbers:
//
//   * the minimum targeted glitch budget that defeats atomic broadcast
//     (attack/optimize.hpp — heuristic contiguous-run candidates, then the
//     exhaustive model-check grid; budgets below the minimum are certified
//     clean exhaustively whenever the case budget allows), and
//   * the error-frame flooder's certified time-to-bus-off: corrupted
//     transmission attempts until fault confinement removes the victim,
//     and the bit time at which it happens.
//
// The defaults keep the run CI-sized by capping the exhaustive pass per
// budget level (--budget flag of the sweep parser, here --max-cases is
// unused); MajorCAN_5's k = 5 level alone is ~17M patterns, so its
// below-minimum certification is bounded unless you raise the cap.
//
//     bench_attack --json BENCH_attack.json
//     bench_attack --protocol major:5 --nodes 3 --budget 0   # full certify
#include <cstdio>
#include <string>
#include <vector>

#include "attack/optimize.hpp"
#include "scenario/sweep_cli.hpp"
#include "util/text.hpp"

namespace {

using namespace mcan;

/// Probe budgets 1..max for one (variant, N) cell.
struct Cell {
  ProtocolParams protocol;
  int n_nodes = 3;
  MinBudgetResult min_budget;
  AttackReport busoff;
};

int max_budget_for(const ProtocolParams& p) {
  // The paper's envelope theorem says MajorCAN_m absorbs m disturbances,
  // so the defeating budget can sit at m + 1; the classic variants fall
  // within 2.  One level of headroom keeps "no pattern found" meaningful.
  return p.variant == Variant::MajorCan ? p.m + 2 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opt;
  std::vector<std::string> rest;
  std::string error;
  if (!parse_sweep_args(argc, argv, opt, rest, error)) {
    std::fprintf(stderr, "bench_attack: %s\n", error.c_str());
    return 2;
  }
  for (const std::string& a : rest) {
    std::fprintf(stderr, "bench_attack: unknown option %s\n%s", a.c_str(),
                 sweep_flags_help());
    return 2;
  }
  const std::vector<ProtocolParams> protocols =
      opt.protocols.empty() ? default_protocol_set() : opt.protocols;
  // Default grid N = {3, 5}; an explicit --nodes narrows to that size.
  const std::vector<int> node_counts =
      opt.n_nodes != 3 ? std::vector<int>{opt.n_nodes}
                       : std::vector<int>{3, 5};

  BudgetProbeOptions po;
  po.jobs = opt.jobs;
  // SweepOptions::budget is the generic case cap; 0 means exhaustive.
  // Default to a bounded pass sized for CI — full certification is a
  // deliberate, slower invocation.
  po.max_cases = opt.budget > 0 ? opt.budget : 500000;
  if (opt.win_lo) po.win_lo = *opt.win_lo;

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"protocol", "N", "defeating budget", "certified below",
                  "busoff attempts", "busoff t"});
  std::string json = "{\"max_cases_per_budget\": " +
                     std::to_string(po.max_cases) + ", \"cells\": [";
  bool first = true;
  for (const ProtocolParams& proto : protocols) {
    for (const int n : node_counts) {
      Cell c;
      c.protocol = proto;
      c.n_nodes = n;
      c.min_budget =
          find_min_defeating_budget(proto, n, max_budget_for(proto), po);
      c.busoff = measure_time_to_busoff(proto, n);
      std::printf("%s\n  bus-off: %s\n", c.min_budget.summary().c_str(),
                  c.busoff.summary().c_str());

      rows.push_back(
          {proto.name(), std::to_string(n),
           c.min_budget.budget < 0 ? "none" :
                                     std::to_string(c.min_budget.budget),
           c.min_budget.clean_below_certified() ? "exhaustive" : "bounded",
           std::to_string(c.busoff.busoff_attempts),
           std::to_string(c.busoff.busoff_t)});

      if (!first) json += ",";
      first = false;
      json += "\n  {\"protocol\": \"" + proto.name() +
              "\", \"nodes\": " + std::to_string(n) +
              ", \"min_defeating_budget\": " +
              std::to_string(c.min_budget.budget) +
              ", \"clean_below_certified\": " +
              (c.min_budget.clean_below_certified() ? "true" : "false") +
              ", \"busoff_attempts\": " +
              std::to_string(c.busoff.busoff_attempts) +
              ", \"victim_peak_tec\": " +
              std::to_string(c.busoff.victim_peak_tec) +
              ", \"busoff_t\": " + std::to_string(c.busoff.busoff_t) +
              ", \"probes\": [";
      for (std::size_t i = 0; i < c.min_budget.probes.size(); ++i) {
        const BudgetProbe& p = c.min_budget.probes[i];
        if (i) json += ", ";
        json += "{\"k\": " + std::to_string(p.k) +
                ", \"cases\": " + std::to_string(p.cases) +
                ", \"exhaustive\": " + (p.exhaustive ? "true" : "false") +
                ", \"violation\": " + (p.violation ? "true" : "false") + "}";
      }
      json += "]}";
    }
  }
  json += "\n]}\n";
  std::printf("%s", render_table(rows).c_str());

  if (!opt.json.empty()) {
    if (!write_text_file(opt.json, json)) {
      std::fprintf(stderr, "bench_attack: cannot write %s\n",
                   opt.json.c_str());
      return 2;
    }
    std::printf("json written to %s\n", opt.json.c_str());
  }
  return 0;
}
