// Reproduces Figure 4 of the paper: the behaviour of a MajorCAN_5 node for
// an error detected at each position of the (2m-bit) EOF, plus the CRC
// error case.  Each probe runs a real two-node bus with the disturbance at
// exactly that position and reports what the node did.
#include <cstdio>

#include "scenario/figures.hpp"
#include "util/text.hpp"

int main() {
  using namespace mcan;

  for (int m : {5, 3}) {
    std::printf("=== Figure 4: behaviour of a MajorCAN_%d node ===\n", m);
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"error at", "flag sent", "sampling", "verdict"});
    for (const Fig4Row& r : run_fig4(m)) {
      rows.push_back({r.error_at, r.flag, r.sampling ? "yes" : "no",
                      r.verdict});
    }
    std::printf("%s\n", render_table(rows).c_str());
  }

  std::printf(
      "reading: CRC errors and first-sub-field errors answer with the\n"
      "regular 6-bit flag (first-sub-field detectors then majority-vote the\n"
      "2m-1 sampled bits); second-sub-field errors accept immediately and\n"
      "notify with the extended error flag, exactly as in the paper's\n"
      "Fig. 4.  The verdict of a first-sub-field probe depends on where the\n"
      "transmitter sees the flag: for the last first-sub-field bit the\n"
      "transmitter's detection lands in the second sub-field, it extends,\n"
      "and the sampler accepts; earlier probes reject and retransmit.\n");
  return 0;
}
