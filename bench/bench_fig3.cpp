// Reproduces Figure 3 of the paper: the newly identified two-disturbance
// scenario — X hit in the last-but-one EOF bit while the transmitter's view
// of the last EOF bit is flipped so it cannot see the error flag.
//   (a) standard CAN  -> IMO with a perfectly correct transmitter
//   (b) MinorCAN      -> same inconsistency (Y decides "primary", accepts)
//   (+) MajorCAN_5    -> consistency restored (the point of the paper)
#include <cstdio>

#include "scenario/figures.hpp"

namespace {

void show(const mcan::ScenarioOutcome& r) {
  std::printf("--- %s ---\n%s\n", r.name.c_str(), r.summary().c_str());
  std::printf("%s\n", r.trace.c_str());
}

}  // namespace

int main() {
  using namespace mcan;

  std::printf("=== Figure 3: the new inconsistency scenario ===\n\n");
  show(run_fig3(ProtocolParams::standard_can()));
  show(run_fig3(ProtocolParams::minor_can()));
  std::printf("--- the same disturbance pattern under MajorCAN_5 ---\n");
  show(run_fig3(ProtocolParams::major_can(5)));

  std::printf(
      "reading: two disturbances defeat both CAN and MinorCAN even though\n"
      "the transmitter never fails — the recovery hooks of RELCAN/TOTCAN\n"
      "(which trigger on transmitter failure) never fire.  MajorCAN's split\n"
      "EOF turns the same pattern into an agreed outcome.\n");
  return 0;
}
