// Reproduces Figure 2 of the paper: MinorCAN achieving consistency in the
// Figure 1 scenarios through the Primary_error rule.
#include <cstdio>

#include "scenario/figures.hpp"

namespace {

void show(const mcan::ScenarioOutcome& r) {
  std::printf("--- %s ---\n%s\n", r.name.c_str(), r.summary().c_str());
  std::printf("%s\n", r.trace.c_str());
}

}  // namespace

int main() {
  using namespace mcan;
  const auto p = ProtocolParams::minor_can();

  std::printf("=== Figure 2: the same scenarios under MinorCAN ===\n\n");
  show(run_fig1a(p));
  show(run_fig1b(p));
  show(run_fig1c(p));

  std::printf(
      "reading: in (a) the first detector is primary and accepts — no\n"
      "retransmission (MinorCAN even beats CAN's performance here); in (b)\n"
      "everyone rejects and the retransmission delivers exactly once — no\n"
      "double reception; in (c) the crash leaves a consistent all-or-none\n"
      "outcome (nobody has the frame).\n");
  return 0;
}
