// Reproduces Figure 1 of the paper: the classic error scenarios on
// standard CAN.
//   (a) error in the last EOF bit          -> consistency survives
//   (b) error in the last-but-one EOF bit  -> double reception at Y
//   (c) as (b) + transmitter crash         -> inconsistent message omission
// Prints the bit-level timeline of each scenario (the paper's diagram, in
// ASCII) and the delivery verdicts.
#include <cstdio>

#include "scenario/figures.hpp"

namespace {

void show(const mcan::ScenarioOutcome& r) {
  std::printf("--- %s ---\n", r.name.c_str());
  std::printf("%s\n", r.summary().c_str());
  std::printf("timeline (node 0 = transmitter; 1,2 = X; 3,4 = Y;\n"
              "          UPPERCASE = node drives dominant, '*' = disturbed view):\n%s\n",
              r.trace.c_str());
  for (const std::string& n : r.notes) std::printf("%s", n.c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace mcan;
  const auto p = ProtocolParams::standard_can();

  std::printf("=== Figure 1: error scenarios in standard CAN ===\n\n");
  show(run_fig1a(p));
  show(run_fig1b(p));
  show(run_fig1c(p));

  std::printf(
      "reading: (a) the last-bit rule saves consistency; (b) the same rule\n"
      "causes double reception; (c) with a transmitter crash it causes an\n"
      "inconsistent message omission — CAN is not Atomic Broadcast.\n");
  return 0;
}
