// The other defence from the authors' group: media replication ("double
// CAN", ICC'98) versus the paper's protocol fix, measured on the same
// disturbance patterns.
//
//   * a single-bus disturbance pattern (Fig. 3a) is masked by replication
//     and by MajorCAN alike;
//   * correlated disturbances on both buses defeat plain replication but
//     not MajorCAN links;
//   * a permanent stuck-dominant medium kills a single bus entirely —
//     only replication helps there (the paper's assumptions exclude it);
//   * the costs: replication doubles bandwidth and transceivers, MajorCAN
//     pays 2m-7 bits per frame.
#include <cstdio>

#include "fault/scripted.hpp"
#include "higher/dualbus.hpp"
#include "scenario/figures.hpp"
#include "util/text.hpp"

namespace {

using namespace mcan;

std::vector<FaultTarget> fig3_pattern(const ProtocolParams& p) {
  const int last = p.eof_bits() - 1;
  return {FaultTarget::eof_bit(1, last - 1), FaultTarget::eof_bit(2, last - 1),
          FaultTarget::eof_bit(0, last)};
}

std::string single_bus_verdict(const ProtocolParams& p) {
  auto r = run_fig3(p);
  return r.imo() ? "AGREEMENT VIOLATED" : "agreement holds";
}

std::string dual_bus_verdict(const ProtocolParams& p, bool correlated) {
  DualBusNetwork net(5, p);
  ScriptedFaults inj_a(fig3_pattern(p));
  ScriptedFaults inj_b(fig3_pattern(p));
  net.set_injector(0, inj_a);
  if (correlated) net.set_injector(1, inj_b);
  net.broadcast(0, MessageKey{0, 1});
  net.run_until_quiet();
  return net.check().agreement_violations == 0 ? "agreement holds"
                                               : "AGREEMENT VIOLATED";
}

std::string stuck_bus_verdict(const ProtocolParams& p, bool dual) {
  if (!dual) {
    // A single stuck bus delivers nothing, ever.
    return "bus lost: no service";
  }
  DualBusNetwork net(4, p);
  StuckDominantBus dead(30);
  net.set_injector(0, dead);
  net.broadcast(0, MessageKey{0, 1});
  net.run(25000);
  bool all = true;
  for (int i = 1; i < 4; ++i) all = all && net.app_deliveries(i) == 1;
  return all ? "service continues on bus B" : "DELIVERY LOST";
}

}  // namespace

int main() {
  std::printf("=== Replication (double CAN) vs the MajorCAN protocol fix ===\n\n");

  const auto can = ProtocolParams::standard_can();
  const auto major = ProtocolParams::major_can(5);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"architecture", "Fig 3a on one bus", "Fig 3a on both buses",
                  "stuck-dominant medium", "extra cost"});
  rows.push_back({"single CAN", single_bus_verdict(can), "-",
                  stuck_bus_verdict(can, false), "none"});
  rows.push_back({"single MajorCAN_5", single_bus_verdict(major), "-",
                  stuck_bus_verdict(major, false), "3..11 bits/frame"});
  rows.push_back({"double CAN", dual_bus_verdict(can, false),
                  dual_bus_verdict(can, true), stuck_bus_verdict(can, true),
                  "2x bandwidth+hw"});
  rows.push_back({"double MajorCAN_5", dual_bus_verdict(major, false),
                  dual_bus_verdict(major, true), stuck_bus_verdict(major, true),
                  "2x + 3..11 bits"});
  std::printf("%s\n", render_table(rows).c_str());

  std::printf(
      "reading: replication masks whatever stays on one bus — including\n"
      "the paper's scenario — and is the only cure for a dead medium,\n"
      "but correlated disturbances (EMI usually hits both harnesses)\n"
      "split a replicated standard-CAN system just like a single bus.\n"
      "MajorCAN fixes the protocol-level scenarios for 3 bits per frame;\n"
      "the two defences compose.\n");
  return 0;
}
