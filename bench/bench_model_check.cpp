// Model-checking engine benchmark: the parallel/deduplicating explorer
// (scenario/model_check.hpp) against the reference single-threaded
// enumerator, on the identical sweep.
//
// Part 1 times the headline configuration — exhaustive k = 2 over the
// MajorCAN_5 frame-tail window — both ways and checks that every count
// (cases, IMO, double-rx, total-loss, timeouts) agrees exactly: the
// reductions must change the wall-clock, never the answer.  Part 2 shows
// the engine's work breakdown (simulated vs memoized vs symmetry-folded)
// across the protocol set.  Part 3 demonstrates budget-bounded exploration
// at k = 5, which is far beyond exhaustive reach on one machine.
//
//     bench_model_check                # defaults: k=2, all protocols
//     bench_model_check -k 3 --protocol major:5 --jobs 4
#include <chrono>
#include <cstdio>

#include "scenario/model_check.hpp"
#include "scenario/sweep_cli.hpp"
#include "util/progress.hpp"
#include "util/text.hpp"

namespace {

using namespace mcan;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ModelCheckConfig make_config(const SweepOptions& opt,
                             const ProtocolParams& proto, int k) {
  ModelCheckConfig mc;
  mc.base.protocol = proto;
  mc.base.n_nodes = opt.n_nodes;
  mc.base.errors = k;
  if (opt.win_lo) mc.base.win_lo_rel = *opt.win_lo;
  if (opt.win_hi) mc.base.win_hi_rel = *opt.win_hi;
  mc.jobs = opt.jobs;
  mc.dedup = opt.dedup;
  mc.symmetry = opt.symmetry;
  mc.max_examples = 2;
  return mc;
}

ModelCheckResult run_with_meter(const ModelCheckConfig& mc,
                                const std::string& label, bool progress) {
  if (!progress) return run_model_check(mc);
  ProgressMeter meter(label);
  auto res = run_model_check(mc, [&meter](long long done, long long total) {
    meter.set_total(total);
    meter.update(done);
  });
  meter.finish();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opt;
  std::vector<std::string> rest;
  std::string error;
  if (!parse_sweep_args(argc, argv, opt, rest, error)) {
    std::fprintf(stderr, "bench_model_check: %s\n", error.c_str());
    return 2;
  }
  for (const std::string& a : rest) {
    std::fprintf(stderr, "bench_model_check: unknown option %s\n%s", a.c_str(),
                 sweep_flags_help());
    return 2;
  }

  // --- Part 1: engine vs reference enumerator, identical sweep -----------
  std::printf("=== Engine vs reference enumerator (exhaustive k=2, m=5) ===\n");
  {
    const ProtocolParams proto = ProtocolParams::major_can(5);
    ExhaustiveConfig base;
    base.protocol = proto;
    base.n_nodes = opt.n_nodes;
    base.errors = 2;

    const double t0 = now_seconds();
    const ExhaustiveResult ref = run_exhaustive(base, 2);
    const double ref_s = now_seconds() - t0;

    ModelCheckConfig mc = make_config(opt, proto, 2);
    const ModelCheckResult eng =
        run_with_meter(mc, "engine " + proto.name() + " k=2", opt.progress);

    const bool agree = ref.cases == eng.cases && ref.imo == eng.imo &&
                       ref.double_rx == eng.double_rx &&
                       ref.total_loss == eng.total_loss &&
                       ref.timeouts == eng.timeouts;
    std::printf("reference: %s  (%.2fs)\n", ref.summary().c_str(), ref_s);
    std::printf("engine:    %s  (%.2fs, jobs=%d)\n", eng.summary().c_str(),
                eng.stats.seconds, eng.stats.jobs);
    std::printf("counts agree: %s\n", agree ? "YES" : "NO  <-- BUG");
    if (eng.stats.seconds > 0) {
      std::printf("speedup: %.1fx  (simulated %lld of %lld cases; memo hits"
                  " %lld, symmetry-folded %lld, distinct tails %zu)\n",
                  ref_s / eng.stats.seconds, eng.stats.simulated, eng.cases,
                  eng.stats.tail_memo_hits, eng.stats.symmetry_skips,
                  eng.stats.distinct_tails);
    }
    if (!agree) return 1;
  }

  // --- Part 2: work breakdown across the protocol set --------------------
  std::printf("\n=== Engine work breakdown (k = 1..%d) ===\n", opt.max_k);
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"protocol", "k", "cases", "violations", "simulated",
                  "memo hits", "sym folded", "tails", "secs"});
  for (const ProtocolParams& proto : opt.protocol_set()) {
    for (int k = 1; k <= opt.max_k; ++k) {
      ModelCheckConfig mc = make_config(opt, proto, k);
      mc.max_cases = opt.budget;
      const ModelCheckResult r = run_with_meter(
          mc, proto.name() + " k=" + std::to_string(k), opt.progress);
      rows.push_back({proto.name(), std::to_string(k),
                      std::to_string(r.cases) + (r.complete ? "" : "+"),
                      std::to_string(r.violations()),
                      std::to_string(r.stats.simulated),
                      std::to_string(r.stats.tail_memo_hits),
                      std::to_string(r.stats.symmetry_skips),
                      std::to_string(r.stats.distinct_tails),
                      std::to_string(r.stats.seconds).substr(0, 5)});
    }
  }
  std::printf("%s\n", render_table(rows).c_str());

  // --- Part 3: budget-bounded k = 5 at m = 5 ------------------------------
  std::printf("=== Budget-bounded exploration: MajorCAN_5 at k = 5 ===\n");
  {
    ModelCheckConfig mc = make_config(opt, ProtocolParams::major_can(5), 5);
    mc.max_cases = opt.budget > 0 ? opt.budget : 200000;
    const ModelCheckResult r =
        run_with_meter(mc, "MajorCAN_5 k=5", opt.progress);
    std::printf("%s\n", r.summary().c_str());
    std::printf("covered %lld flip patterns under a %lld-pattern check"
                " budget (symmetry orbits count at full weight;"
                " complete=%s)\n",
                r.cases, mc.max_cases, r.complete ? "true" : "false");
  }

  std::printf(
      "\nreading: the engine's reductions (prefix cloning, tail\n"
      "memoization, receiver-permutation symmetry) are exact — the top\n"
      "section certifies identical counts against the reference\n"
      "enumerator before quoting any speedup.  Budget-bounded runs trade\n"
      "completeness for reach: a clean bounded k=5 run is evidence, not\n"
      "proof, while any violation it finds would be a concrete\n"
      "counterexample.\n");
  return 0;
}
