// Extension experiment: delivery latency and bus utilisation under
// periodic traffic and iid channel noise, across all six protocols.
//
// This is the cost side of the paper's overhead argument measured under
// load: MajorCAN's few extra bits per frame barely move the latency
// distribution, while the higher-level protocols (extra frames per
// message) shift it wholesale — and standard CAN / MinorCAN pay in
// *consistency*, not latency (their violation counts are shown alongside).
#include <cstdio>

#include "analysis/stats.hpp"
#include "core/network.hpp"
#include "fault/random_faults.hpp"
#include "higher/higher_network.hpp"
#include "util/text.hpp"

namespace {

using namespace mcan;

struct RunResult {
  Summary latency;
  double utilization = 0;
  int violations = 0;  // AB2+AB3 counts
  int frames = 0;
};

constexpr int kSenders = 3;
constexpr int kFramesPerSender = 40;
constexpr int kPeriod = 500;

RunResult run_link(const ProtocolParams& proto, double ber_star,
                   std::uint64_t seed) {
  Network net(6, proto);
  RandomFaults inj(ber_star, Rng(seed, 0xBEEF));
  net.set_injector(inj);
  UtilizationProbe util;
  net.sim().add_observer(util);

  LatencyTracker lat;
  for (int i = 0; i < net.size(); ++i) {
    const NodeId id = net.node(i).id();
    net.node(i).add_delivery_handler([&lat, id](const Frame& f, BitTime t) {
      if (auto tag = parse_tag(f)) lat.on_delivery(id, tag->key, t);
    });
  }

  std::map<NodeId, DeliveryJournal> journals;
  std::vector<BroadcastRecord> broadcasts;
  for (int i = 0; i < net.size(); ++i) {
    journals.emplace(static_cast<NodeId>(i), DeliveryJournal{});
  }
  for (int i = 0; i < net.size(); ++i) {
    auto& journal = journals.at(net.node(i).id());
    net.node(i).add_delivery_handler([&journal](const Frame& f, BitTime t) {
      if (auto tag = parse_tag(f)) journal.push_back({tag->key, t});
    });
  }
  for (int i = 0; i < kSenders; ++i) {
    auto& journal = journals.at(net.node(i).id());
    net.node(i).add_tx_done_handler([&journal](const Frame& f, BitTime t) {
      if (auto tag = parse_tag(f)) journal.push_back({tag->key, t});
    });
  }

  std::vector<int> seq(kSenders, 0);
  const BitTime horizon = static_cast<BitTime>(kFramesPerSender) * kPeriod;
  for (BitTime t = 0; t < horizon; ++t) {
    for (int i = 0; i < kSenders; ++i) {
      if ((t + static_cast<BitTime>(i) * 101) % kPeriod == 0 &&
          seq[static_cast<std::size_t>(i)] < kFramesPerSender) {
        const auto s =
            static_cast<std::uint16_t>(++seq[static_cast<std::size_t>(i)]);
        const MessageKey key{static_cast<NodeId>(i), s};
        lat.on_broadcast(key, net.sim().now());
        broadcasts.push_back({key, static_cast<NodeId>(i)});
        net.node(i).enqueue(make_tagged_frame(
            0x100 + static_cast<std::uint32_t>(i), MsgKind::Data, key));
      }
    }
    net.sim().step();
  }
  inj.set_rate(0.0);
  net.run_until_quiet(60000);

  std::set<NodeId> correct;
  for (int i = 0; i < net.size(); ++i) {
    if (net.node(i).active()) correct.insert(net.node(i).id());
  }
  const AbReport rep = check_atomic_broadcast(broadcasts, journals, correct);

  RunResult out;
  out.latency = lat.summary();
  out.utilization = util.utilization();
  out.violations = rep.agreement_violations + rep.duplicate_deliveries;
  out.frames = static_cast<int>(broadcasts.size());
  return out;
}

RunResult run_higher(HigherKind kind, double ber_star, std::uint64_t seed) {
  HigherNetwork net(kind, 6, HostParams{900});
  RandomFaults inj(ber_star, Rng(seed, 0xBEEF));
  net.link().set_injector(inj);
  UtilizationProbe util;
  net.link().sim().add_observer(util);

  LatencyTracker lat;
  std::vector<int> seq(kSenders, 0);
  const BitTime horizon = static_cast<BitTime>(kFramesPerSender) * kPeriod;
  for (BitTime t = 0; t < horizon; ++t) {
    for (int i = 0; i < kSenders; ++i) {
      if ((t + static_cast<BitTime>(i) * 101) % kPeriod == 0 &&
          seq[static_cast<std::size_t>(i)] < kFramesPerSender) {
        const auto s =
            static_cast<std::uint16_t>(++seq[static_cast<std::size_t>(i)]);
        const MessageKey key{static_cast<NodeId>(i), s};
        lat.on_broadcast(key, net.link().sim().now());
        net.host(i).broadcast(key);
      }
    }
    net.step();
  }
  inj.set_rate(0.0);
  net.run_until_quiet(120000);

  for (const auto& [node, journal] : net.journals()) {
    for (const DeliveryEvent& e : journal) lat.on_delivery(node, e.key, e.t);
  }
  const AbReport rep = net.check();

  RunResult out;
  out.latency = lat.summary();
  out.utilization = util.utilization();
  out.violations = rep.agreement_violations + rep.duplicate_deliveries;
  out.frames = rep.broadcasts;
  return out;
}

}  // namespace

int main() {
  std::printf("=== Delivery latency & utilisation under noise ===\n");
  std::printf("6 nodes, %d senders, %d frames each, period %d bits\n\n",
              kSenders, kFramesPerSender, kPeriod);

  for (double ber_star : {0.0, 2e-4, 1e-3}) {
    std::printf("-- ber* = %s --\n", sci(ber_star, 2).c_str());
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"protocol", "latency p50", "p95", "p99", "mean",
                    "bus util", "AB2+AB3 violations"});
    auto add = [&rows](const std::string& name, const RunResult& r) {
      rows.push_back({name, std::to_string(static_cast<long>(r.latency.p50)),
                      std::to_string(static_cast<long>(r.latency.p95)),
                      std::to_string(static_cast<long>(r.latency.p99)),
                      std::to_string(static_cast<long>(r.latency.mean)),
                      sci(r.utilization, 3),
                      std::to_string(r.violations)});
    };
    add("CAN", run_link(ProtocolParams::standard_can(), ber_star, 1));
    add("MinorCAN", run_link(ProtocolParams::minor_can(), ber_star, 1));
    add("MajorCAN_5", run_link(ProtocolParams::major_can(5), ber_star, 1));
    add("EDCAN", run_higher(HigherKind::Edcan, ber_star, 1));
    add("RELCAN", run_higher(HigherKind::Relcan, ber_star, 1));
    add("TOTCAN", run_higher(HigherKind::Totcan, ber_star, 1));
    std::printf("%s\n", render_table(rows).c_str());
  }

  std::printf(
      "reading: MajorCAN's latency tracks standard CAN within a few bits\n"
      "at every noise level (the 2m-7 = 3-bit frame tax) while eliminating\n"
      "the tail-error violations; the extra-frame protocols saturate the\n"
      "bus (EDCAN relays, RELCAN recovery storms) and TOTCAN's delivery\n"
      "waits for its ACCEPT frame.  Residual MajorCAN violations at the\n"
      "extreme ber* = 1e-3 are the bit-stuffing desynchronisation finding\n"
      "(DESIGN.md section 7) triggered by body errors, not end-game\n"
      "failures.\n");
  return 0;
}
