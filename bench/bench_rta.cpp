// Schedulability extension: worst-case response-time analysis of a
// realistic periodic message set, under standard CAN and MajorCAN_m EOF
// lengths, validated against worst observed latencies on the simulator
// (critical-instant release).  This quantifies the real-time price of
// MajorCAN's consistency: a few bits of extra response time per frame in
// the path of every lower-priority message.
#include <cstdio>
#include <map>

#include "app/rta.hpp"
#include "core/network.hpp"
#include "util/text.hpp"

namespace {

using namespace mcan;

std::vector<RtaMessage> benchmark_set() {
  // An SAE-flavoured mix: fast safety-critical messages down to slow
  // housekeeping, ~62% utilisation at standard CAN.
  return {
      {"brake_cmd", 0x050, false, 2, 500},
      {"steer_angle", 0x080, false, 4, 700},
      {"wheel_speed", 0x100, false, 8, 900},
      {"engine_status", 0x180, false, 8, 1200},
      {"transmission", 0x200, false, 6, 1500},
      {"body_control", 0x280, false, 8, 2500},
      {"diagnostics", 0x600, false, 8, 5000},
  };
}

std::map<std::uint32_t, BitTime> measure(const std::vector<RtaMessage>& set,
                                         const ProtocolParams& proto) {
  Network net(static_cast<int>(set.size()) + 1, proto);
  const int rx = static_cast<int>(set.size());
  std::map<std::uint32_t, BitTime> queued_at;
  std::map<std::uint32_t, BitTime> worst;
  net.node(rx).add_delivery_handler([&](const Frame& f, BitTime t) {
    auto it = queued_at.find(f.id);
    if (it == queued_at.end()) return;
    worst[f.id] = std::max(worst[f.id], t - it->second);
    queued_at.erase(it);
  });
  std::vector<BitTime> next(set.size(), 0);
  for (BitTime t = 0; t < 40000; ++t) {
    for (std::size_t i = 0; i < set.size(); ++i) {
      if (t == next[i]) {
        next[i] += set[i].period;
        queued_at[set[i].can_id] = t;
        net.node(static_cast<int>(i))
            .enqueue(Frame::make_blank(set[i].can_id,
                                       static_cast<std::uint8_t>(set[i].dlc)));
      }
    }
    net.sim().step();
  }
  return worst;
}

}  // namespace

int main() {
  const auto set = benchmark_set();

  std::printf("=== Worst-case response times: analysis vs simulation ===\n");
  std::printf("critical-instant release, bits as time unit (1 Mbit/s: 1 bit = 1 us)\n\n");

  for (int eof : {7, 10}) {
    const ProtocolParams proto = eof == 7 ? ProtocolParams::standard_can()
                                          : ProtocolParams::major_can(5);
    auto rows = response_time_analysis(set, eof);
    auto worst = measure(set, proto);

    std::printf("-- %s (EOF = %d bits) --\n", proto.name().c_str(), eof);
    std::vector<std::vector<std::string>> cells;
    cells.push_back({"message", "T", "C", "B", "R (analytic)",
                     "worst measured", "margin", "schedulable"});
    for (const RtaRow& r : rows) {
      const BitTime m = worst[r.msg.can_id];
      cells.push_back({r.msg.name, std::to_string(r.msg.period),
                       std::to_string(r.c_bits), std::to_string(r.blocking),
                       std::to_string(r.response), std::to_string(m),
                       std::to_string(static_cast<long long>(r.response) -
                                      static_cast<long long>(m)),
                       r.schedulable ? "yes" : "NO"});
    }
    std::printf("%s", render_table(cells).c_str());
    std::printf("utilisation: %.1f%%\n\n", 100 * rta_utilisation(rows));
  }

  std::printf(
      "reading: every measured worst case respects its analytic bound; the\n"
      "MajorCAN_5 column shifts each response time by a few bits (2m-7 = 3\n"
      "per frame in the busy period) — the schedulability cost of Atomic\n"
      "Broadcast at the link level, versus whole extra frames for the\n"
      "higher-level protocols.\n");
  return 0;
}
