// Schedulability benchmark: probabilistic worst-case response-time
// analysis vs. long saturated simulation, per protocol variant.
//
// For each protocol in the sweep set the convolution-based WCRT engine
// (src/analysis/rta/) computes per-stream response-time distributions
// and deadline-miss probabilities under the variant error model — the
// per-bit error rate sourced from the rare-event engine's measurements
// (--rates BENCH_table1.json) — and the validation harness replays the
// same workload on the bit-level bus with injected faults, measuring
// per-*instance* queue-to-delivery response times.  The paired quantiles
// are the analysis-vs-machine comparison committed as BENCH_rta.json.
//
//   bench_rta [sweep flags] [--rates FILE] [--ber X] [--horizon N]
//             [--seed S] [--period-scale F] [--json BENCH_rta.json]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/rta/prob_rta.hpp"
#include "analysis/rta/rates.hpp"
#include "analysis/rta/rta.hpp"
#include "analysis/rta/validate.hpp"
#include "scenario/sweep_cli.hpp"
#include "util/text.hpp"

namespace {

using namespace mcan;

std::string stream_json(const ProbRtaRow& r, const SimStreamObservation& s) {
  std::string j = "    {\"name\": \"" + json_escape(r.det.msg.name) + "\"";
  j += ", \"period\": " + std::to_string(r.det.msg.period);
  j += ", \"c_bits\": " + std::to_string(r.det.c_bits);
  j += ", \"analysis\": {\"response_det\": " + std::to_string(r.det.response);
  j += ", \"schedulable\": " +
       std::string(r.det.schedulable ? "true" : "false");
  j += ", \"miss_prob\": " + json_number(r.miss_prob);
  for (const char* q : {"0.5", "0.9", "0.99", "0.999"}) {
    const BitTime v = r.quantile(std::atof(q));
    j += std::string(", \"q") + q + "\": " +
         (v == kNoTime ? "null" : std::to_string(v));
  }
  j += "}, \"simulated\": {\"released\": " + std::to_string(s.released);
  j += ", \"delivered\": " + std::to_string(s.delivered);
  j += ", \"missed\": " + std::to_string(s.missed);
  j += ", \"worst\": " + std::to_string(s.worst);
  for (const char* q : {"0.5", "0.9", "0.99", "0.999"}) {
    j += std::string(", \"q") + q + "\": " +
         std::to_string(s.quantile(std::atof(q)));
  }
  j += "}}";
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions sweep;
  std::vector<std::string> rest;
  std::string error;
  if (!parse_sweep_args(argc, argv, sweep, rest, error)) {
    std::fprintf(stderr, "bench_rta: %s\n", error.c_str());
    return 2;
  }
  std::string rates_path;
  double ber = 1e-5;
  BitTime horizon = 400000;
  std::uint64_t seed = 1;
  double period_scale = 1.0;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= rest.size()) {
        std::fprintf(stderr, "bench_rta: %s needs a value\n",
                     rest[i].c_str());
        std::exit(2);
      }
      return rest[++i].c_str();
    };
    if (rest[i] == "--rates") rates_path = next();
    else if (rest[i] == "--ber") ber = std::atof(next());
    else if (rest[i] == "--horizon") horizon = static_cast<BitTime>(std::atoll(next()));
    else if (rest[i] == "--seed") seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (rest[i] == "--period-scale") period_scale = std::atof(next());
    else {
      std::fprintf(stderr, "bench_rta: unknown option %s\n", rest[i].c_str());
      return 2;
    }
  }

  MeasuredRates rates;
  rates.ber = ber;
  if (!rates_path.empty()) {
    RateTable table;
    if (!RateTable::load(rates_path, table, error)) {
      std::fprintf(stderr, "bench_rta: %s\n", error.c_str());
      return 2;
    }
    rates = table.rates_for(ber);
  }

  const auto set = scale_periods(sae_benchmark_set(), period_scale);

  std::printf("=== Probabilistic WCRT: analysis vs simulation ===\n");
  std::printf(
      "critical-instant releases, ber %s (calibration %.3f, rates: %s),\n"
      "horizon %llu bits, seed %llu; bits as time (1 Mbit/s: 1 bit = 1 us)\n\n",
      sci(rates.ber, 2).c_str(), rates.calibration, rates.source.c_str(),
      static_cast<unsigned long long>(horizon),
      static_cast<unsigned long long>(seed));

  std::string json = "{\"ber\": " + json_number(rates.ber) +
                     ", \"calibration\": " + json_number(rates.calibration) +
                     ", \"rates_source\": \"" + json_escape(rates.source) +
                     "\", \"horizon\": " + std::to_string(horizon) +
                     ", \"seed\": " + std::to_string(seed) +
                     ", \"protocols\": [";
  bool first_proto = true;
  for (const ProtocolParams& proto : sweep.protocol_set()) {
    const ProbRtaResult res = probabilistic_rta(set, proto, rates);
    const SimValidation sim = simulate_response_times(
        set, proto, rates.effective_ber(), horizon, seed);

    std::printf("-- %s (EOF = %d bits) --\n", proto.name().c_str(),
                proto.eof_bits());
    std::vector<std::vector<std::string>> cells;
    cells.push_back({"stream", "T", "C", "R det", "p99 (an)", "p99 (sim)",
                     "worst sim", "P{miss}", "sim miss", "margin"});
    for (std::size_t i = 0; i < res.rows.size(); ++i) {
      const ProbRtaRow& r = res.rows[i];
      const SimStreamObservation& s = sim.streams[i];
      const BitTime q99 = r.quantile(0.99);
      cells.push_back(
          {r.det.msg.name, std::to_string(r.det.msg.period),
           std::to_string(r.det.c_bits), std::to_string(r.det.response),
           q99 == kNoTime ? "-" : std::to_string(q99),
           std::to_string(s.quantile(0.99)), std::to_string(s.worst),
           sci(r.miss_prob, 2), sci(s.miss_rate(), 2),
           std::to_string(static_cast<long long>(r.det.response) -
                          static_cast<long long>(s.worst))});
    }
    std::printf("%s", render_table(cells).c_str());
    std::printf("utilisation %.1f%%, worst stream P{miss} = %s\n\n",
                100 * res.utilisation, sci(res.max_miss_prob, 3).c_str());

    if (!first_proto) json += ",";
    first_proto = false;
    json += "\n  {\"protocol\": \"" + json_escape(proto.name()) +
            "\", \"eof_bits\": " + std::to_string(proto.eof_bits()) +
            ", \"utilisation\": " + json_number(res.utilisation) +
            ", \"max_miss_prob\": " + json_number(res.max_miss_prob) +
            ", \"streams\": [\n";
    for (std::size_t i = 0; i < res.rows.size(); ++i) {
      if (i) json += ",\n";
      json += stream_json(res.rows[i], sim.streams[i]);
    }
    json += "]}";
  }
  json += "\n]}\n";

  if (!sweep.json.empty()) {
    if (!write_text_file(sweep.json, json)) {
      std::fprintf(stderr, "bench_rta: cannot write %s\n",
                   sweep.json.c_str());
      return 2;
    }
    std::printf("json written to %s\n", sweep.json.c_str());
  }

  std::printf(
      "reading: every simulated quantile sits below its analytic bound —\n"
      "the distributions are conservative.  MajorCAN_m trades EOF length\n"
      "(2m vs 7 bits) for atomicity: m = 3 shortens every frame and its\n"
      "fault tail beats CAN outright, while m = 5 pays 3 bits per frame in\n"
      "every busy period, which costs the streams with the least deadline\n"
      "slack more than the retransmissions it avoids — accept-side EOF\n"
      "errors run the short end-game instead of a full retransmission.\n");
  return 0;
}
